//! Umbrella crate for the Orca shared data-object system reproduction.
//!
//! This crate simply re-exports every sub-crate of the workspace under a
//! single name so that examples, integration tests and downstream users can
//! depend on `orca` alone.
//!
//! The layers, bottom to top:
//!
//! * [`wire`] — compact binary wire codec used for every simulated network
//!   message, so that byte counts reported by the statistics layer are
//!   meaningful.
//! * [`telemetry`] — unified observability: metrics registry with latency
//!   histograms, per-node flight recorder, causal invocation tracing.
//! * [`amoeba`] — the simulated multicomputer substrate (nodes, unreliable
//!   network with fault injection, RPC, statistics, sequencer election),
//!   standing in for the Amoeba microkernel of the paper.
//! * [`group`] — totally-ordered reliable broadcast built from the PB
//!   (point-to-point/broadcast) and BB (broadcast/broadcast) protocols with a
//!   sequencer and history buffer.
//! * [`object`] — the shared data-object model: abstract data types with
//!   read/write operations, guards, and type-erased replicas.
//! * [`rts`] — the runtime systems that keep replicas sequentially
//!   consistent: the broadcast RTS (full replication, operation shipping) and
//!   the primary-copy RTS (invalidation and two-phase update protocols,
//!   dynamic replication).
//! * [`core`] — the Orca programming model: runtime, `fork`-style process
//!   creation, typed object handles and a standard object library.
//! * [`apps`] — the four applications evaluated in the paper (TSP, arc
//!   consistency, chess, ATPG) in sequential and Orca-parallel form.
//! * [`perf`] — the calibrated performance model used to regenerate the
//!   paper's speedup figures from measured work and communication counts.

pub use orca_amoeba as amoeba;
pub use orca_apps as apps;
pub use orca_core as core;
pub use orca_group as group;
pub use orca_object as object;
pub use orca_perf as perf;
pub use orca_rts as rts;
pub use orca_telemetry as telemetry;
pub use orca_wire as wire;

/// Version of the umbrella crate (mirrors the workspace version).
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_nonempty() {
        assert!(!super::VERSION.is_empty());
    }
}
