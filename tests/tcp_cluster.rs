//! Real multi-process cluster acceptance test.
//!
//! Spawns four `orca-node` OS processes over loopback TCP/UDP, runs the
//! conformance counter workload, `kill -9`s one node mid-workload, and
//! asserts the durability contract: **every acknowledged write survives**.
//! A write is acknowledged once its `ACK` line is flushed to the node's
//! ack log, so the union of complete ack-log lines is a lower bound on the
//! final counter value — even for the murdered process, whose log simply
//! stops mid-workload.
//!
//! An acknowledged write may be *over*-counted (a retried `Add` whose
//! first attempt did apply), so the check is `acked <= final`, with the
//! upper bound `final <= issued` (ops actually attempted) sanity-checking
//! that nothing fabricates writes.

use std::collections::HashMap;
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const NODES: usize = 4;
const OPS_PER_NODE: u64 = 20_000;
const COUNT_BITS: u32 = 30;
const FIELD_BITS: u32 = 4;

/// Locate (building if necessary) the `orca-node` binary. Integration
/// tests of the umbrella package cannot use `CARGO_BIN_EXE_*` for another
/// crate's binary, so resolve it through the target directory.
fn orca_node_binary() -> PathBuf {
    let target = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target");
    let candidates = [
        target.join("release/orca-node"),
        target.join("debug/orca-node"),
    ];
    if let Some(existing) = candidates.iter().find(|p| p.exists()) {
        return existing.clone();
    }
    let status = Command::new(env!("CARGO"))
        .args(["build", "-p", "orca-node"])
        .status()
        .expect("run cargo build -p orca-node");
    assert!(status.success(), "building orca-node failed");
    candidates
        .into_iter()
        .find(|p| p.exists())
        .expect("orca-node binary after build")
}

/// Reserve `n` distinct loopback TCP ports by binding and immediately
/// releasing them. A racing process could steal one before the cluster
/// rebinds, so the caller retries the whole cluster launch on failure.
fn reserve_ports(n: usize) -> Vec<u16> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("reserve port"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().unwrap().port())
        .collect()
}

struct NodeProc {
    child: Child,
    ack_log: PathBuf,
}

fn spawn_cluster(binary: &PathBuf, dir: &std::path::Path, ports: &[u16]) -> Vec<NodeProc> {
    let peers: Vec<String> = ports.iter().map(|p| format!("127.0.0.1:{p}")).collect();
    let peers = peers.join(",");
    (0..NODES)
        .map(|node| {
            let ack_log = dir.join(format!("ack{node}.log"));
            let child = Command::new(binary)
                .env("ORCA_NODE_ID", node.to_string())
                .env("ORCA_PEERS", &peers)
                .env("ORCA_STRATEGY", "primary_update")
                .env("ORCA_RECOVERY", "fast")
                .env("ORCA_WORKLOAD", format!("counter:{OPS_PER_NODE}"))
                .env("ORCA_ACK_LOG", &ack_log)
                .stdout(Stdio::piped())
                .stderr(Stdio::piped())
                .spawn()
                .expect("spawn orca-node");
            NodeProc { child, ack_log }
        })
        .collect()
}

/// Count *complete* `ACK <n>` lines (a `kill -9` can leave a torn final
/// line; only newline-terminated records count as acknowledged).
fn acked_writes(path: &std::path::Path) -> u64 {
    let Ok(content) = std::fs::read_to_string(path) else {
        return 0;
    };
    content
        .split_inclusive('\n')
        .filter(|line| line.ends_with('\n') && line.starts_with("ACK "))
        .count() as u64
}

fn wait_with_output(child: Child) -> (bool, String, String) {
    let output = child.wait_with_output().expect("collect node output");
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

#[test]
fn four_process_cluster_survives_kill_dash_nine_without_losing_acked_writes() {
    let binary = orca_node_binary();
    let dir = std::env::temp_dir().join(format!("orca-tcp-cluster-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");

    let ports = reserve_ports(NODES);
    let mut nodes = spawn_cluster(&binary, &dir, &ports);

    // Let the cluster form and make progress, then murder node 3. The
    // wait is sized so the victim is mid-workload: some writes acked,
    // some never issued. (If it already finished, the test still checks
    // durability — just without exercising recovery; the ack count
    // assertion below keeps the scenario honest.)
    let victim = NODES - 1;
    let deadline = Instant::now() + Duration::from_secs(30);
    while acked_writes(&nodes[victim].ack_log) < OPS_PER_NODE / 8 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let victim_pid = nodes[victim].child.id();
    // SIGKILL: no destructors, no flushes, no goodbye message.
    let killed = Command::new("kill")
        .args(["-9", &victim_pid.to_string()])
        .status()
        .expect("send SIGKILL")
        .success();
    assert!(killed, "kill -9 {victim_pid} failed");

    let victim_proc = nodes.remove(victim);
    let (victim_ok, _, _) = wait_with_output(victim_proc.child);
    assert!(!victim_ok, "SIGKILLed process cannot exit cleanly");
    let victim_acked = acked_writes(&victim_proc.ack_log);
    assert!(
        victim_acked >= OPS_PER_NODE / 8,
        "victim was killed before making progress: {victim_acked} acks"
    );
    assert!(
        victim_acked < OPS_PER_NODE,
        "victim finished before the kill — raise OPS_PER_NODE"
    );

    // The three survivors must finish: the failure detector removes the
    // victim from the view, re-homing keeps the counter available, and
    // each survivor prints `FINAL <value>`.
    let mut finals = HashMap::new();
    let mut acked_total = 0u64;
    for (index, node) in nodes.into_iter().enumerate() {
        acked_total += acked_writes(&node.ack_log);
        let (ok, stdout, stderr) = wait_with_output(node.child);
        assert!(
            ok,
            "survivor {index} failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
        );
        let final_line = stdout
            .lines()
            .find(|l| l.starts_with("FINAL "))
            .unwrap_or_else(|| panic!("survivor {index} printed no FINAL line:\n{stdout}"));
        let value: i64 = final_line["FINAL ".len()..].parse().expect("FINAL value");
        *finals.entry(value).or_insert(0u32) += 1;
    }
    acked_total += victim_acked;

    // All survivors agree on the final counter value.
    assert_eq!(
        finals.len(),
        1,
        "survivors disagree on the final value: {finals:?}"
    );
    let final_value = *finals.keys().next().unwrap();
    let final_count = final_value & ((1i64 << COUNT_BITS) - 1);

    // Durability: every acknowledged write is in the final count; sanity:
    // the count never exceeds what was actually issued.
    assert!(
        final_count >= acked_total as i64,
        "lost acknowledged writes: acked {acked_total}, final count {final_count}"
    );
    assert!(
        final_count <= (NODES as i64) * (OPS_PER_NODE as i64),
        "final count {final_count} exceeds total issued writes"
    );

    // Every *survivor* set its completion field exactly once; the
    // victim's field may or may not be set depending on when it died.
    for node in 0..NODES - 1 {
        let field = (final_value >> (COUNT_BITS + FIELD_BITS * node as u32)) & 0xF;
        assert!(
            field >= 1,
            "survivor {node} completion field unset in {final_value:#x}"
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}
