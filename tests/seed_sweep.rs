//! Seed-sweep determinism: the conformance workload replayed over many
//! fault seeds, each seed run twice — the two runs must produce identical
//! observables (and the correct ones).
//!
//! Fault injection is the only sanctioned source of network nondeterminism,
//! and it is driven entirely by the seeded PRNG of `FaultConfig`; thread
//! scheduling may change *how* the protocols recover but never *what* the
//! application observes. A seed whose two runs disagree means hidden
//! nondeterminism crept into a protocol — exactly the regression this lane
//! exists to catch.
//!
//! `ORCA_SEED_SWEEP=<n>` sets the number of seeds (default 8); CI runs a
//! small dedicated sweep. Failures name the seed and strategy, which
//! reproduce the run via `ORCA_SEED`/`ORCA_RTS` in the conformance suite.

use orca::amoeba::FaultConfig;
use orca::core::objects::{JobQueue, SharedInt};
use orca::core::{replicated_workers, standard_registry, OrcaConfig, OrcaRuntime, RtsStrategy};
use orca_check::{sequentially_consistent, HistOp};

const WORKERS: usize = 3;
const JOBS: u32 = 24;

/// Compact observables of the replicated-worker program (job coverage and
/// final sum), sorted so scheduling nondeterminism does not leak in.
#[derive(Debug, PartialEq, Eq)]
struct Outcome {
    jobs: Vec<u32>,
    sum: i64,
}

fn run_once(name: &str, strategy: RtsStrategy, fault: FaultConfig) -> Outcome {
    let config = OrcaConfig {
        fault,
        strategy,
        ..OrcaConfig::broadcast(WORKERS)
    };
    let runtime = OrcaRuntime::start(config, standard_registry());
    let main = runtime.main();
    let queue: JobQueue<u32> = JobQueue::create(main).unwrap();
    let sum = SharedInt::create(main, 0).unwrap();
    for job in 1..=JOBS {
        queue.add(main, &job).unwrap();
    }
    queue.close(main).unwrap();
    let per_worker: Vec<(Vec<u32>, Vec<HistOp>)> =
        replicated_workers(&runtime, WORKERS, move |_worker, ctx| {
            let mut mine = Vec::new();
            let mut history = Vec::new();
            while let Some(job) = queue.get(&ctx).unwrap() {
                let delta = i64::from(job);
                let reply = sum.add(&ctx, delta).unwrap();
                history.push(HistOp::new(delta, reply));
                mine.push(job);
            }
            (mine, history)
        });
    // Every sweep run also feeds the shared sequential-consistency checker
    // (the same implementation the conformance suite and `orca-mc` use):
    // determinism alone would also faithfully replay a consistency bug.
    let histories: Vec<Vec<HistOp>> = per_worker.iter().map(|(_, h)| h.clone()).collect();
    assert!(
        sequentially_consistent(&histories),
        "{name} (ORCA_SEED={}): histories not sequentially consistent: {histories:?}",
        fault.seed
    );
    let mut jobs: Vec<u32> = per_worker.into_iter().flat_map(|(jobs, _)| jobs).collect();
    jobs.sort_unstable();
    // The final sum write may still be propagating on lossy networks;
    // writes above were acknowledged, so poll the local replica briefly.
    let expected_sum: i64 = (1..=JOBS).map(i64::from).sum();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let mut total = sum.value(runtime.main()).unwrap();
    while total != expected_sum && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(10));
        total = sum.value(runtime.main()).unwrap();
    }
    runtime.shutdown();
    Outcome { jobs, sum: total }
}

#[test]
fn same_seed_twice_produces_identical_outcomes_across_strategies() {
    let sweeps: usize = std::env::var("ORCA_SEED_SWEEP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let strategies = [
        ("broadcast", RtsStrategy::broadcast()),
        ("primary_update", RtsStrategy::primary_update()),
        ("sharded_multi", RtsStrategy::sharded(4)),
        ("adaptive", RtsStrategy::adaptive()),
    ];
    let expected = Outcome {
        jobs: (1..=JOBS).collect(),
        sum: (1..=JOBS).map(i64::from).sum(),
    };
    for k in 0..sweeps {
        let seed = 0xA5EED ^ ((k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
        let (name, strategy) = &strategies[k % strategies.len()];
        let fault = FaultConfig {
            drop_prob: 0.1,
            duplicate_prob: 0.05,
            reorder_prob: 0.05,
            seed,
        };
        let first = run_once(name, strategy.clone(), fault);
        let second = run_once(name, strategy.clone(), fault);
        assert_eq!(
            first, second,
            "strategy {name}, seed {seed}: two runs of one seed diverged \
             (reproduce with ORCA_RTS={name} ORCA_SEED={seed})"
        );
        assert_eq!(
            first, expected,
            "strategy {name}, seed {seed}: outcome is deterministic but wrong \
             (reproduce with ORCA_RTS={name} ORCA_SEED={seed})"
        );
    }
}
