//! Crash-recovery conformance: kill 1 of 4 nodes *mid-workload* under
//! every runtime-system strategy.
//!
//! The scenario exercises the hardest placement: the shared table is
//! created on the node that will be killed, so its death orphans the
//! primary copy (primary strategy), the routing table plus the partitions
//! it owned (sharded), and the authoritative home copy (adaptive). The
//! broadcast strategy keeps full replicas everywhere and rides the group
//! layer's sequencer machinery instead.
//!
//! Invariants checked for every strategy:
//!
//! * every write *acknowledged* to a surviving worker is present after
//!   recovery (in-flight unacknowledged writes may or may not land);
//! * all survivors converge on the identical table contents;
//! * the membership view agrees the killed node is gone.
//!
//! Set `ORCA_RTS=<name-prefix>` to restrict to matching strategies, like
//! the fault-injection conformance suite.

use std::time::{Duration, Instant};

use orca::amoeba::{FaultConfig, NodeId};
use orca::core::objects::{KvTable, TableEntry};
use orca::core::{standard_registry, OrcaConfig, OrcaRuntime, RecoveryConfig, RtsStrategy};
use orca::rts::{AdaptivePolicy, RegimeKind, ReplicationPolicy, WritePolicy};

/// Fault seed, overridable with `ORCA_SEED` so a reported failure
/// reproduces with one environment variable (same plumbing as the
/// conformance suite).
fn fault_seed(default: u64) -> u64 {
    std::env::var("ORCA_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

const NODES: usize = 4;
const KILLED: NodeId = NodeId(3);
/// Worker nodes that survive the kill.
const SURVIVORS: [usize; 3] = [0, 1, 2];
const OPS_PER_WORKER: u64 = 120;
/// The kill lands roughly a third of the way into the write streams.
const KILL_AFTER: Duration = Duration::from_millis(60);

fn recovery_knobs() -> RecoveryConfig {
    RecoveryConfig {
        heartbeat_every: Duration::from_millis(25),
        // A generous silence limit (300 ms): the workload threads contend
        // hard for the build machine's cores, and a heartbeat thread
        // starved past the limit would *falsely* kill a survivor — which
        // fail-stop membership cannot take back.
        suspect_after: 12,
        attempt_timeout: Duration::from_millis(250),
        rehome_wait: Duration::from_secs(10),
        ..RecoveryConfig::enabled()
    }
}

/// Replication that fetches a copy on the first access and never drops it,
/// so every survivor holds a promotable secondary when the primary dies.
fn eager_replication() -> ReplicationPolicy {
    ReplicationPolicy {
        fetch_ratio: 0.0,
        drop_ratio: -1.0,
        window: 1,
        ..ReplicationPolicy::default()
    }
}

/// Adaptive policy that never switches regimes on its own (astronomical
/// reporting thresholds) but accepts an explicit `propose_regime` once the
/// priming reads are flushed — so the object is *deterministically* in the
/// replicated regime (with mirrors to recover from) when the home dies.
fn pinned_adaptive() -> AdaptivePolicy {
    AdaptivePolicy {
        report_every: u64::MAX / 4,
        evaluate_every: u64::MAX / 4,
        min_accesses: 16,
        ..AdaptivePolicy::default()
    }
}

fn filter_strategies(all: Vec<(&'static str, RtsStrategy)>) -> Vec<(&'static str, RtsStrategy)> {
    match std::env::var("ORCA_RTS") {
        Ok(only) if !only.is_empty() => {
            let filtered: Vec<_> = all
                .into_iter()
                .filter(|(name, _)| name.starts_with(&only))
                .collect();
            assert!(!filtered.is_empty(), "ORCA_RTS={only} matches no strategy");
            filtered
        }
        _ => all,
    }
}

fn strategies() -> Vec<(&'static str, RtsStrategy)> {
    filter_strategies(vec![
        ("broadcast", RtsStrategy::broadcast()),
        (
            "primary_update",
            RtsStrategy::PrimaryCopy {
                policy: WritePolicy::Update,
                replication: eager_replication(),
            },
        ),
        ("sharded", RtsStrategy::sharded(4)),
        (
            "adaptive",
            RtsStrategy::Adaptive {
                policy: pinned_adaptive(),
            },
        ),
    ])
}

fn entry_for(key: u64) -> TableEntry {
    TableEntry {
        depth: 0,
        value: key as i64,
        aux: 1,
    }
}

/// Run the crash scenario under one strategy and check every invariant.
/// `fault` perturbs all unreliable traffic for the whole run (the chaotic
/// lane combines it with the kill); `create_on` picks the node whose death
/// the object must survive — every strategy but primary-invalidate places
/// the object on the doomed node.
fn run_crash_scenario_on(name: &str, strategy: RtsStrategy, fault: FaultConfig, create_on: usize) {
    let config = OrcaConfig {
        strategy,
        recovery: recovery_knobs(),
        fault,
        ..OrcaConfig::broadcast(NODES)
    };
    let adaptive = matches!(config.strategy, RtsStrategy::Adaptive { .. });
    let runtime = OrcaRuntime::start(config, standard_registry());
    // Usually created on the doomed node: its death orphans whatever
    // authority the strategy placed there.
    let table = KvTable::create(runtime.context(create_on)).unwrap();

    // Priming: every surviving node reads the table, which builds the
    // secondary copies (primary strategy) and the usage evidence plus
    // mirrors (adaptive, after the forced proposal below).
    for _ in 0..24 {
        for w in SURVIVORS {
            assert_eq!(table.get(runtime.context(w), 0).unwrap(), None);
        }
    }
    if adaptive {
        let regime = runtime.propose_regime(table.handle().id()).unwrap();
        assert_eq!(
            regime,
            RegimeKind::Replicated,
            "{name}: priming reads must put the table in the replicated regime"
        );
        // One read per survivor installs the mirrors recovery will need.
        for w in SURVIVORS {
            assert_eq!(table.get(runtime.context(w), 0).unwrap(), None);
        }
    }

    // The write streams: each surviving worker puts distinct keys and
    // records exactly which ones were acknowledged.
    let workers: Vec<_> = SURVIVORS
        .map(|w| {
            runtime.fork_on(w, "ledger", move |ctx| {
                let mut acked = Vec::new();
                for i in 0..OPS_PER_WORKER {
                    let key = (w as u64) * 100_000 + i;
                    // A NodeDown/Timeout while recovery settles means the
                    // write may or may not have landed; it is simply not
                    // acknowledged. Keep going.
                    if table.put(&ctx, key, entry_for(key)).is_ok() {
                        acked.push(key);
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                acked
            })
        })
        .into_iter()
        .collect();

    std::thread::sleep(KILL_AFTER);
    runtime.kill_node(KILLED);

    let acked_per_worker: Vec<Vec<u64>> = workers.into_iter().map(|w| w.join()).collect();
    let acked: Vec<u64> = acked_per_worker.iter().flatten().copied().collect();
    assert!(
        !acked.is_empty(),
        "{name}: the workload produced no acknowledged writes"
    );

    // The membership view converges on the survivors.
    let deadline = Instant::now() + Duration::from_secs(10);
    let view = loop {
        let view = runtime.membership_view().expect("recovery enabled");
        if view.epoch >= 1 {
            break view;
        }
        assert!(Instant::now() < deadline, "{name}: kill never detected");
        std::thread::sleep(Duration::from_millis(10));
    };
    assert_eq!(
        view.alive,
        SURVIVORS.map(NodeId::from).to_vec(),
        "{name}: wrong membership view at epoch {}",
        view.epoch
    );

    // No acknowledged write is lost: every acked key becomes readable on
    // every survivor (bounded wait covers re-homing plus, for broadcast,
    // the propagation of the final appends).
    let deadline = Instant::now() + Duration::from_secs(20);
    for w in SURVIVORS {
        let ctx = runtime.context(w);
        for &key in &acked {
            loop {
                match table.get(ctx, key) {
                    Ok(Some(entry)) => {
                        assert_eq!(
                            entry,
                            entry_for(key),
                            "{name}: node {w} sees a corrupted entry for {key}"
                        );
                        break;
                    }
                    Ok(None) | Err(_) => {
                        assert!(
                            Instant::now() < deadline,
                            "{name}: acknowledged write {key} lost (node {w})"
                        );
                        std::thread::sleep(Duration::from_millis(10));
                    }
                }
            }
        }
    }

    // Survivors converge on the identical table: same size everywhere once
    // the state is quiescent (contents equality follows from the per-key
    // checks above plus equal cardinality).
    let sizes: Vec<u64> = SURVIVORS
        .iter()
        .map(|&w| {
            let ctx = runtime.context(w);
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                let len = table.len(ctx).unwrap();
                if len >= acked.len() as u64 {
                    return len;
                }
                assert!(Instant::now() < deadline, "{name}: node {w} stuck short");
                std::thread::sleep(Duration::from_millis(10));
            }
        })
        .collect();
    assert!(
        sizes.windows(2).all(|pair| pair[0] == pair[1]),
        "{name}: survivors diverged on table size: {sizes:?}"
    );
    runtime.shutdown();
}

#[test]
fn crash_mid_workload_all_strategies_keep_every_acknowledged_write() {
    for (name, strategy) in strategies() {
        run_crash_scenario_on(name, strategy, FaultConfig::reliable(), KILLED.index());
    }
}

/// The chaotic conformance lane: `FaultConfig::chaotic` *and* a mid-workload
/// kill, across all five strategy families. Loss, duplication and
/// reordering stress the very protocols recovery rides on (heartbeats,
/// group retransmission, re-homing RPC) while a node dies under them.
///
/// Primary-invalidate is the one family whose crash recovery legitimately
/// cannot promise promotion: writes invalidate every secondary, so at the
/// moment of death no survivor may hold a promotable copy. Its lane
/// therefore keeps the object on a surviving node and exercises loss +
/// crash around it (membership churn, aborted RPCs) rather than
/// promotion-after-crash.
#[test]
fn chaotic_lane_crash_plus_loss_across_all_strategy_families() {
    let seed = fault_seed(0xC4A05);
    let fault = FaultConfig::chaotic(seed);
    let all = filter_strategies(vec![
        ("broadcast", RtsStrategy::broadcast()),
        (
            "primary_update",
            RtsStrategy::PrimaryCopy {
                policy: WritePolicy::Update,
                replication: eager_replication(),
            },
        ),
        ("sharded", RtsStrategy::sharded(4)),
        (
            "adaptive",
            RtsStrategy::Adaptive {
                policy: pinned_adaptive(),
            },
        ),
        (
            "primary_invalidate",
            RtsStrategy::PrimaryCopy {
                policy: WritePolicy::Invalidate,
                replication: eager_replication(),
            },
        ),
    ]);
    for (name, strategy) in all {
        let create_on = if name == "primary_invalidate" {
            SURVIVORS[0]
        } else {
            KILLED.index()
        };
        run_crash_scenario_on(
            &format!("{name} (chaotic, ORCA_SEED={seed})"),
            strategy,
            fault,
            create_on,
        );
    }
}

/// The detect-only mode satisfies the fail-fast contract at the Orca
/// layer too: with re-homing disabled, an operation against the killed
/// node's object reports `NodeDown` well inside the operation deadline.
#[test]
fn detect_only_surfaces_node_down_at_the_orca_layer() {
    let config = OrcaConfig {
        strategy: RtsStrategy::PrimaryCopy {
            policy: WritePolicy::Update,
            replication: ReplicationPolicy::never_replicate(),
        },
        recovery: RecoveryConfig {
            heartbeat_every: Duration::from_millis(25),
            suspect_after: 8,
            ..RecoveryConfig::detect_only()
        },
        ..OrcaConfig::broadcast(2)
    };
    let runtime = OrcaRuntime::start(config, standard_registry());
    let table = KvTable::create(runtime.context(1)).unwrap();
    assert!(table.put(runtime.context(0), 7, entry_for(7)).unwrap());
    runtime.kill_node(NodeId(1));
    let deadline = Instant::now() + Duration::from_secs(10);
    while runtime.membership_view().unwrap().epoch < 1 {
        assert!(Instant::now() < deadline, "kill never detected");
        std::thread::sleep(Duration::from_millis(10));
    }
    let started = Instant::now();
    let err = table.put(runtime.context(0), 8, entry_for(8)).unwrap_err();
    assert_eq!(err, orca::rts::RtsError::NodeDown(NodeId(1)));
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "NodeDown was not fail-fast"
    );
    runtime.shutdown();
}

/// Tentpole acceptance: a *pipelined* batch of writes interrupted by
/// `kill_node` loses no acknowledged operation and duplicates none.
///
/// Survivor workers stream distinct jobs into a sharded queue through the
/// asynchronous path (windows of 8 in flight, coalesced into per-owner
/// batches — including the synchronous backup-replica hop). Node 3, which
/// owns some partitions and backs up others, is killed mid-stream. A batch
/// that dies with it reports a per-operation outcome: those futures resolve
/// with an error (`NodeDown`/`Timeout`) and are simply not acknowledged —
/// the asynchronous path never re-sends across a failure, so nothing can
/// double-apply. After recovery, the drained queue must contain every
/// acknowledged job exactly once and no job more than once.
#[test]
fn async_batch_interrupted_by_kill_loses_no_acked_op_and_duplicates_none() {
    use orca::core::objects::{JobQueue, JobQueueOp};
    use orca::core::BatchPolicy;
    use orca::wire::Wire;

    const BATCH_OPS_PER_WORKER: u64 = 240;
    let config = OrcaConfig {
        strategy: RtsStrategy::sharded(4),
        recovery: recovery_knobs(),
        ..OrcaConfig::broadcast(NODES)
    }
    .with_batch(BatchPolicy {
        max_batch: 8,
        max_delay: Duration::from_micros(500),
    });
    let runtime = OrcaRuntime::start(config, standard_registry());
    let queue: JobQueue<u64> = JobQueue::create(runtime.main()).unwrap();

    let workers: Vec<_> = SURVIVORS
        .map(|w| {
            let handle = queue.handle();
            runtime.fork_on(w, "batch-writer", move |ctx| {
                let mut acked = Vec::new();
                let mut issued = 0u64;
                while issued < BATCH_OPS_PER_WORKER {
                    let window: Vec<JobQueueOp> = (0..8)
                        .map(|i| {
                            let job = (w as u64) * 1_000_000 + issued + i;
                            JobQueueOp::AddJob(job.to_bytes())
                        })
                        .collect();
                    let futures = ctx.invoke_many(handle, &window);
                    for (i, future) in futures.iter().enumerate() {
                        // An errored op is not acknowledged; it is NOT
                        // retried (it may or may not have landed before the
                        // crash — re-sending could duplicate it).
                        if future.wait().is_ok() {
                            acked.push((w as u64) * 1_000_000 + issued + i as u64);
                        }
                    }
                    issued += 8;
                    std::thread::sleep(Duration::from_millis(2));
                }
                acked
            })
        })
        .into_iter()
        .collect();

    std::thread::sleep(Duration::from_millis(25));
    runtime.kill_node(KILLED);

    let acked: Vec<u64> = workers.into_iter().flat_map(|w| w.join()).collect();
    assert!(
        !acked.is_empty(),
        "sharded async batch workload produced no acknowledged writes"
    );

    // Wait for the membership to agree, then close and drain from a
    // survivor (the synchronous path rides the re-homing machinery).
    let deadline = Instant::now() + Duration::from_secs(10);
    while runtime.membership_view().expect("recovery enabled").epoch < 1 {
        assert!(
            Instant::now() < deadline,
            "sharded async batch: kill never detected"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    queue.close(runtime.context(1)).unwrap();
    let mut drained = Vec::new();
    while let Some(job) = queue.get(runtime.context(1)).unwrap() {
        drained.push(job);
    }
    drained.sort_unstable();
    // No duplicated op: every job (acked or not) appears at most once.
    let mut deduped = drained.clone();
    deduped.dedup();
    assert_eq!(
        drained, deduped,
        "sharded async batch: a job was applied twice across the kill"
    );
    // No lost acked op: every acknowledged job survived the crash.
    for job in &acked {
        assert!(
            drained.binary_search(job).is_ok(),
            "sharded async batch: acknowledged job {job} was lost (drained {} of {} acked)",
            drained.len(),
            acked.len()
        );
    }
    runtime.shutdown();
}
