//! Cross-crate integration tests: the whole stack from the simulated network
//! up to the applications.

use std::time::Duration;

use orca::amoeba::{FaultConfig, NodeId};
use orca::apps::{acp, tsp};
use orca::core::objects::{BoolArray, IntObject, IntOp, JobQueue, SharedInt};
use orca::core::{replicated_workers, OrcaConfig, OrcaRuntime, RtsStrategy};
use orca::rts::WritePolicy;

#[test]
fn replicated_worker_program_runs_on_every_runtime_system() {
    for strategy in [
        RtsStrategy::broadcast(),
        RtsStrategy::primary_update(),
        RtsStrategy::primary_invalidate(),
    ] {
        let config = OrcaConfig {
            strategy,
            ..OrcaConfig::broadcast(3)
        };
        let runtime = OrcaRuntime::start(config, orca::core::standard_registry());
        let main = runtime.main();
        let queue: JobQueue<u32> = JobQueue::create(main).unwrap();
        let sum = SharedInt::create(main, 0).unwrap();
        for job in 1..=30u32 {
            queue.add(main, &job).unwrap();
        }
        queue.close(main).unwrap();
        replicated_workers(&runtime, 3, move |_worker, ctx| {
            while let Some(job) = queue.get(&ctx).unwrap() {
                sum.add(&ctx, i64::from(job)).unwrap();
            }
        });
        assert_eq!(sum.value(runtime.main()).unwrap(), (1..=30).sum::<i64>());
        runtime.shutdown();
    }
}

#[test]
fn tsp_on_a_lossy_network_still_finds_the_optimum() {
    let instance = tsp::TspInstance::random(8, 5);
    let sequential = tsp::solve_sequential(&instance);
    let config = OrcaConfig::broadcast(3).with_fault(FaultConfig {
        drop_prob: 0.05,
        duplicate_prob: 0.02,
        reorder_prob: 0.02,
        seed: 99,
    });
    let runtime = OrcaRuntime::start(config, orca::core::standard_registry());
    let (solution, _) = tsp::solve_parallel(&runtime, &instance, 3);
    assert_eq!(solution.best_length, sequential.best_length);
    runtime.shutdown();
}

#[test]
fn acp_parallel_equals_sequential_across_worker_counts() {
    let instance = acp::AcpInstance::random(12, 5, 20, 21);
    let sequential = acp::solve_sequential(&instance);
    for workers in [2usize, 4] {
        let runtime = acp::runtime(workers);
        let (parallel, _) = acp::solve_parallel(&runtime, &instance, workers);
        assert_eq!(parallel.no_solution, sequential.no_solution);
        if !parallel.no_solution {
            assert_eq!(parallel.domains, sequential.domains);
        }
        runtime.shutdown();
    }
}

#[test]
fn primary_copy_runtime_survives_concurrent_mixed_load() {
    let runtime = OrcaRuntime::start(
        OrcaConfig::primary_copy(4, WritePolicy::Update),
        orca::core::standard_registry(),
    );
    let main = runtime.main();
    let counter = runtime.create::<IntObject>(&0).unwrap();
    let flags = BoolArray::create(main, 4, false).unwrap();
    let mut handles = Vec::new();
    for node in 0..4 {
        handles.push(runtime.fork_on(node, "mixed", move |ctx| {
            for i in 0..25 {
                ctx.invoke(counter, &IntOp::Add(1)).unwrap();
                if i % 5 == 0 {
                    ctx.invoke(counter, &IntOp::Value).unwrap();
                }
            }
            flags.set(&ctx, node as u32, true).unwrap();
        }));
    }
    for handle in handles {
        handle.join();
    }
    assert_eq!(runtime.main().invoke(counter, &IntOp::Value).unwrap(), 100);
    assert!(flags.all_true(runtime.main()).unwrap());
    runtime.shutdown();
}

#[test]
fn network_statistics_reflect_application_traffic() {
    let runtime = OrcaRuntime::standard(4);
    let counter = runtime.create::<IntObject>(&0).unwrap();
    let before = runtime.network_stats();
    let worker = runtime.fork_on(2, "writer", move |ctx| {
        for _ in 0..10 {
            ctx.invoke(counter, &IntOp::Add(1)).unwrap();
        }
        for _ in 0..100 {
            ctx.invoke(counter, &IntOp::Value).unwrap();
        }
    });
    worker.join();
    // Give the last broadcast a moment to reach every replica.
    std::thread::sleep(Duration::from_millis(100));
    let delta = runtime.network_stats().since(&before);
    // Writes generate broadcasts; the 100 local reads generate none.
    assert!(delta.node(NodeId(2)).broadcasts_sent + delta.node(NodeId(2)).p2p_sent >= 10);
    let rts = runtime.rts_stats();
    assert!(rts[2].local_reads >= 100);
    assert_eq!(rts[2].writes, 10);
    runtime.shutdown();
}
