//! Flight-recorder acceptance: when an invariant check fails, the runtime's
//! black box must land on disk and contain the *causal span* of the
//! offending invocation — which nodes it touched, in what order — so a
//! violation report is debuggable without a rerun.
//!
//! The violation here is forced: the history handed to the checker is
//! deliberately corrupted (as if the runtime had lost an acknowledged
//! write), because the point under test is the failure path, not the
//! runtime's correctness (the conformance suite covers that).

use orca::core::objects::{IntObject, IntOp};
use orca::core::{standard_registry, OrcaConfig, OrcaRuntime};
use orca_check::{sequentially_consistent, HistOp};

/// The invariant-check idiom the suites use: pass, or persist the flight
/// dump and hand back its path for the failure message.
fn check_or_dump(
    runtime: &OrcaRuntime,
    histories: &[Vec<HistOp>],
    name: &str,
) -> Result<(), std::path::PathBuf> {
    if sequentially_consistent(histories) {
        return Ok(());
    }
    let path = runtime
        .telemetry()
        .dump_to_file(name)
        .expect("writing flight dump");
    Err(path)
}

#[test]
fn forced_violation_dumps_causal_span_of_offending_invocation() {
    let runtime = OrcaRuntime::start(OrcaConfig::broadcast(2), standard_registry());
    let counter = runtime.create::<IntObject>(&0).unwrap();
    let ctx = runtime.context(1);
    // The invocation under suspicion: the first (and only) one entering at
    // node 1, so its minted trace id is deterministically t1.0.
    let reply = ctx.invoke(counter, &IntOp::Add(5)).unwrap();
    assert_eq!(reply, 5);

    // The honest history passes and writes nothing.
    let honest = vec![vec![HistOp::new(5, reply)]];
    assert!(check_or_dump(&runtime, &honest, "unused").is_ok());

    // Corrupt the recorded reply, as if the write had been lost: the
    // checker must reject it and the dump must carry the invocation's span.
    let corrupted = vec![vec![HistOp::new(5, reply + 1)]];
    let path = check_or_dump(&runtime, &corrupted, "forced_violation")
        .expect_err("corrupted history accepted");
    let dump = std::fs::read_to_string(&path).unwrap();
    assert!(
        dump.contains("trace t1.0"),
        "dump at {} lacks the offending invocation's span:\n{dump}",
        path.display()
    );
    assert!(dump.contains("invoke-start"), "span lacks invoke-start");
    assert!(dump.contains("traced invocations"));
    assert!(dump.contains("=== metrics ==="));
    runtime.shutdown();
}
