//! Cross-RTS conformance suite.
//!
//! The Orca model promises that an application observes the *same* behavior
//! regardless of which runtime system keeps its replicas consistent: the
//! broadcast RTS (full replication, operation shipping), the primary-copy
//! RTS in both its update and invalidate variants, and the sharded RTS
//! (partitioned objects, owner-shipped operations) are interchangeable
//! implementations of consistent shared objects. This suite runs one
//! replicated-worker program under all strategies — with network fault
//! injection enabled — and asserts that every observable (job coverage,
//! final sums, table contents) is identical.
//!
//! Set `ORCA_RTS=<name-prefix>` to restrict the suite to matching
//! strategies (CI runs a dedicated `ORCA_RTS=sharded` matrix entry), and
//! `ORCA_SEED=<n>` to override every fault-injection seed — the seed a
//! failure reports reproduces that failure with this one variable.
//!
//! Beyond the fixed-workload observable comparison, the suite records
//! per-process *invocation histories* (operation, reply, issue order) on a
//! shared counter and feeds them to a sequential-consistency checker that
//! searches for one legal total order explaining every process's
//! observations — across all five strategy families, on both the
//! synchronous and the pipelined asynchronous invocation paths, with and
//! without fault injection.

use orca::amoeba::FaultConfig;
use orca::core::objects::{BoolArray, IntObject, IntOp, JobQueue, KvTable, SharedInt, TableEntry};
use orca::core::{
    replicated_workers, standard_registry, BatchPolicy, OrcaConfig, OrcaRuntime, RtsStrategy,
};

const WORKERS: usize = 3;
const JOBS: u32 = 40;

/// Fault seed, overridable with `ORCA_SEED` so a reported failure
/// reproduces with one environment variable.
fn fault_seed(default: u64) -> u64 {
    std::env::var("ORCA_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Everything the replicated-worker program can observe at the end of a
/// run. Sorted so scheduling nondeterminism (which worker gets which job)
/// does not leak into the comparison.
#[derive(Debug, PartialEq, Eq)]
struct Observables {
    /// Every job, as seen by whichever worker processed it, sorted.
    jobs_processed: Vec<u32>,
    /// Final value of the shared accumulator.
    sum: i64,
    /// Final shared-table contents: job -> job squared.
    squares: Vec<(u32, i64)>,
    /// Every worker raised its completion flag.
    all_done: bool,
}

fn strategies() -> Vec<(&'static str, RtsStrategy)> {
    let all = vec![
        ("broadcast", RtsStrategy::broadcast()),
        ("primary_update", RtsStrategy::primary_update()),
        ("primary_invalidate", RtsStrategy::primary_invalidate()),
        // Single-partition sharding must be observationally identical to
        // primary-copy; multi-partition sharding parallelizes writes but
        // must not change any observable either.
        ("sharded", RtsStrategy::sharded(1)),
        ("sharded_multi", RtsStrategy::sharded(4)),
        // With default thresholds the adaptive system stays in the primary
        // regime for a run this short; the eager variant reports,
        // evaluates and switches after very little evidence, so regime
        // changes happen *during* the run — while workers are mid-drain
        // and the fault injector is dropping packets — and must not change
        // any observable.
        ("adaptive", RtsStrategy::adaptive()),
        (
            "adaptive_eager",
            RtsStrategy::Adaptive {
                policy: orca::rts::AdaptivePolicy::eager(),
            },
        ),
    ];
    match std::env::var("ORCA_RTS") {
        Ok(only) if !only.is_empty() => {
            let filtered: Vec<_> = all
                .into_iter()
                .filter(|(name, _)| name.starts_with(&only))
                .collect();
            assert!(!filtered.is_empty(), "ORCA_RTS={only} matches no strategy");
            filtered
        }
        _ => all,
    }
}

/// The reference program: a shared job queue feeds workers that accumulate
/// into a shared integer, publish per-job results into a shared table, and
/// raise a completion flag.
fn run_program(strategy: RtsStrategy, fault: FaultConfig) -> Observables {
    let config = OrcaConfig {
        fault,
        strategy,
        ..OrcaConfig::broadcast(WORKERS)
    };
    let runtime = OrcaRuntime::start(config, standard_registry());
    let main = runtime.main();
    let queue: JobQueue<u32> = JobQueue::create(main).unwrap();
    let sum = SharedInt::create(main, 0).unwrap();
    let squares = KvTable::create(main).unwrap();
    let done = BoolArray::create(main, WORKERS, false).unwrap();
    for job in 1..=JOBS {
        queue.add(main, &job).unwrap();
    }
    queue.close(main).unwrap();

    let per_worker: Vec<Vec<u32>> = replicated_workers(&runtime, WORKERS, move |worker, ctx| {
        let mut mine = Vec::new();
        while let Some(job) = queue.get(&ctx).unwrap() {
            sum.add(&ctx, i64::from(job)).unwrap();
            let entry = TableEntry {
                depth: 0,
                value: i64::from(job) * i64::from(job),
                aux: 0,
            };
            squares.put(&ctx, u64::from(job), entry).unwrap();
            mine.push(job);
        }
        done.set(&ctx, worker as u32, true).unwrap();
        mine
    });

    let mut jobs_processed: Vec<u32> = per_worker.into_iter().flatten().collect();
    jobs_processed.sort_unstable();
    let main = runtime.main();
    // Under message loss the workers' final broadcasts may still be in
    // flight (awaiting gap repair) when the workers join; reads on main are
    // local replica reads, so wait for the last write to become visible
    // before snapshotting the observables.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while !done.all_true(main).unwrap() && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let mut squares_out: Vec<(u32, i64)> = (1..=JOBS)
        .filter_map(|job| {
            squares
                .get(main, u64::from(job))
                .unwrap()
                .map(|entry| (job, entry.value))
        })
        .collect();
    squares_out.sort_unstable();
    let observed = Observables {
        jobs_processed,
        sum: sum.value(main).unwrap(),
        squares: squares_out,
        all_done: done.all_true(main).unwrap(),
    };
    runtime.shutdown();
    observed
}

fn expected() -> Observables {
    Observables {
        jobs_processed: (1..=JOBS).collect(),
        sum: (1..=JOBS).map(i64::from).sum(),
        squares: (1..=JOBS)
            .map(|j| (j, i64::from(j) * i64::from(j)))
            .collect(),
        all_done: true,
    }
}

#[test]
fn all_strategies_agree_on_a_reliable_network() {
    for (name, strategy) in strategies() {
        let observed = run_program(strategy, FaultConfig::reliable());
        assert_eq!(
            observed,
            expected(),
            "strategy {name} diverged (reliable network; reproduce with ORCA_RTS={name})"
        );
    }
}

#[test]
fn all_strategies_agree_under_fault_injection() {
    // The broadcast RTS rides on the PB/BB recovery protocols and the
    // primary-copy RTS on reliable RPC transport, so a lossy, duplicating,
    // reordering network must not change any observable outcome.
    let fault = FaultConfig {
        drop_prob: 0.1,
        duplicate_prob: 0.05,
        reorder_prob: 0.05,
        seed: fault_seed(0x5EED),
    };
    for (name, strategy) in strategies() {
        let observed = run_program(strategy, fault);
        assert_eq!(
            observed,
            expected(),
            "strategy {name} diverged under faults (reproduce with ORCA_RTS={name} ORCA_SEED={})",
            fault.seed
        );
    }
}

#[test]
fn sharded_single_partition_matches_primary_update_exactly() {
    // The acceptance bar for the sharded runtime system: with N = 1 every
    // shardable object degenerates to one owner-held copy and the program
    // must observe exactly what the primary-copy (update) system produces.
    let sharded = run_program(RtsStrategy::sharded(1), FaultConfig::reliable());
    let primary = run_program(RtsStrategy::primary_update(), FaultConfig::reliable());
    assert_eq!(sharded, primary);
}

/// Per-object partition placements (owner node index per partition).
type Placements = Vec<Vec<u16>>;

/// Per-node message-delivery counts:
/// `(p2p sent, broadcasts sent, interrupts taken, drops)`.
type DeliveryCounts = Vec<(u64, u64, u64, u64)>;

/// Trace of one deterministic single-threaded sharded run: partition
/// placements of every object plus the per-node message-delivery counts.
/// Byte counts are deliberately excluded: RPC request ids come from a
/// process-global counter, so their varint encodings (and nothing else)
/// differ between two runs in one test process.
fn sharded_trace(partitions: u32) -> (Placements, DeliveryCounts) {
    let runtime = OrcaRuntime::start(OrcaConfig::sharded(4, partitions), standard_registry());
    let main = runtime.main();
    let queue: JobQueue<u32> = JobQueue::create(main).unwrap();
    let squares = KvTable::create(main).unwrap();
    for job in 1..=24u32 {
        queue.add(main, &job).unwrap();
    }
    queue.close(main).unwrap();
    // Drain single-threadedly from a non-creating node so every operation
    // sequence (and thus every message sequence) is fully determined.
    let ctx = runtime.context(2);
    while let Some(job) = queue.get(ctx).unwrap() {
        let entry = TableEntry {
            depth: 0,
            value: i64::from(job) * i64::from(job),
            aux: 0,
        };
        squares.put(ctx, u64::from(job), entry).unwrap();
    }
    let placements = [queue.handle().id(), squares.handle().id()]
        .into_iter()
        .map(|object| {
            runtime
                .shard_owners(object)
                .unwrap()
                .into_iter()
                .map(|node| node.0)
                .collect()
        })
        .collect();
    let deliveries = runtime
        .network_stats()
        .per_node
        .iter()
        .map(|node| {
            (
                node.p2p_sent,
                node.broadcasts_sent,
                node.interrupts,
                node.dropped,
            )
        })
        .collect();
    runtime.shutdown();
    (placements, deliveries)
}

#[test]
fn sharded_placement_and_delivery_are_deterministic() {
    // Two runs of the same configuration must place every partition on the
    // same owner and exchange byte-identical traffic: shard placement is a
    // pure function of the object id, and routing decisions (including the
    // GetJob partition scan order) contain no hidden nondeterminism.
    let (placements_a, stats_a) = sharded_trace(4);
    let (placements_b, stats_b) = sharded_trace(4);
    assert_eq!(placements_a, placements_b, "shard placement changed");
    assert_eq!(stats_a, stats_b, "delivery sequences changed");
    // The queue really is spread: its partitions have more than one owner.
    let queue_owners: std::collections::BTreeSet<u16> = placements_a[0].iter().copied().collect();
    assert!(queue_owners.len() > 1, "expected a multi-owner placement");
}

#[test]
fn fault_schedule_seed_does_not_leak_into_observables() {
    // Different fault schedules change *how* the protocols recover, never
    // *what* the application observes.
    for seed in [1u64, 99, 0xA30EBA] {
        let fault = FaultConfig {
            drop_prob: 0.15,
            duplicate_prob: 0.05,
            reorder_prob: 0.05,
            seed: fault_seed(seed),
        };
        let observed = run_program(RtsStrategy::broadcast(), fault);
        assert_eq!(
            observed,
            expected(),
            "seed {} changed observables (reproduce with ORCA_SEED={})",
            fault.seed,
            fault.seed
        );
    }
}

// ---------------------------------------------------------------------------
// Sequential-consistency history checking.
//
// Workers hammer one shared counter with `Add` operations (each returns the
// post-operation sum) and occasional `Value` reads, recording their own
// history in issue order. The checker itself lives in `orca-check` (shared
// with the seed sweep and the `orca-mc` bounded model checker): it searches
// for ONE total order of all operations, consistent with every process's
// issue order, in which each reply equals the running prefix sum.
// ---------------------------------------------------------------------------

use orca_check::{sequentially_consistent, HistOp};

const HIST_WORKERS: usize = 3;
const HIST_OPS: usize = 12;

/// Run the counter workload under one strategy and record every worker's
/// history. `async_path` drives the pipelined asynchronous invocations
/// (windows of 4 kept in flight, waited in issue order) instead of the
/// blocking path.
fn run_history_program(
    label: &str,
    strategy: RtsStrategy,
    fault: FaultConfig,
    async_path: bool,
) -> Vec<Vec<HistOp>> {
    let config = OrcaConfig {
        fault,
        strategy,
        ..OrcaConfig::broadcast(HIST_WORKERS)
    }
    .with_batch(BatchPolicy {
        max_batch: 8,
        max_delay: std::time::Duration::from_millis(2),
    });
    let runtime = OrcaRuntime::start(config, standard_registry());
    let counter = runtime.create::<IntObject>(&0).unwrap();
    let seed = fault.seed;
    let workers: Vec<_> = (0..HIST_WORKERS)
        .map(|w| {
            let label = format!("{label} (ORCA_SEED={seed})");
            runtime.fork_on(w, "historian", move |ctx| {
                // Distinct deltas per (worker, op) make replies maximally
                // discriminating; every 4th op is a read.
                let ops: Vec<IntOp> = (0..HIST_OPS)
                    .map(|i| {
                        if i % 4 == 3 {
                            IntOp::Value
                        } else {
                            IntOp::Add((w * HIST_OPS + i + 1) as i64)
                        }
                    })
                    .collect();
                let deltas: Vec<i64> = ops
                    .iter()
                    .map(|op| match op {
                        IntOp::Add(d) => *d,
                        _ => 0,
                    })
                    .collect();
                let replies: Vec<i64> = if async_path {
                    let mut replies = Vec::new();
                    for window in ops.chunks(4) {
                        let futures = ctx.invoke_many(counter, window);
                        for future in &futures {
                            replies.push(future.wait().unwrap_or_else(|err| {
                                panic!("{label}: async invocation failed: {err}")
                            }));
                        }
                    }
                    replies
                } else {
                    ops.iter()
                        .map(|op| {
                            ctx.invoke(counter, op).unwrap_or_else(|err| {
                                panic!("{label}: sync invocation failed: {err}")
                            })
                        })
                        .collect()
                };
                deltas
                    .into_iter()
                    .zip(replies)
                    .map(|(delta, reply)| HistOp { delta, reply })
                    .collect::<Vec<HistOp>>()
            })
        })
        .collect();
    let histories: Vec<Vec<HistOp>> = workers.into_iter().map(|w| w.join()).collect();
    // Check consistency while the runtime (and its flight recorder) is
    // still alive: a violation persists the black box — every protocol
    // event of the run plus the causal span of each invocation — and the
    // failure message carries its path.
    if !sequentially_consistent(&histories) {
        let slug: String = label
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        let dump = runtime
            .telemetry()
            .dump_to_file(&format!("conformance_{slug}"));
        panic!(
            "{label}: no sequentially consistent total order explains the \
             histories {histories:?}\n  flight dump: {dump:?}"
        );
    }
    runtime.shutdown();
    histories
}

/// The strategy families the history checker sweeps (one representative
/// per family — five in all).
fn history_strategies() -> Vec<(&'static str, RtsStrategy)> {
    strategies()
        .into_iter()
        .filter(|(name, _)| {
            matches!(
                *name,
                "broadcast"
                    | "primary_update"
                    | "primary_invalidate"
                    | "sharded_multi"
                    | "adaptive_eager"
            )
        })
        .collect()
}

#[test]
fn histories_are_sequentially_consistent_on_sync_and_async_paths() {
    let faults = [
        ("reliable", FaultConfig::reliable()),
        (
            "faulty",
            FaultConfig {
                drop_prob: 0.08,
                duplicate_prob: 0.04,
                reorder_prob: 0.04,
                seed: fault_seed(0xC0FFEE),
            },
        ),
    ];
    for (name, strategy) in history_strategies() {
        for (fault_name, fault) in faults {
            for async_path in [false, true] {
                let path = if async_path { "async" } else { "sync" };
                let label = format!("strategy {name}, {fault_name} network, {path} path");
                let histories = run_history_program(&label, strategy.clone(), fault, async_path);
                // Per-process per-object issue-order completion: with all
                // deltas positive, a later-issued write must return a
                // strictly larger sum than an earlier one. An RTS that
                // reordered or dropped a pipelined write breaks this
                // before the full checker even runs.
                for (w, history) in histories.iter().enumerate() {
                    let write_replies: Vec<i64> = history
                        .iter()
                        .filter(|op| op.delta != 0)
                        .map(|op| op.reply)
                        .collect();
                    assert!(
                        write_replies.windows(2).all(|pair| pair[0] < pair[1]),
                        "{label} (ORCA_SEED={}): worker {w} writes completed out of \
                         issue order: {write_replies:?}",
                        fault.seed
                    );
                }
                assert!(
                    sequentially_consistent(&histories),
                    "{label} (ORCA_SEED={}): no sequentially consistent total order \
                     explains the histories {histories:?}",
                    fault.seed
                );
            }
        }
    }
}

/// Checker self-test: legal interleavings pass, deliberately broken
/// orderings are caught.
#[test]
fn history_checker_catches_broken_orderings() {
    let op = |delta, reply| HistOp { delta, reply };
    // Two legal serializations of two single-op processes.
    assert!(sequentially_consistent(&[vec![op(1, 1)], vec![op(2, 3)]]));
    assert!(sequentially_consistent(&[vec![op(1, 3)], vec![op(2, 2)]]));
    // Both processes claim to have run first: no total order explains it.
    assert!(!sequentially_consistent(&[vec![op(1, 1)], vec![op(2, 2)]]));
    // A read observing a sum no prefix can produce.
    assert!(!sequentially_consistent(&[vec![op(1, 1), op(0, 99)]]));
    // Issue-order violation inside one process: the replies of its two
    // writes are swapped relative to a legal execution.
    assert!(sequentially_consistent(&[
        vec![op(1, 3), op(4, 7)],
        vec![op(2, 2)],
    ]));
    assert!(!sequentially_consistent(&[
        vec![op(1, 7), op(4, 3)],
        vec![op(2, 2)],
    ]));
    // A lost write: the second op's reply misses the first one's delta.
    assert!(!sequentially_consistent(&[vec![op(1, 1), op(2, 2)]]));
    // The empty history is trivially consistent.
    assert!(sequentially_consistent(&[vec![], vec![]]));
}
