//! Cross-RTS conformance suite.
//!
//! The Orca model promises that an application observes the *same* behavior
//! regardless of which runtime system keeps its replicas consistent: the
//! broadcast RTS (full replication, operation shipping) and the
//! primary-copy RTS in both its update and invalidate variants are
//! interchangeable implementations of sequentially-consistent shared
//! objects. This suite runs one replicated-worker program under all three
//! strategies — with network fault injection enabled — and asserts that
//! every observable (job coverage, final sums, table contents) is
//! identical.

use orca::amoeba::FaultConfig;
use orca::core::objects::{BoolArray, JobQueue, KvTable, SharedInt, TableEntry};
use orca::core::{replicated_workers, standard_registry, OrcaConfig, OrcaRuntime, RtsStrategy};

const WORKERS: usize = 3;
const JOBS: u32 = 40;

/// Everything the replicated-worker program can observe at the end of a
/// run. Sorted so scheduling nondeterminism (which worker gets which job)
/// does not leak into the comparison.
#[derive(Debug, PartialEq, Eq)]
struct Observables {
    /// Every job, as seen by whichever worker processed it, sorted.
    jobs_processed: Vec<u32>,
    /// Final value of the shared accumulator.
    sum: i64,
    /// Final shared-table contents: job -> job squared.
    squares: Vec<(u32, i64)>,
    /// Every worker raised its completion flag.
    all_done: bool,
}

fn strategies() -> Vec<(&'static str, RtsStrategy)> {
    vec![
        ("broadcast", RtsStrategy::broadcast()),
        ("primary_update", RtsStrategy::primary_update()),
        ("primary_invalidate", RtsStrategy::primary_invalidate()),
    ]
}

/// The reference program: a shared job queue feeds workers that accumulate
/// into a shared integer, publish per-job results into a shared table, and
/// raise a completion flag.
fn run_program(strategy: RtsStrategy, fault: FaultConfig) -> Observables {
    let config = OrcaConfig {
        processors: WORKERS,
        fault,
        strategy,
    };
    let runtime = OrcaRuntime::start(config, standard_registry());
    let main = runtime.main();
    let queue: JobQueue<u32> = JobQueue::create(main).unwrap();
    let sum = SharedInt::create(main, 0).unwrap();
    let squares = KvTable::create(main).unwrap();
    let done = BoolArray::create(main, WORKERS, false).unwrap();
    for job in 1..=JOBS {
        queue.add(main, &job).unwrap();
    }
    queue.close(main).unwrap();

    let per_worker: Vec<Vec<u32>> = replicated_workers(&runtime, WORKERS, move |worker, ctx| {
        let mut mine = Vec::new();
        while let Some(job) = queue.get(&ctx).unwrap() {
            sum.add(&ctx, i64::from(job)).unwrap();
            let entry = TableEntry {
                depth: 0,
                value: i64::from(job) * i64::from(job),
                aux: 0,
            };
            squares.put(&ctx, u64::from(job), entry).unwrap();
            mine.push(job);
        }
        done.set(&ctx, worker as u32, true).unwrap();
        mine
    });

    let mut jobs_processed: Vec<u32> = per_worker.into_iter().flatten().collect();
    jobs_processed.sort_unstable();
    let main = runtime.main();
    // Under message loss the workers' final broadcasts may still be in
    // flight (awaiting gap repair) when the workers join; reads on main are
    // local replica reads, so wait for the last write to become visible
    // before snapshotting the observables.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while !done.all_true(main).unwrap() && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let mut squares_out: Vec<(u32, i64)> = (1..=JOBS)
        .filter_map(|job| {
            squares
                .get(main, u64::from(job))
                .unwrap()
                .map(|entry| (job, entry.value))
        })
        .collect();
    squares_out.sort_unstable();
    let observed = Observables {
        jobs_processed,
        sum: sum.value(main).unwrap(),
        squares: squares_out,
        all_done: done.all_true(main).unwrap(),
    };
    runtime.shutdown();
    observed
}

fn expected() -> Observables {
    Observables {
        jobs_processed: (1..=JOBS).collect(),
        sum: (1..=JOBS).map(i64::from).sum(),
        squares: (1..=JOBS)
            .map(|j| (j, i64::from(j) * i64::from(j)))
            .collect(),
        all_done: true,
    }
}

#[test]
fn all_strategies_agree_on_a_reliable_network() {
    for (name, strategy) in strategies() {
        let observed = run_program(strategy, FaultConfig::reliable());
        assert_eq!(observed, expected(), "strategy {name} diverged");
    }
}

#[test]
fn all_strategies_agree_under_fault_injection() {
    // The broadcast RTS rides on the PB/BB recovery protocols and the
    // primary-copy RTS on reliable RPC transport, so a lossy, duplicating,
    // reordering network must not change any observable outcome.
    let fault = FaultConfig {
        drop_prob: 0.1,
        duplicate_prob: 0.05,
        reorder_prob: 0.05,
        seed: 0x5EED,
    };
    for (name, strategy) in strategies() {
        let observed = run_program(strategy, fault);
        assert_eq!(
            observed,
            expected(),
            "strategy {name} diverged under faults"
        );
    }
}

#[test]
fn fault_schedule_seed_does_not_leak_into_observables() {
    // Different fault schedules change *how* the protocols recover, never
    // *what* the application observes.
    for seed in [1u64, 99, 0xA30EBA] {
        let fault = FaultConfig {
            drop_prob: 0.15,
            duplicate_prob: 0.05,
            reorder_prob: 0.05,
            seed,
        };
        let observed = run_program(RtsStrategy::broadcast(), fault);
        assert_eq!(observed, expected(), "seed {seed} changed observables");
    }
}
