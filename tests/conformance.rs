//! Cross-RTS conformance suite.
//!
//! The Orca model promises that an application observes the *same* behavior
//! regardless of which runtime system keeps its replicas consistent: the
//! broadcast RTS (full replication, operation shipping), the primary-copy
//! RTS in both its update and invalidate variants, and the sharded RTS
//! (partitioned objects, owner-shipped operations) are interchangeable
//! implementations of consistent shared objects. This suite runs one
//! replicated-worker program under all strategies — with network fault
//! injection enabled — and asserts that every observable (job coverage,
//! final sums, table contents) is identical.
//!
//! Set `ORCA_RTS=<name-prefix>` to restrict the suite to matching
//! strategies (CI runs a dedicated `ORCA_RTS=sharded` matrix entry).

use orca::amoeba::FaultConfig;
use orca::core::objects::{BoolArray, JobQueue, KvTable, SharedInt, TableEntry};
use orca::core::{replicated_workers, standard_registry, OrcaConfig, OrcaRuntime, RtsStrategy};

const WORKERS: usize = 3;
const JOBS: u32 = 40;

/// Everything the replicated-worker program can observe at the end of a
/// run. Sorted so scheduling nondeterminism (which worker gets which job)
/// does not leak into the comparison.
#[derive(Debug, PartialEq, Eq)]
struct Observables {
    /// Every job, as seen by whichever worker processed it, sorted.
    jobs_processed: Vec<u32>,
    /// Final value of the shared accumulator.
    sum: i64,
    /// Final shared-table contents: job -> job squared.
    squares: Vec<(u32, i64)>,
    /// Every worker raised its completion flag.
    all_done: bool,
}

fn strategies() -> Vec<(&'static str, RtsStrategy)> {
    let all = vec![
        ("broadcast", RtsStrategy::broadcast()),
        ("primary_update", RtsStrategy::primary_update()),
        ("primary_invalidate", RtsStrategy::primary_invalidate()),
        // Single-partition sharding must be observationally identical to
        // primary-copy; multi-partition sharding parallelizes writes but
        // must not change any observable either.
        ("sharded", RtsStrategy::sharded(1)),
        ("sharded_multi", RtsStrategy::sharded(4)),
        // With default thresholds the adaptive system stays in the primary
        // regime for a run this short; the eager variant reports,
        // evaluates and switches after very little evidence, so regime
        // changes happen *during* the run — while workers are mid-drain
        // and the fault injector is dropping packets — and must not change
        // any observable.
        ("adaptive", RtsStrategy::adaptive()),
        (
            "adaptive_eager",
            RtsStrategy::Adaptive {
                policy: orca::rts::AdaptivePolicy::eager(),
            },
        ),
    ];
    match std::env::var("ORCA_RTS") {
        Ok(only) if !only.is_empty() => {
            let filtered: Vec<_> = all
                .into_iter()
                .filter(|(name, _)| name.starts_with(&only))
                .collect();
            assert!(!filtered.is_empty(), "ORCA_RTS={only} matches no strategy");
            filtered
        }
        _ => all,
    }
}

/// The reference program: a shared job queue feeds workers that accumulate
/// into a shared integer, publish per-job results into a shared table, and
/// raise a completion flag.
fn run_program(strategy: RtsStrategy, fault: FaultConfig) -> Observables {
    let config = OrcaConfig {
        fault,
        strategy,
        ..OrcaConfig::broadcast(WORKERS)
    };
    let runtime = OrcaRuntime::start(config, standard_registry());
    let main = runtime.main();
    let queue: JobQueue<u32> = JobQueue::create(main).unwrap();
    let sum = SharedInt::create(main, 0).unwrap();
    let squares = KvTable::create(main).unwrap();
    let done = BoolArray::create(main, WORKERS, false).unwrap();
    for job in 1..=JOBS {
        queue.add(main, &job).unwrap();
    }
    queue.close(main).unwrap();

    let per_worker: Vec<Vec<u32>> = replicated_workers(&runtime, WORKERS, move |worker, ctx| {
        let mut mine = Vec::new();
        while let Some(job) = queue.get(&ctx).unwrap() {
            sum.add(&ctx, i64::from(job)).unwrap();
            let entry = TableEntry {
                depth: 0,
                value: i64::from(job) * i64::from(job),
                aux: 0,
            };
            squares.put(&ctx, u64::from(job), entry).unwrap();
            mine.push(job);
        }
        done.set(&ctx, worker as u32, true).unwrap();
        mine
    });

    let mut jobs_processed: Vec<u32> = per_worker.into_iter().flatten().collect();
    jobs_processed.sort_unstable();
    let main = runtime.main();
    // Under message loss the workers' final broadcasts may still be in
    // flight (awaiting gap repair) when the workers join; reads on main are
    // local replica reads, so wait for the last write to become visible
    // before snapshotting the observables.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while !done.all_true(main).unwrap() && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let mut squares_out: Vec<(u32, i64)> = (1..=JOBS)
        .filter_map(|job| {
            squares
                .get(main, u64::from(job))
                .unwrap()
                .map(|entry| (job, entry.value))
        })
        .collect();
    squares_out.sort_unstable();
    let observed = Observables {
        jobs_processed,
        sum: sum.value(main).unwrap(),
        squares: squares_out,
        all_done: done.all_true(main).unwrap(),
    };
    runtime.shutdown();
    observed
}

fn expected() -> Observables {
    Observables {
        jobs_processed: (1..=JOBS).collect(),
        sum: (1..=JOBS).map(i64::from).sum(),
        squares: (1..=JOBS)
            .map(|j| (j, i64::from(j) * i64::from(j)))
            .collect(),
        all_done: true,
    }
}

#[test]
fn all_strategies_agree_on_a_reliable_network() {
    for (name, strategy) in strategies() {
        let observed = run_program(strategy, FaultConfig::reliable());
        assert_eq!(observed, expected(), "strategy {name} diverged");
    }
}

#[test]
fn all_strategies_agree_under_fault_injection() {
    // The broadcast RTS rides on the PB/BB recovery protocols and the
    // primary-copy RTS on reliable RPC transport, so a lossy, duplicating,
    // reordering network must not change any observable outcome.
    let fault = FaultConfig {
        drop_prob: 0.1,
        duplicate_prob: 0.05,
        reorder_prob: 0.05,
        seed: 0x5EED,
    };
    for (name, strategy) in strategies() {
        let observed = run_program(strategy, fault);
        assert_eq!(
            observed,
            expected(),
            "strategy {name} diverged under faults"
        );
    }
}

#[test]
fn sharded_single_partition_matches_primary_update_exactly() {
    // The acceptance bar for the sharded runtime system: with N = 1 every
    // shardable object degenerates to one owner-held copy and the program
    // must observe exactly what the primary-copy (update) system produces.
    let sharded = run_program(RtsStrategy::sharded(1), FaultConfig::reliable());
    let primary = run_program(RtsStrategy::primary_update(), FaultConfig::reliable());
    assert_eq!(sharded, primary);
}

/// Per-object partition placements (owner node index per partition).
type Placements = Vec<Vec<u16>>;

/// Per-node message-delivery counts:
/// `(p2p sent, broadcasts sent, interrupts taken, drops)`.
type DeliveryCounts = Vec<(u64, u64, u64, u64)>;

/// Trace of one deterministic single-threaded sharded run: partition
/// placements of every object plus the per-node message-delivery counts.
/// Byte counts are deliberately excluded: RPC request ids come from a
/// process-global counter, so their varint encodings (and nothing else)
/// differ between two runs in one test process.
fn sharded_trace(partitions: u32) -> (Placements, DeliveryCounts) {
    let runtime = OrcaRuntime::start(OrcaConfig::sharded(4, partitions), standard_registry());
    let main = runtime.main();
    let queue: JobQueue<u32> = JobQueue::create(main).unwrap();
    let squares = KvTable::create(main).unwrap();
    for job in 1..=24u32 {
        queue.add(main, &job).unwrap();
    }
    queue.close(main).unwrap();
    // Drain single-threadedly from a non-creating node so every operation
    // sequence (and thus every message sequence) is fully determined.
    let ctx = runtime.context(2);
    while let Some(job) = queue.get(ctx).unwrap() {
        let entry = TableEntry {
            depth: 0,
            value: i64::from(job) * i64::from(job),
            aux: 0,
        };
        squares.put(ctx, u64::from(job), entry).unwrap();
    }
    let placements = [queue.handle().id(), squares.handle().id()]
        .into_iter()
        .map(|object| {
            runtime
                .shard_owners(object)
                .unwrap()
                .into_iter()
                .map(|node| node.0)
                .collect()
        })
        .collect();
    let deliveries = runtime
        .network_stats()
        .per_node
        .iter()
        .map(|node| {
            (
                node.p2p_sent,
                node.broadcasts_sent,
                node.interrupts,
                node.dropped,
            )
        })
        .collect();
    runtime.shutdown();
    (placements, deliveries)
}

#[test]
fn sharded_placement_and_delivery_are_deterministic() {
    // Two runs of the same configuration must place every partition on the
    // same owner and exchange byte-identical traffic: shard placement is a
    // pure function of the object id, and routing decisions (including the
    // GetJob partition scan order) contain no hidden nondeterminism.
    let (placements_a, stats_a) = sharded_trace(4);
    let (placements_b, stats_b) = sharded_trace(4);
    assert_eq!(placements_a, placements_b, "shard placement changed");
    assert_eq!(stats_a, stats_b, "delivery sequences changed");
    // The queue really is spread: its partitions have more than one owner.
    let queue_owners: std::collections::BTreeSet<u16> = placements_a[0].iter().copied().collect();
    assert!(queue_owners.len() > 1, "expected a multi-owner placement");
}

#[test]
fn fault_schedule_seed_does_not_leak_into_observables() {
    // Different fault schedules change *how* the protocols recover, never
    // *what* the application observes.
    for seed in [1u64, 99, 0xA30EBA] {
        let fault = FaultConfig {
            drop_prob: 0.15,
            duplicate_prob: 0.05,
            reorder_prob: 0.05,
            seed,
        };
        let observed = run_program(RtsStrategy::broadcast(), fault);
        assert_eq!(observed, expected(), "seed {seed} changed observables");
    }
}
