//! Offline stand-in for the subset of the `rand` crate API this workspace
//! uses (`StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen_range`,
//! `Rng::gen_bool`).
//!
//! The build environment has no crates.io access, so the workspace vendors
//! this minimal implementation. It is deterministic by construction: `StdRng`
//! is a SplitMix64 generator, so the same seed always yields the same
//! sequence — which is exactly what the simulation's reproducibility tests
//! require. It makes no attempt at crypto-quality randomness or exact
//! distribution compatibility with upstream `rand`.

use std::ops::{Range, RangeInclusive};

/// Seedable generator constructors (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator whose sequence is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start + (self.end - self.start) * unit as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Core generator interface (subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic standard generator (SplitMix64 under the hood).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_sequence() {
        let mut a = StdRng::seed_from_u64(17);
        let mut b = StdRng::seed_from_u64(17);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(-2..3);
            assert!((-2..3).contains(&v));
            let f = rng.gen_range(0.0..1000.0);
            assert!((0.0..1000.0).contains(&f));
            let u = rng.gen_range(0..6u32);
            assert!(u < 6);
        }
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.7)).count();
        assert!((6_000..8_000).contains(&hits), "hits = {hits}");
    }
}
