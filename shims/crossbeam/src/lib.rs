//! Offline stand-in for the subset of `crossbeam` this workspace uses:
//! `channel::{unbounded, bounded, Sender, Receiver}` plus a polling
//! `select!` macro covering the `recv(..) -> x => ..` / `default(timeout)`
//! shape.
//!
//! The channel is a straightforward MPMC queue built on a mutex and a pair
//! of condition variables. Both `Sender` and `Receiver` are cloneable and
//! `Sync`, matching crossbeam's types; disconnection follows crossbeam's
//! rule (a side is disconnected once all handles of the *other* side are
//! gone).

pub mod channel;
