//! MPMC channels with crossbeam-compatible signatures.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
    /// `None` for unbounded channels.
    capacity: Option<usize>,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    /// Signalled when a message is enqueued or the channel disconnects.
    readable: Condvar,
    /// Signalled when space frees up in a bounded channel.
    writable: Condvar,
}

impl<T> Shared<T> {
    fn new(capacity: Option<usize>) -> Arc<Self> {
        Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
                capacity,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
        })
    }
}

/// Error returned by [`Sender::send`]; carries the unsent message.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived before the timeout.
    Timeout,
    /// All senders disconnected and the queue is drained.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("receive timed out"),
            RecvTimeoutError::Disconnected => f.write_str("channel disconnected"),
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The queue is currently empty.
    Empty,
    /// All senders disconnected and the queue is drained.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("channel empty"),
            TryRecvError::Disconnected => f.write_str("channel disconnected"),
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Sending half of a channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half of a channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Create an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Shared::new(None);
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// Create a bounded MPMC channel. A capacity of zero is treated as a
/// capacity of one (this shim has no rendezvous mode; the workspace only
/// uses small positive capacities).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Shared::new(Some(capacity.max(1)));
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Send a message, blocking while a bounded channel is full. Fails only
    /// when every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.state.lock().expect("channel lock");
        loop {
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            let full = state
                .capacity
                .is_some_and(|capacity| state.queue.len() >= capacity);
            if !full {
                state.queue.push_back(value);
                self.shared.readable.notify_one();
                return Ok(());
            }
            state = self.shared.writable.wait(state).expect("channel lock");
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.state.lock().expect("channel lock").queue.len()
    }

    /// True if no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Blocking receive.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.state.lock().expect("channel lock");
        loop {
            if let Some(value) = state.queue.pop_front() {
                self.shared.writable.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.shared.readable.wait(state).expect("channel lock");
        }
    }

    /// Blocking receive with a timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.state.lock().expect("channel lock");
        loop {
            if let Some(value) = state.queue.pop_front() {
                self.shared.writable.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (next, result) = self
                .shared
                .readable
                .wait_timeout(state, deadline - now)
                .expect("channel lock");
            state = next;
            if result.timed_out() && state.queue.is_empty() {
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.state.lock().expect("channel lock");
        if let Some(value) = state.queue.pop_front() {
            self.shared.writable.notify_one();
            return Ok(value);
        }
        if state.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.state.lock().expect("channel lock").queue.len()
    }

    /// True if no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().expect("channel lock").senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().expect("channel lock").receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("channel lock");
        state.senders -= 1;
        if state.senders == 0 {
            self.shared.readable.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().expect("channel lock");
        state.receivers -= 1;
        if state.receivers == 0 {
            self.shared.writable.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sender").finish_non_exhaustive()
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Receiver").finish_non_exhaustive()
    }
}

/// Polling implementation of the crossbeam `select!` shape used in this
/// workspace: any number of `recv(rx) -> binding => expr` arms followed by a
/// `default(timeout) => expr` arm. Each ready check uses `try_recv`; between
/// rounds the caller sleeps briefly, so latency is bounded by the poll
/// interval (200 µs) rather than being wakeup-exact.
#[macro_export]
macro_rules! select {
    ( $( recv($rx:expr) -> $name:ident => $body:expr , )+ default($timeout:expr) => $default:expr $(,)? ) => {{
        let __deadline = ::std::time::Instant::now() + $timeout;
        let mut __done = false;
        while !__done {
            $(
                if !__done {
                    match ($rx).try_recv() {
                        ::std::result::Result::Ok(__value) => {
                            __done = true;
                            let $name: ::std::result::Result<_, $crate::channel::RecvError> =
                                ::std::result::Result::Ok(__value);
                            $body
                        }
                        ::std::result::Result::Err($crate::channel::TryRecvError::Disconnected) => {
                            __done = true;
                            let $name: ::std::result::Result<_, $crate::channel::RecvError> =
                                ::std::result::Result::Err($crate::channel::RecvError);
                            $body
                        }
                        ::std::result::Result::Err($crate::channel::TryRecvError::Empty) => {}
                    }
                }
            )+
            if !__done {
                if ::std::time::Instant::now() >= __deadline {
                    __done = true;
                    $default
                } else {
                    ::std::thread::sleep(::std::time::Duration::from_micros(200));
                }
            }
        }
    }};
}

// Re-export so both `crossbeam::select!` and `crossbeam::channel::select!`
// resolve, as they do in the real crate.
pub use crate::select;

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn recv_timeout_and_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn bounded_blocks_until_space() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let sender = tx.clone();
        let handle = std::thread::spawn(move || sender.send(2).unwrap());
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap(), 1);
        handle.join().unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        let handle = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut sum = 0;
        for _ in 0..100 {
            sum += rx.recv().unwrap();
        }
        handle.join().unwrap();
        assert_eq!(sum, 4950);
    }

    #[test]
    fn select_macro_prefers_ready_arm_and_times_out() {
        let (tx, rx_a) = unbounded::<u8>();
        let (_tx_b, rx_b) = unbounded::<u8>();
        tx.send(7).unwrap();
        let mut seen = None;
        let mut timed_out = false;
        crate::select! {
            recv(rx_a) -> msg => seen = msg.ok(),
            recv(rx_b) -> msg => seen = msg.ok(),
            default(Duration::from_millis(5)) => timed_out = true,
        }
        assert_eq!(seen, Some(7));
        assert!(!timed_out);
        let mut second: Option<u8> = None;
        crate::select! {
            recv(rx_a) -> msg => second = msg.ok(),
            recv(rx_b) -> msg => second = msg.ok(),
            default(Duration::from_millis(5)) => timed_out = true,
        }
        assert!(timed_out);
        assert_eq!(second, None);
    }
}
