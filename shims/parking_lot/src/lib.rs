//! Offline stand-in for the subset of `parking_lot` this workspace uses:
//! `Mutex`, `RwLock` and `Condvar` with the parking_lot calling convention
//! (no lock poisoning, `Condvar::wait(&mut guard)`).
//!
//! Implemented on top of `std::sync`; a poisoned std lock (a thread panicked
//! while holding it) is treated as fatal and panics, matching the way
//! parking_lot users never see a `Result`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// Mutual exclusion primitive (subset of `parking_lot::Mutex`).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]. Holds an `Option` internally so [`Condvar`] can
/// temporarily give the lock up during a wait.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(
                self.inner
                    .lock()
                    .unwrap_or_else(|_| panic!("mutex poisoned")),
            ),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(std::sync::TryLockError::WouldBlock) => None,
            Err(std::sync::TryLockError::Poisoned(_)) => panic!("mutex poisoned"),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|_| panic!("mutex poisoned"))
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard active")
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard active")
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable usable with [`MutexGuard`] (subset of
/// `parking_lot::Condvar`).
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard active");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(|_| panic!("mutex poisoned"));
        guard.inner = Some(std_guard);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard active");
        let (std_guard, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(|_| panic!("mutex poisoned"));
        guard.inner = Some(std_guard);
        WaitTimeoutResult(result.timed_out())
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

/// Reader-writer lock (subset of `parking_lot::RwLock`).
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self
                .inner
                .read()
                .unwrap_or_else(|_| panic!("rwlock poisoned")),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self
                .inner
                .write()
                .unwrap_or_else(|_| panic!("rwlock poisoned")),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|_| panic!("rwlock poisoned"))
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock")
            .field("data", &&*self.read())
            .finish()
    }
}

impl<'a, T: ?Sized> Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut guard = m.lock();
        let start = Instant::now();
        let result = cv.wait_for(&mut guard, Duration::from_millis(20));
        assert!(result.timed_out());
        assert!(start.elapsed() >= Duration::from_millis(10));
        assert!(!*guard);
    }

    #[test]
    fn condvar_wakeup_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = m.lock();
            *done = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        handle.join().unwrap();
        assert!(*done);
    }
}
