//! Offline stand-in for the subset of `criterion` this workspace uses:
//! `Criterion::bench_function`, `Bencher::iter`, `black_box` and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of criterion's statistical machinery this shim runs a short
//! warm-up, then times a fixed wall-clock window and reports mean
//! nanoseconds per iteration on stdout. Good enough to keep the workspace's
//! bench targets compiling and producing comparable numbers offline.

use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a value or the computation behind it.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Timing loop handed to the closure of [`Criterion::bench_function`].
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `routine` repeatedly and record total time and iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: let caches, lazy init and thread pools settle.
        let warmup_end = Instant::now() + Duration::from_millis(50);
        while Instant::now() < warmup_end {
            black_box(routine());
        }
        let measure_window = Duration::from_millis(300);
        let start = Instant::now();
        let mut iterations = 0u64;
        while start.elapsed() < measure_window {
            black_box(routine());
            iterations += 1;
        }
        self.elapsed = start.elapsed();
        self.iterations = iterations;
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Time `routine` and print a one-line report.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        mut routine: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            iterations: 0,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher);
        if bencher.iterations == 0 {
            println!("{name:<44} (no iterations recorded)");
        } else {
            let nanos = bencher.elapsed.as_nanos() as f64 / bencher.iterations as f64;
            println!(
                "{name:<44} {nanos:>12.1} ns/iter ({} iterations)",
                bencher.iterations
            );
        }
        self
    }
}

/// Mirror of `criterion::criterion_group!`: bundle bench functions into one
/// callable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirror of `criterion::criterion_main!`: generate `main` running groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut criterion = Criterion::default();
        let mut calls = 0u64;
        criterion.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert!(calls > 0);
    }
}
