//! Generate test patterns for a combinational circuit with the parallel
//! PODEM program of §4.4, with and without the shared fault-simulation
//! object.
//!
//! ```text
//! cargo run --release --example atpg_patterns
//! ```

use orca::apps::atpg;
use orca::core::OrcaRuntime;

fn main() {
    // The classic ISCAS-85 c17 circuit plus a larger random circuit.
    for (name, circuit) in [
        ("c17".to_string(), atpg::Circuit::c17()),
        ("random-200".to_string(), atpg::Circuit::random(12, 200, 7)),
    ] {
        println!(
            "== {name}: {} gates, {} inputs, {} outputs, {} faults ==",
            circuit.gates.len(),
            circuit.inputs,
            circuit.outputs.len(),
            circuit.all_faults().len()
        );
        for fault_simulation in [false, true] {
            let runtime = OrcaRuntime::standard(4);
            let (result, report) = atpg::solve_parallel(&runtime, &circuit, 4, fault_simulation);
            println!(
                "  fault simulation {:>5}: {} patterns, coverage {:.1}%, \
                 {} PODEM steps, load imbalance {:.2}",
                fault_simulation,
                result.patterns.len(),
                result.coverage() * 100.0,
                result.work,
                report.imbalance()
            );
        }
    }
}
