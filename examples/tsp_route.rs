//! Solve a Traveling Salesman Problem with the replicated-worker
//! branch-and-bound program of §4.1, then verify it against the sequential
//! solver.
//!
//! ```text
//! cargo run --release --example tsp_route
//! ```

use orca::apps::tsp;
use orca::core::OrcaRuntime;

fn main() {
    let cities = 11;
    let instance = tsp::TspInstance::random(cities, 42);

    let sequential = tsp::solve_sequential(&instance);
    println!(
        "sequential optimum: length {} after {} nodes",
        sequential.best_length, sequential.nodes_expanded
    );

    let processors = 4;
    let runtime = OrcaRuntime::standard(processors);
    let (solution, report) = tsp::solve_parallel(&runtime, &instance, processors);
    println!(
        "parallel ({processors} workers): length {} after {} total nodes",
        solution.best_length, solution.nodes_expanded
    );
    println!("best tour: {:?}", solution.best_tour);
    println!(
        "per-worker nodes: {:?} (imbalance {:.2})",
        report
            .per_worker
            .iter()
            .map(|w| w.units)
            .collect::<Vec<_>>(),
        report.imbalance()
    );
    assert_eq!(solution.best_length, sequential.best_length);

    let rts = runtime.rts_stats();
    let local_reads: u64 = rts.iter().map(|s| s.local_reads).sum();
    let writes: u64 = rts.iter().map(|s| s.writes).sum();
    println!(
        "shared-object accesses: {local_reads} local reads vs {writes} writes \
         (read/write ratio {:.0}:1 — why replicating the bound pays off)",
        local_reads as f64 / writes.max(1) as f64
    );
}
