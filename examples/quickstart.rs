//! Quickstart: a shared counter and a shared job queue on a simulated
//! 4-processor multicomputer, programmed in the replicated worker style.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use orca::core::objects::{IntObject, IntOp, JobQueue};
use orca::core::{replicated_workers, OrcaRuntime};

fn main() {
    // One runtime = one parallel application: 4 simulated processors, the
    // broadcast runtime system, the standard object library.
    let runtime = OrcaRuntime::standard(4);
    let main = runtime.main();

    // Shared objects are created by the main process and passed to workers
    // as (copyable) handles — the analogue of Orca's shared parameters.
    let queue: JobQueue<u64> = JobQueue::create(main).expect("create queue");
    let total = runtime.create::<IntObject>(&0).expect("create counter");

    // Manager: enqueue 100 jobs and close the queue.
    for job in 1..=100u64 {
        queue.add(main, &job).expect("add job");
    }
    queue.close(main).expect("close queue");

    // Replicated workers: each repeatedly takes a job and adds to the shared
    // counter. Reads are local; writes are shipped through the totally
    // ordered broadcast and applied on every replica.
    let per_worker = replicated_workers(&runtime, 4, move |worker, ctx| {
        let mut jobs = 0u64;
        while let Some(job) = queue.get(&ctx).expect("get job") {
            ctx.invoke(total, &IntOp::Add(job as i64)).expect("add");
            jobs += 1;
        }
        println!("worker {worker} on {} processed {jobs} jobs", ctx.node());
        jobs
    });

    let sum = main.invoke(total, &IntOp::Value).expect("read total");
    println!("jobs per worker: {per_worker:?}");
    println!("sum of 1..=100 computed through the shared object: {sum}");
    assert_eq!(sum, 5050);

    let stats = runtime.network_stats();
    println!(
        "network traffic: {} messages, {} bytes on the wire, {} interrupts",
        stats.total_messages(),
        stats.total_wire_bytes(),
        stats.total_interrupts()
    );
}
