//! Oracol in miniature: solve tactical chess positions in parallel with
//! shared killer/transposition tables (§4.3).
//!
//! ```text
//! cargo run --release --example chess_mate
//! ```

use orca::apps::chess::{self, TableMode};
use orca::core::OrcaRuntime;

fn main() {
    let processors = 4;
    for position in chess::tactical_positions() {
        let runtime = OrcaRuntime::standard(processors);
        let (result, report) = chess::solve_parallel(
            &runtime,
            &position.board,
            position.depth,
            processors,
            TableMode::Shared,
        );
        let verdict = if chess::is_mate_score(result.score, position.depth as u32) {
            "mate found".to_string()
        } else {
            format!("score {:+} centipawns", result.score)
        };
        println!(
            "{:<18} depth {}: {verdict}, best move {:?}, {} nodes across {} workers",
            position.name,
            position.depth,
            result.best_move.map(|m| (m.from, m.to)),
            result.nodes,
            report.workers()
        );
    }
}
