//! `orca-mc` — a bounded model checker for the Orca runtime systems over
//! the deterministic simulated Amoeba network.
//!
//! The simulator's schedule-driver seam ([`orca_amoeba::sched`]) lets an
//! external driver take control of message delivery and crash injection:
//! every non-passthrough message parks in a held pool and the driver picks
//! which one to deliver (or drop) next, and when to fail-stop a node. This
//! crate builds a CHESS-style *stateless* bounded model checker on top of
//! that seam: small scenarios (2–3 nodes, a handful of operations) are
//! re-executed once per schedule while a depth-first search enumerates
//! delivery interleavings, pruned by a collapsed-state fingerprint and
//! capped by schedule/depth/state budgets. Every terminal state is checked
//! against the extracted `orca-check` invariants — sequential consistency
//! of the recorded histories, no acked write lost, nothing applied twice —
//! plus convergence of the live replicas and liveness (a schedule that
//! wedges the protocol is a violation too).
//!
//! On a violation the engine emits a minimal replayable *trace* (the exact
//! choice sequence) and re-executes it once to confirm the reproduction is
//! deterministic. Set `ORCA_MC_TRACE=<trace>` (plus `ORCA_MC_SCENARIO` to
//! pick the scenario) to replay a failure instead of exploring.
//!
//! See `docs/ARCHITECTURE.md` (model checker section) for the seam
//! mechanics, scenario-writing rules and worked trace examples; the
//! deliberate protocol mutations the checker must catch live behind
//! `orca_rts::sabotage` / `orca_group::sabotage` and are exercised by this
//! crate's `mutations` test suite.

#![warn(missing_docs)]

pub mod engine;
pub mod invariants;
pub mod scenarios;

pub use engine::{
    explore, format_trace, parse_trace, replay_trace, Choice, Execution, McConfig, Report,
    Scenario, StepRecord, Violation,
};
pub use invariants::{check_counter, check_jobs, WorkerOutcome};
pub use scenarios::{
    all_scenarios, AdaptiveRegimeSwitch, BroadcastEraReplay, BroadcastOrdering, PrimaryFetchRace,
    PrimaryLeaseRevoke, PrimaryPromotion, ShardedHandoff,
};
