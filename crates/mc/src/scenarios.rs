//! Model-checking scenarios for the four hairy protocols.
//!
//! Each scenario is a tiny distributed workload (2–3 nodes, a handful of
//! operations) engineered so the interesting protocol machinery — total
//! ordering, sequencer hand-over, dynamic replication races, crash
//! promotion, shard hand-off, regime switching — runs *inside* the
//! scheduled window, where the engine enumerates every delivery order.
//! Workloads use distinct even-bit write deltas (`1 << (2*k)`) so the final
//! counter value is a bitmask of applied writes: a lost acked write clears
//! a required bit, a double-applied write sets an illegal one (see
//! [`crate::invariants`]).
//!
//! Scenario-design rules learned the hard way (see each type's docs):
//!
//! * **One worker per node.** Canonical message identities number each
//!   (src, dst, lane) stream; two application threads on one node would
//!   race for sequence numbers and make schedules non-replayable.
//! * **Object creation and priming run before the scheduler installs.**
//!   Creation traffic is not what we're checking, and priming (fetching
//!   secondary copies, accruing usage counts) sets up the protocol state
//!   the scenario wants to attack.
//! * **Timers are tuned way up or folded into the scenario.** A wall-clock
//!   retransmit firing mid-schedule adds spurious choices; scenarios that
//!   don't need retransmission push those timeouts past the schedule
//!   horizon, and the one that does (sequencer failover) switches to
//!   real-time passthrough at the crash.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use orca_amoeba::process::ProcessHandle;
use orca_amoeba::NodeId;
use orca_core::objects::{IntObject, IntOp, JobQueue};
use orca_core::{standard_registry, ObjectHandle, OrcaConfig, OrcaNode, OrcaRuntime, RtsStrategy};
use orca_group::GroupConfig;
use orca_rts::{AdaptivePolicy, RecoveryConfig, ReplicationPolicy, WritePolicy};

use crate::engine::{Execution, McConfig, Scenario};
use crate::invariants::{check_counter, check_jobs, WorkerOutcome};

/// One step of a counter worker's program.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// `Add(delta)`; an error records the delta as maybe-applied.
    Write(i64),
    /// `Value`; errors are skipped (a failed read constrains nothing).
    Read,
}

fn counter_worker(
    ctx: OrcaNode,
    handle: ObjectHandle<IntObject>,
    steps: Vec<Step>,
) -> WorkerOutcome {
    let mut out = WorkerOutcome::default();
    for step in steps {
        match step {
            Step::Write(delta) => match ctx.invoke(handle, &IntOp::Add(delta)) {
                Ok(sum) => out.acked_write(delta, sum),
                Err(_) => out.maybe_write(delta),
            },
            Step::Read => {
                if let Ok(value) = ctx.invoke(handle, &IntOp::Value) {
                    out.read(value);
                }
            }
        }
    }
    out
}

/// Read the final value on every live node, polling until they agree (or a
/// convergence budget runs out, in which case the last disagreeing set is
/// returned and the divergence check fails). Polling matters: once the
/// scheduler uninstalls, stragglers catch up through wall-clock machinery —
/// gap repair after a dropped broadcast, post-election era replay, a
/// promotion completing — so "not converged *yet*" is not a violation, but
/// "not converged within the budget" is.
fn read_finals(
    rt: &OrcaRuntime,
    handle: ObjectHandle<IntObject>,
    live: &[usize],
) -> Result<Vec<i64>, String> {
    let deadline = Instant::now() + Duration::from_secs(8);
    let mut last: Vec<i64> = Vec::new();
    let mut last_err: Option<String>;
    loop {
        let mut vals = Vec::with_capacity(live.len());
        let mut err: Option<String> = None;
        for &node in live {
            match rt.context(node).invoke(handle, &IntOp::Value) {
                Ok(value) => vals.push(value),
                Err(e) => {
                    err = Some(format!("final read on node {node} failed: {e}"));
                    break;
                }
            }
        }
        match err {
            None => {
                if vals.windows(2).all(|w| w[0] == w[1]) {
                    return Ok(vals);
                }
                last = vals;
                last_err = None;
            }
            some => last_err = some,
        }
        if Instant::now() >= deadline {
            return match last_err {
                Some(e) => Err(format!("{e} (and kept failing until the deadline)")),
                None => Ok(last),
            };
        }
        std::thread::sleep(Duration::from_millis(40));
    }
}

fn all_finished<T>(workers: &[ProcessHandle<T>]) -> bool {
    workers.iter().all(|w| w.is_finished())
}

/// Shared tail of every counter scenario: uninstall the scheduler, wait for
/// the workers (a hang is a liveness violation), join, read finals on live
/// nodes, run the counter invariants.
fn finish_counter(
    exec: &Execution<'_>,
    rt: &OrcaRuntime,
    workers: Vec<ProcessHandle<WorkerOutcome>>,
    handle: ObjectHandle<IntObject>,
) -> Result<(), String> {
    rt.network().set_scheduler(None);
    if !exec.settle(|| all_finished(&workers)) {
        // Unblock the stuck invocations so the joins below return, then
        // report the hang itself as the violation.
        rt.shutdown();
        for worker in workers {
            let _ = worker.join();
        }
        return Err("liveness violation: workers still blocked after the settle budget".into());
    }
    let outcomes: Vec<WorkerOutcome> = workers.into_iter().map(|w| w.join()).collect();
    let live: Vec<usize> = (0..rt.processors())
        .filter(|&n| !rt.network().is_crashed(NodeId::from(n)))
        .collect();
    let finals = read_finals(rt, handle, &live)?;
    check_counter(&outcomes, &finals)
}

fn eager_replication() -> ReplicationPolicy {
    ReplicationPolicy {
        fetch_ratio: 0.0,
        drop_ratio: -1.0,
        window: 1,
        enabled: true,
        // The model checker virtualizes time; real-clock leases would
        // either never expire or stall explored schedules on sleeps.
        read_lease_ms: 0,
    }
}

// ---------------------------------------------------------------------------
// 1. Broadcast: total-order delivery.
// ---------------------------------------------------------------------------

/// Two nodes write and read a fully replicated counter through the PB/BB
/// sequencer protocol. Exhaustively checks that every delivery order of
/// requests and sequenced broadcasts yields one sequentially consistent
/// total order with no write lost or duplicated.
///
/// Group timers are pushed past the schedule horizon: on a reliable,
/// crash-free run the protocol must not *need* retransmission, and a timer
/// firing mid-schedule would add spurious choices.
pub struct BroadcastOrdering {
    /// Exploration budgets.
    pub budget: McConfig,
}

impl Default for BroadcastOrdering {
    fn default() -> Self {
        BroadcastOrdering {
            budget: McConfig {
                max_schedules: 2048,
                max_depth: 48,
                quiesce_idle: Duration::from_millis(10),
                ..McConfig::default()
            },
        }
    }
}

impl Scenario for BroadcastOrdering {
    fn name(&self) -> &'static str {
        "broadcast_ordering"
    }

    fn config(&self) -> McConfig {
        self.budget.clone()
    }

    fn run(&self, exec: &mut Execution<'_>) -> Result<(), String> {
        let mut cfg = OrcaConfig::broadcast(2);
        cfg.strategy = RtsStrategy::Broadcast(GroupConfig {
            retransmit_timeout: Duration::from_secs(5),
            suspect_after: 10_000,
            ..GroupConfig::default()
        });
        let rt = OrcaRuntime::start(cfg, standard_registry());
        let handle = rt.create::<IntObject>(&0).map_err(|e| e.to_string())?;
        rt.network().set_scheduler(Some(exec.scheduler()));
        let workers: Vec<_> = (0..2)
            .map(|node| {
                let steps = vec![
                    Step::Write(1 << (4 * node)),
                    Step::Read,
                    Step::Write(1 << (4 * node + 2)),
                    Step::Read,
                ];
                rt.fork_on(node, &format!("mc-w{node}"), move |ctx| {
                    counter_worker(ctx, handle, steps)
                })
            })
            .collect();
        let driven = exec.drive(rt.network(), || all_finished(&workers));
        if let Err(violation) = driven {
            rt.network().set_scheduler(None);
            return Err(violation);
        }
        finish_counter(exec, &rt, workers, handle)
    }
}

// ---------------------------------------------------------------------------
// 2. Broadcast: sequencer crash and era replay.
// ---------------------------------------------------------------------------

/// Three nodes; workers run on nodes 1 and 2 while node 0 is the
/// sequencer. The search may drop one (unreliable) broadcast packet and
/// crash the sequencer at any point; the crash switches the run to
/// real-time passthrough, where retransmission, election and the new
/// sequencer's era replay must converge every survivor on one history —
/// no sequence number reused, no acked write lost, no double apply.
pub struct BroadcastEraReplay {
    /// Exploration budgets.
    pub budget: McConfig,
}

impl Default for BroadcastEraReplay {
    fn default() -> Self {
        BroadcastEraReplay {
            budget: McConfig {
                max_schedules: 56,
                max_depth: 40,
                quiesce_idle: Duration::from_millis(10),
                crash_candidates: vec![NodeId(0)],
                max_crashes: 1,
                after_crash_passthrough: true,
                max_drops: 1,
                // Budget-capped: failover bugs live in the shallow
                // early-crash/early-drop branches DFS would reach last.
                shallow_first: true,
                ..McConfig::default()
            },
        }
    }
}

impl Scenario for BroadcastEraReplay {
    fn name(&self) -> &'static str {
        "broadcast_era_replay"
    }

    fn config(&self) -> McConfig {
        self.budget.clone()
    }

    fn run(&self, exec: &mut Execution<'_>) -> Result<(), String> {
        let mut cfg = OrcaConfig::broadcast(3);
        // Post-crash recovery runs in real time: retransmission kicks in
        // after 250 ms and two silent rounds trigger the election, so a
        // failover completes in well under the settle budget.
        cfg.strategy = RtsStrategy::Broadcast(GroupConfig {
            retransmit_timeout: Duration::from_millis(250),
            suspect_after: 2,
            ..GroupConfig::default()
        });
        let rt = OrcaRuntime::start(cfg, standard_registry());
        let handle = rt.create::<IntObject>(&0).map_err(|e| e.to_string())?;
        rt.network().set_scheduler(Some(exec.scheduler()));
        // One write + one read per worker, not two: the schedules that
        // expose failover bugs crash the sequencer *early*, while its
        // SeqData broadcast has reached one survivor but not the other —
        // and DFS backtracks from the deepest choice points first, so a
        // deeper tree spends the whole budget on late-crash schedules
        // before ever reaching the early ones.
        let workers: Vec<_> = [1usize, 2]
            .iter()
            .map(|&node| {
                let base = 4 * (node - 1) as i64;
                let steps = vec![Step::Write(1 << base), Step::Read];
                rt.fork_on(node, &format!("mc-w{node}"), move |ctx| {
                    counter_worker(ctx, handle, steps)
                })
            })
            .collect();
        let driven = exec.drive(rt.network(), || all_finished(&workers));
        if let Err(violation) = driven {
            rt.network().set_scheduler(None);
            return Err(violation);
        }
        finish_counter(exec, &rt, workers, handle)
    }
}

// ---------------------------------------------------------------------------
// 3. Primary copy: fetch / two-phase-update race.
// ---------------------------------------------------------------------------

/// Two nodes, primary-copy with two-phase updates and *eager* dynamic
/// replication: node 1's first read fetches a secondary copy while node 0
/// (the primary) is pushing updates — the classic install-over-newer race.
/// Version gating must keep every copy on the primary's version line; the
/// `NO_VERSION_GATING` mutation makes node 1 install a stale snapshot over
/// a fresher copy and blindly apply gapped updates, which surfaces here as
/// a worker reading a value older than its own acked write.
pub struct PrimaryFetchRace {
    /// Exploration budgets.
    pub budget: McConfig,
}

impl Default for PrimaryFetchRace {
    fn default() -> Self {
        PrimaryFetchRace {
            budget: McConfig {
                max_schedules: 512,
                max_depth: 56,
                quiesce_idle: Duration::from_millis(10),
                ..McConfig::default()
            },
        }
    }
}

impl Scenario for PrimaryFetchRace {
    fn name(&self) -> &'static str {
        "primary_fetch_race"
    }

    fn config(&self) -> McConfig {
        self.budget.clone()
    }

    fn run(&self, exec: &mut Execution<'_>) -> Result<(), String> {
        let mut cfg = OrcaConfig::primary_copy(2, WritePolicy::Update);
        cfg.strategy = RtsStrategy::PrimaryCopy {
            policy: WritePolicy::Update,
            replication: eager_replication(),
        };
        let rt = Arc::new(OrcaRuntime::start(cfg, standard_registry()));
        let handle = rt.create::<IntObject>(&0).map_err(|e| e.to_string())?;
        rt.network().set_scheduler(Some(exec.scheduler()));
        // Node 0's writes are local applies until node 1 holds a copy, so
        // an unconstrained worker 0 finishes before the fetch even starts
        // and the schedule degenerates to node 1's sequential RPCs. Gate
        // worker 0 on the fetch being *served*: the primary registers
        // node 1 as a copyholder while answering the fetch, so from here
        // the snapshot install is still in flight and the writes push
        // updates that race it.
        let probe = Arc::clone(&rt);
        let w0 = rt.fork_on(0, "mc-w0", move |ctx| {
            let deadline = Instant::now() + Duration::from_secs(5);
            while probe
                .copy_holders(0, handle.id())
                .is_some_and(|holders| holders.is_empty())
                && Instant::now() < deadline
            {
                std::thread::sleep(Duration::from_micros(200));
            }
            counter_worker(ctx, handle, vec![Step::Write(1), Step::Write(1 << 2)])
        });
        // Node 1: the first read triggers the eager fetch; the write then
        // rides the update push; the final read must see it.
        let w1 = rt.fork_on(1, "mc-w1", move |ctx| {
            counter_worker(
                ctx,
                handle,
                vec![Step::Read, Step::Write(1 << 4), Step::Read],
            )
        });
        let workers = vec![w0, w1];
        let driven = exec.drive(rt.network(), || all_finished(&workers));
        if let Err(violation) = driven {
            rt.network().set_scheduler(None);
            return Err(violation);
        }
        finish_counter(exec, &rt, workers, handle)
    }
}

// ---------------------------------------------------------------------------
// 4. Primary copy: promotion after a crash.
// ---------------------------------------------------------------------------

/// Three nodes with crash recovery: the object's primary lives on node 0,
/// nodes 1 and 2 hold eagerly fetched secondaries (primed before the
/// scheduler installs). The search crashes node 0 at any point — including
/// mid-two-phase-push — and keeps scheduling while the survivors detect the
/// death, agree on the freshest surviving copy and promote it. Writes that
/// errored during the failover are maybe-applied; everything acked must
/// survive, and survivors' copies must stay on the new primary's version
/// line (the `REHOME_KEEPS_STALE_COPIES` mutation leaves an orphaned stale
/// secondary behind, which a later local read exposes).
///
/// Retried writes are **exactly-once** even across the promotion: every
/// sync write carries a per-origin `(origin, op_seq)` stamp, the dedup
/// window travels with each secondary copy, and the promoted replica
/// answers a replayed stamp from the window instead of re-applying it. The
/// invariants therefore make no at-least-once allowance — a write applied
/// twice is a violation, crash or no crash.
pub struct PrimaryPromotion {
    /// Exploration budgets.
    pub budget: McConfig,
}

impl Default for PrimaryPromotion {
    fn default() -> Self {
        PrimaryPromotion {
            budget: McConfig {
                max_schedules: 72,
                max_depth: 72,
                quiesce_idle: Duration::from_millis(10),
                crash_candidates: vec![NodeId(0)],
                max_crashes: 1,
                // Budget-capped: promotion bugs need the crash *early*,
                // while writes and update pushes are still in flight.
                shallow_first: true,
                ..McConfig::default()
            },
        }
    }
}

impl Scenario for PrimaryPromotion {
    fn name(&self) -> &'static str {
        "primary_promotion"
    }

    fn config(&self) -> McConfig {
        self.budget.clone()
    }

    fn run(&self, exec: &mut Execution<'_>) -> Result<(), String> {
        let mut cfg = OrcaConfig::primary_copy(3, WritePolicy::Update);
        cfg.strategy = RtsStrategy::PrimaryCopy {
            policy: WritePolicy::Update,
            replication: eager_replication(),
        };
        cfg.recovery = RecoveryConfig {
            heartbeat_every: Duration::from_millis(25),
            suspect_after: 12,
            attempt_timeout: Duration::from_millis(250),
            rehome_wait: Duration::from_secs(10),
            ..RecoveryConfig::enabled()
        };
        let rt = OrcaRuntime::start(cfg, standard_registry());
        let handle = rt.create::<IntObject>(&0).map_err(|e| e.to_string())?;
        // Prime: both survivors fetch a secondary copy *before* scheduling
        // starts, so the failover always has copies to choose from.
        for node in [1, 2] {
            rt.context(node)
                .invoke(handle, &IntOp::Value)
                .map_err(|e| format!("priming read failed: {e}"))?;
        }
        rt.network().set_scheduler(Some(exec.scheduler()));
        let workers: Vec<_> = [1usize, 2]
            .iter()
            .map(|&node| {
                let base = 4 * (node - 1) as i64;
                let steps = vec![
                    Step::Write(1 << base),
                    Step::Read,
                    Step::Write(1 << (base + 2)),
                    Step::Read,
                ];
                rt.fork_on(node, &format!("mc-w{node}"), move |ctx| {
                    counter_worker(ctx, handle, steps)
                })
            })
            .collect();
        let driven = exec.drive(rt.network(), || all_finished(&workers));
        if let Err(violation) = driven {
            rt.network().set_scheduler(None);
            return Err(violation);
        }
        finish_counter(exec, &rt, workers, handle)
    }
}

// ---------------------------------------------------------------------------
// 5. Primary copy: read-lease grant/revoke racing a write.
// ---------------------------------------------------------------------------

/// Three nodes, primary-copy with *leased* eager replication: node 0 holds
/// the primary, nodes 1 and 2 prime leased secondary copies before the
/// scheduler installs. Node 1 then serves zero-message local reads under
/// its lease while node 0 writes — every write must push an update to each
/// holder, re-lock and unlock the copies, and re-mint the holders' grants
/// before it completes, so the search enumerates each leased read against
/// every phase of the revocation hand-shake.
///
/// The search may crash node 2 (a pure lease *holder* — no worker) at any
/// point. The crash exercises the failure-detector tie-in end to end: the
/// primary's push to the dead holder fails and its grant is settled by the
/// fail-stop declaration (a dead holder serves no reads), while the epoch
/// bump invalidates node 1's held lease, forcing its next read through the
/// renewal path — and when a concurrent write re-minted node 1's grant
/// first, the stale renewal is answered with an explicit `Revoke` and the
/// copy is dropped. A leased read that ever returns a value older than the
/// reader's own acked write fails sequential consistency.
///
/// Leases are deliberately much longer than the schedule (the model
/// checker virtualizes time): no lease expires mid-schedule, so no
/// wall-clock renewal traffic perturbs replay; every lease transition in
/// the scenario is driven by messages or by the epoch fence.
pub struct PrimaryLeaseRevoke {
    /// Exploration budgets.
    pub budget: McConfig,
}

impl Default for PrimaryLeaseRevoke {
    fn default() -> Self {
        PrimaryLeaseRevoke {
            budget: McConfig {
                max_schedules: 48,
                max_depth: 72,
                quiesce_idle: Duration::from_millis(10),
                crash_candidates: vec![NodeId(2)],
                max_crashes: 1,
                // Budget-capped: the interesting branches crash the holder
                // early, while its lease is live and pushes are in flight.
                shallow_first: true,
                ..McConfig::default()
            },
        }
    }
}

impl Scenario for PrimaryLeaseRevoke {
    fn name(&self) -> &'static str {
        "primary_lease_revoke"
    }

    fn config(&self) -> McConfig {
        self.budget.clone()
    }

    fn run(&self, exec: &mut Execution<'_>) -> Result<(), String> {
        let mut cfg = OrcaConfig::primary_copy(3, WritePolicy::Update);
        cfg.strategy = RtsStrategy::PrimaryCopy {
            policy: WritePolicy::Update,
            replication: ReplicationPolicy {
                // Leases far past the schedule horizon: transitions come
                // from writes, revokes and the epoch fence, never from a
                // wall-clock expiry mid-schedule.
                read_lease_ms: 60_000,
                ..eager_replication()
            },
        };
        // Recovery is enabled for the failure detector: lease validity is
        // fenced by the membership epoch, and settling a dead holder's
        // grant relies on the fail-stop declaration.
        cfg.recovery = RecoveryConfig {
            heartbeat_every: Duration::from_millis(25),
            suspect_after: 12,
            attempt_timeout: Duration::from_millis(250),
            rehome_wait: Duration::from_secs(10),
            ..RecoveryConfig::enabled()
        };
        let rt = OrcaRuntime::start(cfg, standard_registry());
        let handle = rt.create::<IntObject>(&0).map_err(|e| e.to_string())?;
        // Prime: both secondaries fetch a leased copy before scheduling
        // starts, so every write in the schedule races outstanding grants.
        for node in [1, 2] {
            rt.context(node)
                .invoke(handle, &IntOp::Value)
                .map_err(|e| format!("priming read failed: {e}"))?;
        }
        rt.network().set_scheduler(Some(exec.scheduler()));
        let w0 = rt.fork_on(0, "mc-w0", move |ctx| {
            counter_worker(
                ctx,
                handle,
                vec![Step::Write(1), Step::Read, Step::Write(1 << 2), Step::Read],
            )
        });
        // Node 1 reads under its lease on both sides of a forwarded write;
        // the final read must observe that write even if the lease was
        // revoked and the copy dropped in between.
        let w1 = rt.fork_on(1, "mc-w1", move |ctx| {
            counter_worker(
                ctx,
                handle,
                vec![Step::Read, Step::Write(1 << 4), Step::Read],
            )
        });
        let workers = vec![w0, w1];
        let driven = exec.drive(rt.network(), || all_finished(&workers));
        if let Err(violation) = driven {
            rt.network().set_scheduler(None);
            return Err(violation);
        }
        finish_counter(exec, &rt, workers, handle)
    }
}

// ---------------------------------------------------------------------------
// 6. Sharded: partition hand-off under concurrent operations.
// ---------------------------------------------------------------------------

/// Two nodes, a job queue split over two partitions (one per node). While
/// node 1 keeps adding jobs, partition 0 migrates from node 0 to node 1 —
/// the withdrawn-mark hand-off the sharded runtime uses to guarantee no
/// operation is lost or applied twice while ownership moves. After the
/// dust settles the queue is closed and drained: every acked add must come
/// out exactly once.
///
/// Node 0's worker triggers the migration and *waits* for it, so node 0
/// never has two threads sending concurrently (which would break canonical
/// message identities); node 1's adds stay concurrent with the hand-off.
pub struct ShardedHandoff {
    /// Exploration budgets.
    pub budget: McConfig,
}

impl Default for ShardedHandoff {
    fn default() -> Self {
        ShardedHandoff {
            budget: McConfig {
                max_schedules: 256,
                max_depth: 72,
                quiesce_idle: Duration::from_millis(10),
                ..McConfig::default()
            },
        }
    }
}

impl Scenario for ShardedHandoff {
    fn name(&self) -> &'static str {
        "sharded_handoff"
    }

    fn config(&self) -> McConfig {
        self.budget.clone()
    }

    fn run(&self, exec: &mut Execution<'_>) -> Result<(), String> {
        let cfg = OrcaConfig::sharded(2, 2);
        let rt = OrcaRuntime::start(cfg, standard_registry());
        let queue = JobQueue::<i64>::create(rt.main()).map_err(|e| e.to_string())?;
        rt.network().set_scheduler(Some(exec.scheduler()));

        let migrate_start = Arc::new(AtomicBool::new(false));
        let migrate_done = Arc::new(AtomicBool::new(false));
        let abort = Arc::new(AtomicBool::new(false));
        let adds_done = Arc::new(AtomicBool::new(false));
        let migrate_result: Mutex<Option<Result<(), String>>> = Mutex::new(None);

        // Job values are chosen by their shard hash: 5, 9, 21, 22 and 25
        // all land in partition 0 (the one that migrates from node 0 to
        // node 1), so every add in the scenario races the hand-off itself.
        //
        // Worker 0 (on the migration-source node): add, hand off, add,
        // then close and drain once worker 1 is done adding.
        let w0 = {
            let start = migrate_start.clone();
            let done = migrate_done.clone();
            let w1_done = adds_done.clone();
            let abort = abort.clone();
            rt.fork_on(0, "mc-w0", move |ctx| {
                let mut acked = Vec::new();
                let mut maybe = Vec::new();
                let mut observed = Vec::new();
                let mut add = |ctx: &OrcaNode, job: i64| match queue.add(ctx, &job) {
                    Ok(()) => acked.push(job),
                    Err(_) => maybe.push(job),
                };
                add(&ctx, 5);
                start.store(true, Ordering::SeqCst);
                while !done.load(Ordering::SeqCst) && !abort.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                // Partition 0 now lives on node 1: this add goes remote.
                add(&ctx, 9);
                while !w1_done.load(Ordering::SeqCst) && !abort.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                if !abort.load(Ordering::SeqCst) && queue.close(&ctx).is_ok() {
                    while let Ok(Some(job)) = queue.get(&ctx) {
                        observed.push(job);
                    }
                }
                (acked, maybe, observed)
            })
        };
        // Worker 1: waits for the hand-off to start, then fires adds at the
        // *moving* partition — each one lands before the withdraw, between
        // withdraw and install, or after the new owner is live, and the
        // scheduler enumerates all of it.
        let w1 = {
            let start = migrate_start.clone();
            let w1_done = adds_done.clone();
            let abort = abort.clone();
            rt.fork_on(1, "mc-w1", move |ctx| {
                while !start.load(Ordering::SeqCst) && !abort.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_micros(200));
                }
                let mut acked = Vec::new();
                let mut maybe = Vec::new();
                for job in [21i64, 22, 25] {
                    match queue.add(&ctx, &job) {
                        Ok(()) => acked.push(job),
                        Err(_) => maybe.push(job),
                    }
                }
                w1_done.store(true, Ordering::SeqCst);
                (acked, maybe, Vec::<i64>::new())
            })
        };

        let driven = std::thread::scope(|scope| {
            let migrator = scope.spawn(|| {
                while !migrate_start.load(Ordering::SeqCst) {
                    if abort.load(Ordering::SeqCst) {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                let outcome = rt
                    .migrate_shard(queue.handle().id(), 0, NodeId(1))
                    .expect("sharded strategy")
                    .map_err(|e| e.to_string());
                *migrate_result.lock().unwrap() = Some(outcome);
                migrate_done.store(true, Ordering::SeqCst);
            });
            let driven = exec.drive(rt.network(), || {
                w0.is_finished() && w1.is_finished() && migrate_done.load(Ordering::SeqCst)
            });
            if driven.is_err() {
                abort.store(true, Ordering::SeqCst);
                rt.network().set_scheduler(None);
            }
            migrator.join().expect("migrator panicked");
            driven
        });
        driven?;

        rt.network().set_scheduler(None);
        if !exec.settle(|| w0.is_finished() && w1.is_finished()) {
            abort.store(true, Ordering::SeqCst);
            rt.shutdown();
            let _ = w0.join();
            let _ = w1.join();
            return Err("liveness violation: workers still blocked after the settle budget".into());
        }
        let (mut acked, mut maybe, observed) = w0.join();
        let (acked1, maybe1, _) = w1.join();
        acked.extend(acked1);
        maybe.extend(maybe1);
        match migrate_result.into_inner().unwrap() {
            Some(Ok(())) => {}
            Some(Err(err)) => return Err(format!("migration failed: {err}")),
            None => return Err("migration never ran".into()),
        }
        let owners = rt
            .shard_owners(queue.handle().id())
            .ok_or("no shard owners")?;
        if owners.first() != Some(&NodeId(1)) {
            return Err(format!(
                "hand-off did not take effect: partition owners {owners:?}"
            ));
        }
        check_jobs(&acked, &maybe, &observed)
    }
}

// ---------------------------------------------------------------------------
// 7. Adaptive: regime switch under concurrent operations.
// ---------------------------------------------------------------------------

/// Two nodes under the adaptive runtime with hair-trigger thresholds: the
/// read-dominated workload makes the home re-evaluate the counter's regime
/// *during* the schedule and switch primary → replicated, draining the old
/// regime and installing mirrors under the next epoch while both workers
/// keep reading and writing. Every interleaving of the drain/install
/// hand-shake against in-flight operations must preserve sequential
/// consistency — no write swallowed by a retiring regime, none applied in
/// both.
pub struct AdaptiveRegimeSwitch {
    /// Exploration budgets.
    pub budget: McConfig,
}

impl Default for AdaptiveRegimeSwitch {
    fn default() -> Self {
        AdaptiveRegimeSwitch {
            budget: McConfig {
                max_schedules: 256,
                max_depth: 64,
                quiesce_idle: Duration::from_millis(10),
                ..McConfig::default()
            },
        }
    }
}

impl Scenario for AdaptiveRegimeSwitch {
    fn name(&self) -> &'static str {
        "adaptive_regime_switch"
    }

    fn config(&self) -> McConfig {
        self.budget.clone()
    }

    fn run(&self, exec: &mut Execution<'_>) -> Result<(), String> {
        let mut cfg = OrcaConfig::adaptive(2);
        cfg.strategy = RtsStrategy::Adaptive {
            policy: AdaptivePolicy {
                report_every: 2,
                // Evaluate on the same cadence evidence becomes sufficient:
                // with `evaluate_every` below `min_accesses` every window
                // closes (and halves the decayed aggregate) before it can
                // reach the threshold and the switch never fires.
                evaluate_every: 4,
                min_accesses: 4,
                replicate_ratio: 1.5,
                // The integer is not shardable, but keep the door shut
                // explicitly: this scenario is about the primary →
                // replicated switch.
                shard_write_fraction: 0.95,
                regime_lease: Duration::from_secs(5),
                // Stretch the bounce-retry cadence: while the switch holds
                // an op Stale, a 5 ms retry loop floods the pool with table
                // re-fetches (a fresh message each time — an infinite
                // interleaving tree). At 300 ms a bounced op waits out the
                // switch, yet still fires well inside the engine's
                // progress-wait cap if it is the only activity left.
                stale_retry_delay: Duration::from_millis(300),
                blocked_retry_delay: Duration::from_millis(300),
                // The model checker virtualizes time; real-clock read
                // leases would either never expire or stall explored
                // schedules on sleeps.
                read_lease_ms: 0,
                ..AdaptivePolicy::default()
            },
        };
        let rt = OrcaRuntime::start(cfg, standard_registry());
        let handle = rt.create::<IntObject>(&0).map_err(|e| e.to_string())?;
        rt.network().set_scheduler(Some(exec.scheduler()));
        let workers: Vec<_> = (0..2)
            .map(|node| {
                let base = 4 * node as i64;
                // Read-heavy: the accumulated reports push the home over
                // the replicate threshold mid-schedule (3:1 stays above
                // `replicate_ratio` in every later window too, so the
                // regime switches exactly once — no flapping, which would
                // blow the interleaving tree past any budget).
                let steps = vec![Step::Read, Step::Read, Step::Write(1 << base), Step::Read];
                rt.fork_on(node, &format!("mc-w{node}"), move |ctx| {
                    counter_worker(ctx, handle, steps)
                })
            })
            .collect();
        let driven = exec.drive(rt.network(), || all_finished(&workers));
        if let Err(violation) = driven {
            rt.network().set_scheduler(None);
            return Err(violation);
        }
        finish_counter(exec, &rt, workers, handle)?;
        // The scenario is pointless if the switch silently stopped firing
        // (a policy-tuning regression would degenerate every schedule to
        // plain primary-copy traffic) — fail loudly instead.
        match rt.object_regime(handle.id()) {
            Some(orca_rts::RegimeKind::Replicated) => Ok(()),
            other => Err(format!(
                "regime switch never happened: object ended in {other:?}, expected Replicated"
            )),
        }
    }
}

/// All seven scenarios, one per protocol family plus the three crash lanes.
pub fn all_scenarios() -> Vec<Box<dyn Scenario>> {
    vec![
        Box::new(BroadcastOrdering::default()),
        Box::new(BroadcastEraReplay::default()),
        Box::new(PrimaryFetchRace::default()),
        Box::new(PrimaryPromotion::default()),
        Box::new(PrimaryLeaseRevoke::default()),
        Box::new(ShardedHandoff::default()),
        Box::new(AdaptiveRegimeSwitch::default()),
    ]
}
