//! Explore every model-checking scenario and write `BENCH_mc.json`.
//!
//! The CI model-check lane runs this to record coverage numbers (schedules
//! explored, states visited, prunes, completeness) alongside the benchmark
//! JSONs. Exits non-zero if any scenario surfaces a violation, printing the
//! replayable trace.
//!
//! Usage: `mc_explore [output.json]` (default `BENCH_mc.json`).

use orca_mc::{all_scenarios, explore, Report};

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn report_json(r: &Report) -> String {
    let violation = match &r.violation {
        Some(v) => format!(
            "{{ \"message\": \"{}\", \"trace\": \"{}\", \"replay_confirmed\": {} }}",
            json_escape(&v.message),
            json_escape(&v.trace),
            v.replay_confirmed
        ),
        None => "null".to_string(),
    };
    format!(
        "    {{\n      \"scenario\": \"{}\",\n      \"schedules\": {},\n      \"total_steps\": {},\n      \"deepest\": {},\n      \"states\": {},\n      \"pruned\": {},\n      \"divergences\": {},\n      \"complete\": {},\n      \"violation\": {}\n    }}",
        json_escape(&r.scenario),
        r.schedules,
        r.total_steps,
        r.deepest,
        r.states,
        r.pruned,
        r.divergences,
        r.complete,
        violation
    )
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_mc.json".to_string());
    let mut reports = Vec::new();
    for scenario in all_scenarios() {
        let report = explore(scenario.as_ref());
        println!("{}", report.summary());
        reports.push(report);
    }
    let body = reports
        .iter()
        .map(report_json)
        .collect::<Vec<_>>()
        .join(",\n");
    let json =
        format!("{{\n  \"benchmark\": \"model_check\",\n  \"scenarios\": [\n{body}\n  ]\n}}\n");
    std::fs::write(&out, json).unwrap_or_else(|err| panic!("writing {out}: {err}"));
    println!("wrote {out}");
    let violations: Vec<&Report> = reports.iter().filter(|r| r.violation.is_some()).collect();
    if !violations.is_empty() {
        for report in violations {
            let v = report.violation.as_ref().unwrap();
            eprintln!(
                "VIOLATION in {}: {}\n  replay: ORCA_MC_SCENARIO={} ORCA_MC_TRACE={}",
                report.scenario, v.message, report.scenario, v.trace
            );
            if let Some(flight) = &v.flight {
                eprintln!("  flight recorder of the violating schedule:");
                for line in flight.lines() {
                    eprintln!("    {line}");
                }
            }
        }
        std::process::exit(1);
    }
}
