//! The schedule-exploration engine: bounded stateless DFS over delivery,
//! drop and crash choices.
//!
//! The checker is *stateless* in the model-checking sense: the runtime
//! systems run on real threads and cannot be snapshotted, so every explored
//! schedule re-executes the whole scenario from scratch (CHESS-style). One
//! execution works like this:
//!
//! 1. The scenario builds an [`orca_core::OrcaRuntime`], installs a
//!    [`SchedulerConfig`] on its network (parking every non-passthrough
//!    message in the held pool) and forks one worker process per node.
//! 2. [`Execution::drive`] repeatedly waits for the network to *quiesce*
//!    (the delivery-activity counter stays stable for
//!    [`McConfig::quiesce_idle`]), enumerates the current [`Choice`] set —
//!    release one held message, drop one unreliable held message, crash a
//!    candidate node — and applies one choice. While a recorded plan prefix
//!    remains it replays those choices *by value* (waiting for the named
//!    message to appear if a timer has not produced it yet); past the
//!    prefix it deterministically picks the smallest choice and records the
//!    full choice set for later backtracking.
//! 3. When the workers finish and the held pool is empty the scenario
//!    checks its invariants on the joined histories.
//!
//! [`explore`] wraps this in a depth-first search: after each execution it
//! pushes one new plan per unexplored alternative at every *branchable*
//! step (a step whose collapsed-state fingerprint had not been seen
//! before), deepest first. Fingerprints hash the canonical pending-message
//! multiset, the per-node delivered/dropped history and the crash set —
//! two schedules reaching the same fingerprint are assumed to lead to the
//! same behaviours, a standard (sound-in-practice, formally incomplete)
//! state-hashing reduction that keeps the tree small.
//!
//! A violated invariant aborts the search: the recorded choice list is
//! formatted as a *trace* (`"r0.1.17.0,r1.0.e.0,c0"`), the schedule is
//! re-executed once from that trace to confirm it reproduces
//! deterministically, and both land in the returned [`Report`]. Setting
//! `ORCA_MC_TRACE` to such a trace (optionally with `ORCA_MC_SCENARIO`
//! naming one scenario) skips exploration and replays exactly that
//! schedule.

use std::collections::HashSet;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use orca_amoeba::network::Network;
use orca_amoeba::sched::HeldDescriptor;
use orca_amoeba::{MsgId, NodeId, SchedulerConfig};
use orca_telemetry::Telemetry;

/// One scheduling decision.
///
/// The derived ordering (releases by canonical message id, then drops, then
/// crashes) is the engine's deterministic enumeration order: the default
/// policy explores the smallest choice first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Choice {
    /// Deliver the held message with this identity.
    Release(MsgId),
    /// Drop the (unreliable) held message with this identity.
    Drop(MsgId),
    /// Crash this node, fail-stop.
    Crash(NodeId),
}

impl fmt::Display for Choice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Choice::Release(id) => write!(f, "r{id}"),
            Choice::Drop(id) => write!(f, "d{id}"),
            Choice::Crash(node) => write!(f, "c{}", node.index()),
        }
    }
}

impl FromStr for Choice {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (tag, rest) = s.split_at(1.min(s.len()));
        match tag {
            "r" => Ok(Choice::Release(rest.parse()?)),
            "d" => Ok(Choice::Drop(rest.parse()?)),
            "c" => rest
                .parse::<u16>()
                .map(|n| Choice::Crash(NodeId(n)))
                .map_err(|_| format!("malformed crash choice {s:?}")),
            _ => Err(format!("malformed choice {s:?} (want r…, d… or c…)")),
        }
    }
}

/// Format a choice sequence as a replayable trace string.
pub fn format_trace(choices: &[Choice]) -> String {
    choices
        .iter()
        .map(|c| c.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// Parse a trace string produced by [`format_trace`].
pub fn parse_trace(trace: &str) -> Result<Vec<Choice>, String> {
    trace
        .split(',')
        .filter(|part| !part.trim().is_empty())
        .map(|part| part.trim().parse())
        .collect()
}

/// Budgets and knobs of one scenario's exploration.
#[derive(Debug, Clone)]
pub struct McConfig {
    /// Maximum number of schedules (re-executions) to explore.
    pub max_schedules: usize,
    /// Maximum choices per schedule; a deeper schedule is cut off (the
    /// scheduler is uninstalled and the run finishes in real time, still
    /// invariant-checked, but the search is marked incomplete).
    pub max_depth: usize,
    /// Maximum number of distinct state fingerprints remembered; beyond
    /// this every state looks "already seen" (no new branching).
    pub max_states: usize,
    /// The network counts as quiescent when its activity counter has been
    /// stable this long — all sends triggered by the previous delivery
    /// have happened and the pending pool is the full choice set.
    pub quiesce_idle: Duration,
    /// Upper bound on waiting: for quiescence, for a planned message to
    /// appear during replay, and for *anything* to happen when the pool is
    /// empty but workers have not finished (after which the run is
    /// declared stuck — a liveness violation).
    pub quiesce_cap: Duration,
    /// Nodes the search may crash (fail-stop) as an explicit choice.
    pub crash_candidates: Vec<NodeId>,
    /// Maximum crashes per schedule.
    pub max_crashes: usize,
    /// When true, a crash choice also *uninstalls* the scheduler: the rest
    /// of the run (detection, election, replay) proceeds in real time with
    /// no further choices. Used when recovery is driven by wall-clock
    /// timers that would make post-crash scheduling explode.
    pub after_crash_passthrough: bool,
    /// Maximum message drops per schedule (drops are only offered for
    /// unreliable traffic).
    pub max_drops: usize,
    /// How long a scenario waits for its workers to finish after driving
    /// ends before declaring a liveness violation.
    pub settle: Duration,
    /// Exploration order. `false` (default): classic DFS — backtrack the
    /// *deepest* unexplored alternative first, permuting the latest
    /// decisions before revisiting early ones; the right order when the
    /// budget can exhaust the tree. `true`: breadth-first over divergence
    /// points — always continue from the *shallowest* unexplored
    /// alternative. Use for budget-capped crash scenarios: the schedules
    /// that expose failover bugs diverge near the root (crash/drop while
    /// the first messages are in flight), exactly the branches DFS reaches
    /// last.
    pub shallow_first: bool,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            max_schedules: 256,
            max_depth: 64,
            max_states: 1 << 16,
            quiesce_idle: Duration::from_millis(15),
            quiesce_cap: Duration::from_secs(2),
            crash_candidates: Vec::new(),
            max_crashes: 0,
            after_crash_passthrough: false,
            max_drops: 0,
            settle: Duration::from_secs(20),
            shallow_first: false,
        }
    }
}

/// What the engine recorded at one step of an execution.
#[derive(Debug, Clone)]
pub struct StepRecord {
    /// The choice that was applied.
    pub chosen: Choice,
    /// The full (sorted) choice set that was available.
    pub alternatives: Vec<Choice>,
    /// Whether the search may branch here: the state fingerprint was new
    /// and more than one choice was available.
    pub branchable: bool,
}

/// One execution of a scenario under engine control.
///
/// Created by [`explore`] / [`replay_trace`]; scenarios receive it in
/// their `run` method and call [`Execution::drive`] after installing the
/// scheduler and forking their workers.
pub struct Execution<'a> {
    cfg: &'a McConfig,
    plan: Vec<Choice>,
    /// The steps taken so far (grows as `drive` runs).
    pub steps: Vec<StepRecord>,
    visited: &'a mut HashSet<u64>,
    pruned: &'a mut u64,
    crashes: usize,
    drops: usize,
    /// Rolling per-destination-node hash of everything released or dropped,
    /// part of the state fingerprint.
    delivered: Vec<u64>,
    crashed_mask: u64,
    /// Set when replay could not find a planned message within the wait
    /// budget: the schedule diverged (usually timer noise) and its
    /// recording is not trustworthy for further branching.
    pub divergence: Option<String>,
    /// Set when the schedule hit `max_depth` and finished in real time.
    pub depth_exhausted: bool,
    /// Set when a crash choice switched the run to passthrough mode.
    pub passthrough_tail: bool,
    /// Strong handle to the driven network's telemetry hub, captured by
    /// `drive` so the flight recorder outlives the scenario's runtime and
    /// a violation report can include the protocol events.
    pub telemetry: Option<Arc<Telemetry>>,
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

fn fnv(hash: u64, bytes: &[u8]) -> u64 {
    let mut h = hash;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv_u64(hash: u64, value: u64) -> u64 {
    fnv(hash, &value.to_le_bytes())
}

impl<'a> Execution<'a> {
    fn new(
        cfg: &'a McConfig,
        plan: Vec<Choice>,
        visited: &'a mut HashSet<u64>,
        pruned: &'a mut u64,
    ) -> Self {
        Execution {
            cfg,
            plan,
            steps: Vec::new(),
            visited,
            pruned,
            crashes: 0,
            drops: 0,
            delivered: Vec::new(),
            crashed_mask: 0,
            divergence: None,
            depth_exhausted: false,
            passthrough_tail: false,
            telemetry: None,
        }
    }

    /// The budgets this execution runs under.
    pub fn config(&self) -> &McConfig {
        self.cfg
    }

    /// The scheduler configuration scenarios should install: hold
    /// everything except membership heartbeats.
    pub fn scheduler(&self) -> SchedulerConfig {
        SchedulerConfig::default_for_mc()
    }

    /// Wait until the network's activity counter has been stable for the
    /// configured idle window (bounded by the wait cap).
    fn quiesce(&self, net: &Network) {
        let started = Instant::now();
        let mut last = net.activity();
        let mut stable_since = Instant::now();
        loop {
            std::thread::sleep(Duration::from_millis(1));
            let now = net.activity();
            if now != last {
                last = now;
                stable_since = Instant::now();
            }
            if stable_since.elapsed() >= self.cfg.quiesce_idle
                || started.elapsed() >= self.cfg.quiesce_cap
            {
                return;
            }
        }
    }

    /// The sorted choice set for the current pending pool.
    fn enumerate(&self, pending: &[HeldDescriptor]) -> Vec<Choice> {
        let mut out: Vec<Choice> = pending.iter().map(|d| Choice::Release(d.id)).collect();
        if self.drops < self.cfg.max_drops {
            out.extend(
                pending
                    .iter()
                    .filter(|d| !d.reliable)
                    .map(|d| Choice::Drop(d.id)),
            );
        }
        if self.crashes < self.cfg.max_crashes {
            out.extend(
                self.cfg
                    .crash_candidates
                    .iter()
                    .filter(|n| self.crashed_mask & (1 << n.index()) == 0)
                    .map(|n| Choice::Crash(*n)),
            );
        }
        out.sort();
        out
    }

    /// Collapsed-state fingerprint: pending multiset + delivery history +
    /// crash set. Deliberately excludes payload bytes and wall-clock time.
    fn fingerprint(&self, pending: &[HeldDescriptor]) -> u64 {
        let mut h = FNV_OFFSET;
        for d in pending {
            h = fnv_u64(h, u64::from(d.id.src.0));
            h = fnv_u64(h, u64::from(d.id.dst.0));
            h = fnv_u64(h, d.id.lane);
            h = fnv_u64(h, d.id.seq);
            h = fnv_u64(h, d.len as u64);
            h = fnv_u64(h, u64::from(d.reliable));
        }
        for &d in &self.delivered {
            h = fnv_u64(h, d);
        }
        fnv_u64(h, self.crashed_mask)
    }

    fn note_message(&mut self, id: MsgId, dropped: bool) {
        let dst = id.dst.index();
        if self.delivered.len() <= dst {
            self.delivered.resize(dst + 1, FNV_OFFSET);
        }
        let mut h = self.delivered[dst];
        h = fnv_u64(h, u64::from(id.src.0));
        h = fnv_u64(h, id.lane);
        h = fnv_u64(h, id.seq);
        h = fnv_u64(h, u64::from(dropped));
        self.delivered[dst] = h;
    }

    fn apply(&mut self, net: &Network, choice: Choice) -> Result<(), String> {
        match choice {
            Choice::Release(id) => {
                if !net.sched_release(id) {
                    return Err(format!("release of unknown message {id}"));
                }
                self.note_message(id, false);
            }
            Choice::Drop(id) => {
                if !net.sched_drop(id) {
                    return Err(format!("drop of unknown or reliable message {id}"));
                }
                self.note_message(id, true);
                self.drops += 1;
            }
            Choice::Crash(node) => {
                net.crash(node);
                self.crashed_mask |= 1 << node.index();
                self.crashes += 1;
                if self.cfg.after_crash_passthrough {
                    net.set_scheduler(None);
                    self.passthrough_tail = true;
                }
            }
        }
        Ok(())
    }

    /// Drive the schedule until the workers report finished and no held
    /// messages remain (or the depth budget runs out, or — after a crash in
    /// passthrough mode — immediately).
    ///
    /// `finished` must return true once every worker process of the
    /// scenario has completed. Returns a violation message when the run is
    /// *stuck*: nothing pending, workers not finished, and nothing happened
    /// within the wait cap.
    pub fn drive<F: Fn() -> bool>(&mut self, net: &Network, finished: F) -> Result<(), String> {
        self.telemetry = Some(Arc::clone(net.telemetry()));
        loop {
            if self.passthrough_tail {
                return Ok(());
            }
            self.quiesce(net);
            let pending = net.sched_pending();
            if pending.is_empty() {
                if finished() {
                    return Ok(());
                }
                // Nothing to schedule but the workers are still going:
                // either a local computation or a wall-clock timer is about
                // to produce traffic, or the protocol is deadlocked.
                let waiting = Instant::now();
                let mut progressed = false;
                while waiting.elapsed() < self.cfg.quiesce_cap {
                    std::thread::sleep(Duration::from_millis(2));
                    if finished() {
                        return Ok(());
                    }
                    if !net.sched_pending().is_empty() {
                        progressed = true;
                        break;
                    }
                }
                if progressed {
                    continue;
                }
                return Err(format!(
                    "stuck at step {}: no pending messages, workers not finished, \
                     nothing happened for {:?}",
                    self.steps.len(),
                    self.cfg.quiesce_cap
                ));
            }
            if self.steps.len() >= self.cfg.max_depth {
                self.depth_exhausted = true;
                net.set_scheduler(None);
                return Ok(());
            }
            let choices = self.enumerate(&pending);
            let step = self.steps.len();
            if std::env::var_os("ORCA_MC_DEBUG").is_some() {
                let pool: Vec<String> = pending
                    .iter()
                    .map(|d| {
                        format!(
                            "{}({}B{})",
                            d.id,
                            d.len,
                            if d.reliable { ",rel" } else { "" }
                        )
                    })
                    .collect();
                eprintln!("mc-debug step {step}: pool [{}]", pool.join(" "));
            }
            let (choice, pending) = if step < self.plan.len() {
                let want = self.plan[step];
                match self.await_planned(net, want, &choices) {
                    Some(pending) => (want, pending),
                    None => {
                        self.divergence = Some(format!(
                            "planned choice {want} never became available at step {step}"
                        ));
                        net.set_scheduler(None);
                        return Ok(());
                    }
                }
            } else {
                (choices[0], pending)
            };
            let fp = self.fingerprint(&pending);
            let new_state = if self.visited.len() >= self.cfg.max_states {
                false
            } else {
                self.visited.insert(fp)
            };
            if !new_state {
                *self.pruned += 1;
            }
            let alternatives = self.enumerate(&pending);
            self.steps.push(StepRecord {
                chosen: choice,
                branchable: new_state && alternatives.len() > 1,
                alternatives,
            });
            self.apply(net, choice)?;
        }
    }

    /// Wait for a planned choice to become available (timers may not have
    /// produced the message yet). Returns the pending pool in which the
    /// choice was found, or `None` on divergence.
    fn await_planned(
        &self,
        net: &Network,
        want: Choice,
        choices: &[Choice],
    ) -> Option<Vec<HeldDescriptor>> {
        if choices.contains(&want) {
            return Some(net.sched_pending());
        }
        if matches!(want, Choice::Crash(_)) {
            // Crash choices are always applicable.
            return Some(net.sched_pending());
        }
        let started = Instant::now();
        while started.elapsed() < self.cfg.quiesce_cap {
            std::thread::sleep(Duration::from_millis(2));
            let pending = net.sched_pending();
            let id = match want {
                Choice::Release(id) | Choice::Drop(id) => id,
                Choice::Crash(_) => unreachable!(),
            };
            if pending.iter().any(|d| d.id == id) {
                return Some(pending);
            }
        }
        None
    }

    /// Poll `finished` until it returns true or the settle budget runs
    /// out. Scenarios call this after [`Execution::drive`] so a worker
    /// stuck in a protocol-level livelock (a real violation) cannot hang
    /// the whole test process; on timeout the caller should shut the
    /// runtime down (failing the stuck invocations) and report a liveness
    /// violation.
    pub fn settle<F: Fn() -> bool>(&self, finished: F) -> bool {
        let started = Instant::now();
        loop {
            if finished() {
                return true;
            }
            if started.elapsed() >= self.cfg.settle {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

/// A model-checking scenario: a small distributed workload plus its
/// invariants.
pub trait Scenario {
    /// Stable name (used by `ORCA_MC_SCENARIO` and in reports).
    fn name(&self) -> &'static str;

    /// The exploration budgets this scenario runs under.
    fn config(&self) -> McConfig;

    /// Execute the workload once under `exec`'s control and check every
    /// invariant on the outcome. Returns `Err` with a human-readable
    /// message on violation.
    fn run(&self, exec: &mut Execution<'_>) -> Result<(), String>;
}

/// A violation found by exploration.
#[derive(Debug, Clone)]
pub struct Violation {
    /// What went wrong.
    pub message: String,
    /// Replayable schedule trace (`ORCA_MC_TRACE` format).
    pub trace: String,
    /// Whether re-executing the trace reproduced a violation.
    pub replay_confirmed: bool,
    /// Flight-recorder dump of the violating schedule (protocol events and
    /// causal span trees), when the scenario's run reached `drive`.
    pub flight: Option<String>,
}

/// Outcome of exploring one scenario.
#[derive(Debug, Clone)]
pub struct Report {
    /// Scenario name.
    pub scenario: String,
    /// Schedules executed.
    pub schedules: usize,
    /// Total choices applied across all schedules.
    pub total_steps: u64,
    /// Deepest schedule (choices).
    pub deepest: usize,
    /// Distinct state fingerprints seen.
    pub states: usize,
    /// Steps not branched because their fingerprint was already known.
    pub pruned: u64,
    /// Schedules abandoned because replay diverged (timer noise).
    pub divergences: usize,
    /// True when the search ran out of work *before* hitting any budget:
    /// every reachable interleaving (modulo state-hash collapsing) was
    /// explored.
    pub complete: bool,
    /// The violation, if one was found.
    pub violation: Option<Violation>,
}

impl Report {
    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} schedules, {} steps (deepest {}), {} states, {} pruned, {} diverged, {}{}",
            self.scenario,
            self.schedules,
            self.total_steps,
            self.deepest,
            self.states,
            self.pruned,
            self.divergences,
            if self.complete {
                "exhaustive"
            } else {
                "budget-capped"
            },
            match &self.violation {
                Some(v) => format!("; VIOLATION: {} (trace {})", v.message, v.trace),
                None => String::new(),
            }
        )
    }
}

/// Re-execute one schedule from a trace string and report the outcome.
pub fn replay_trace(scenario: &dyn Scenario, trace: &str) -> Report {
    let cfg = scenario.config();
    let plan = match parse_trace(trace) {
        Ok(plan) => plan,
        Err(err) => {
            return Report {
                scenario: scenario.name().to_string(),
                schedules: 0,
                total_steps: 0,
                deepest: 0,
                states: 0,
                pruned: 0,
                divergences: 0,
                complete: false,
                violation: Some(Violation {
                    message: format!("unparseable trace: {err}"),
                    trace: trace.to_string(),
                    replay_confirmed: false,
                    flight: None,
                }),
            }
        }
    };
    let mut visited = HashSet::new();
    let mut pruned = 0u64;
    let mut exec = Execution::new(&cfg, plan, &mut visited, &mut pruned);
    let result = scenario.run(&mut exec);
    let steps = exec.steps.len();
    let diverged = exec.divergence.is_some();
    let flight = exec.telemetry.take().map(|t| t.flight_dump());
    Report {
        scenario: scenario.name().to_string(),
        schedules: 1,
        total_steps: steps as u64,
        deepest: steps,
        states: visited.len(),
        pruned,
        divergences: usize::from(diverged),
        complete: false,
        violation: result.err().map(|message| Violation {
            message,
            trace: trace.to_string(),
            replay_confirmed: true,
            flight,
        }),
    }
}

/// Explore a scenario's schedule tree depth-first within its budgets.
///
/// Honors `ORCA_MC_TRACE` (replay exactly one schedule instead of
/// exploring), gated by `ORCA_MC_SCENARIO` when several scenarios run in
/// one process.
pub fn explore(scenario: &dyn Scenario) -> Report {
    if let Ok(trace) = std::env::var("ORCA_MC_TRACE") {
        let wanted = std::env::var("ORCA_MC_SCENARIO").ok();
        if wanted.as_deref().is_none_or(|w| w == scenario.name()) {
            return replay_trace(scenario, &trace);
        }
    }
    let cfg = scenario.config();
    let mut visited: HashSet<u64> = HashSet::new();
    let mut pruned = 0u64;
    let mut stack: Vec<Vec<Choice>> = vec![Vec::new()];
    let mut schedules = 0usize;
    let mut total_steps = 0u64;
    let mut deepest = 0usize;
    let mut divergences = 0usize;
    let mut complete = true;

    while let Some(plan) = {
        if cfg.shallow_first {
            // Breadth-first over divergence points: always continue from
            // the shortest pending plan. Ties keep stack order, which
            // preserves the per-step choice ordering (releases, drops,
            // crashes).
            stack
                .iter()
                .enumerate()
                .min_by_key(|(i, p)| (p.len(), *i))
                .map(|(i, _)| i)
                .map(|i| stack.remove(i))
        } else {
            stack.pop()
        }
    } {
        if schedules >= cfg.max_schedules {
            complete = false;
            break;
        }
        schedules += 1;
        let prefix_len = plan.len();
        let mut exec = Execution::new(&cfg, plan, &mut visited, &mut pruned);
        let result = scenario.run(&mut exec);
        total_steps += exec.steps.len() as u64;
        deepest = deepest.max(exec.steps.len());
        if exec.depth_exhausted {
            complete = false;
        }
        if let Err(message) = result {
            let trace = format_trace(&exec.steps.iter().map(|s| s.chosen).collect::<Vec<_>>());
            let flight = exec.telemetry.take().map(|t| t.flight_dump());
            let replay_confirmed = {
                let sub = replay_trace(scenario, &trace);
                sub.violation.is_some()
            };
            return Report {
                scenario: scenario.name().to_string(),
                schedules,
                total_steps,
                deepest,
                states: visited.len(),
                pruned,
                divergences,
                complete: false,
                violation: Some(Violation {
                    message,
                    trace,
                    replay_confirmed,
                    flight,
                }),
            };
        }
        if exec.divergence.is_some() {
            divergences += 1;
            continue;
        }
        // Branch: for every step past the replayed prefix whose state was
        // new, queue one plan per untried alternative. Pushing shallower
        // steps first makes the stack pop deepest-first — classic DFS,
        // varying the latest decisions before revisiting early ones.
        for (i, step) in exec.steps.iter().enumerate() {
            if i < prefix_len || !step.branchable {
                continue;
            }
            for alt in &step.alternatives {
                if *alt == step.chosen {
                    continue;
                }
                let mut next: Vec<Choice> = exec.steps[..i].iter().map(|s| s.chosen).collect();
                next.push(*alt);
                stack.push(next);
            }
        }
    }

    Report {
        scenario: scenario.name().to_string(),
        schedules,
        total_steps,
        deepest,
        states: visited.len(),
        pruned,
        divergences,
        complete,
        violation: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn choices_roundtrip_through_display() {
        let r: Choice = "r1.0.17.3".parse().unwrap();
        assert_eq!(r.to_string(), "r1.0.17.3");
        let d: Choice = "d0.2.e.0".parse().unwrap();
        assert_eq!(d.to_string(), "d0.2.e.0");
        let c: Choice = "c2".parse().unwrap();
        assert_eq!(c, Choice::Crash(NodeId(2)));
        assert!("x1.2.3.4".parse::<Choice>().is_err());
        assert!("".parse::<Choice>().is_err());
    }

    #[test]
    fn traces_roundtrip() {
        let plan = vec![
            Choice::Release("0.1.17.0".parse().unwrap()),
            Choice::Drop("1.0.e.2".parse().unwrap()),
            Choice::Crash(NodeId(0)),
        ];
        let trace = format_trace(&plan);
        assert_eq!(trace, "r0.1.17.0,d1.0.e.2,c0");
        assert_eq!(parse_trace(&trace).unwrap(), plan);
        assert_eq!(parse_trace("").unwrap(), Vec::<Choice>::new());
    }

    #[test]
    fn choice_ordering_is_release_drop_crash() {
        let release = Choice::Release("0.1.5.0".parse().unwrap());
        let drop = Choice::Drop("0.1.5.0".parse().unwrap());
        let crash = Choice::Crash(NodeId(0));
        assert!(release < drop && drop < crash);
    }
}
