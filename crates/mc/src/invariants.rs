//! Invariant checks scenarios run on joined worker histories.
//!
//! The heavy lifting (memoized sequential-consistency search, phantom
//! extension for maybe-applied operations, exactly-once bags) lives in
//! `orca-check`; this module packages it into the shapes the scenarios
//! produce: one [`WorkerOutcome`] per worker process, plus the final
//! converged values read from each live node after the schedule ends.

use orca_check::{
    counter_value_explained, exactly_once_bag, sequentially_consistent_with_phantoms, HistOp,
};

/// What one worker process observed over a shared-counter workload.
#[derive(Debug, Clone, Default)]
pub struct WorkerOutcome {
    /// The worker's operation history in issue order (writes record their
    /// delta and the returned sum; reads record delta 0).
    pub ops: Vec<HistOp>,
    /// OR of the deltas of writes that *acked* (returned `Ok`). Scenarios
    /// use distinct even-bit deltas (`1 << (2*k)`) so no sum of legal
    /// deltas aliases another and a double-applied write sets an illegal
    /// bit.
    pub acked: i64,
    /// OR of the deltas of writes that errored (timeout / node down): each
    /// may or may not have been applied, exactly the ambiguity the
    /// phantom-extension SC check models.
    pub maybe: i64,
}

impl WorkerOutcome {
    /// Record a write of `delta` that returned `reply`.
    pub fn acked_write(&mut self, delta: i64, reply: i64) {
        self.ops.push(HistOp::new(delta, reply));
        self.acked |= delta;
    }

    /// Record a write of `delta` whose outcome is unknown (errored).
    pub fn maybe_write(&mut self, delta: i64) {
        self.maybe |= delta;
    }

    /// Record a read that returned `value`.
    pub fn read(&mut self, value: i64) {
        self.ops.push(HistOp::new(0, value));
    }
}

/// Check every counter invariant over the joined outcomes:
///
/// 1. **Convergence** — after quiescence every live node reads the same
///    final value.
/// 2. **No acked write lost, none invented** — the final value contains
///    every acked delta and nothing outside acked ∪ maybe
///    ([`counter_value_explained`]). Every write applies **at most once**,
///    crashes included: retries carry a per-origin `(origin, op_seq)` stamp
///    and the dedup window travels with every copy and promotion, so the
///    old at-least-once allowance around a primary crash is gone.
/// 3. **Sequential consistency** — some interleaving of the per-worker
///    histories (with maybe-applied writes insertable anywhere at most
///    once) explains every recorded reply.
pub fn check_counter(outcomes: &[WorkerOutcome], finals: &[i64]) -> Result<(), String> {
    let first = *finals
        .first()
        .ok_or_else(|| "no live node produced a final read".to_string())?;
    if finals.iter().any(|&v| v != first) {
        return Err(format!("live nodes diverged: final reads {finals:?}"));
    }
    let acked = outcomes.iter().fold(0i64, |m, o| m | o.acked);
    let maybe = outcomes.iter().fold(0i64, |m, o| m | o.maybe);
    if !counter_value_explained(first, acked, maybe) {
        return Err(format!(
            "final value {first:#x} not explained by acked {acked:#x} + maybe {maybe:#x} \
             (an acked write was lost, or a write applied twice)"
        ));
    }
    let histories: Vec<Vec<HistOp>> = outcomes.iter().map(|o| o.ops.clone()).collect();
    let phantoms: Vec<i64> = (0..63)
        .map(|bit| 1i64 << bit)
        .filter(|bit| maybe & bit != 0)
        .collect();
    if !sequentially_consistent_with_phantoms(&histories, &phantoms) {
        return Err(format!(
            "histories are not sequentially consistent (phantom deltas {phantoms:?}): \
             {histories:?}"
        ));
    }
    Ok(())
}

/// Check a job-queue workload: every acked job drained exactly once, every
/// maybe job at most once, nothing invented.
pub fn check_jobs(acked: &[i64], maybe: &[i64], observed: &[i64]) -> Result<(), String> {
    exactly_once_bag(acked, maybe, observed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convergent_honest_outcomes_pass() {
        let mut a = WorkerOutcome::default();
        a.acked_write(1, 1);
        a.read(1);
        let mut b = WorkerOutcome::default();
        b.acked_write(4, 5);
        b.read(5);
        assert!(check_counter(&[a, b], &[5, 5]).is_ok());
    }

    #[test]
    fn divergent_finals_fail() {
        let mut a = WorkerOutcome::default();
        a.acked_write(1, 1);
        let err = check_counter(&[a], &[1, 5]).unwrap_err();
        assert!(err.contains("diverged"), "{err}");
    }

    #[test]
    fn lost_acked_write_fails() {
        let mut a = WorkerOutcome::default();
        a.acked_write(1, 1);
        a.acked_write(4, 5);
        let err = check_counter(&[a], &[4, 4]).unwrap_err();
        assert!(err.contains("not explained"), "{err}");
    }

    #[test]
    fn double_applied_write_fails() {
        // Delta 1 applied twice shows up as an illegal bit (0b10).
        let mut a = WorkerOutcome::default();
        a.acked_write(1, 1);
        let err = check_counter(&[a], &[2, 2]).unwrap_err();
        assert!(err.contains("not explained"), "{err}");
    }

    #[test]
    fn maybe_write_explains_either_final() {
        let mut a = WorkerOutcome::default();
        a.acked_write(1, 1);
        a.maybe_write(4);
        assert!(check_counter(&[a.clone()], &[1]).is_ok());
        assert!(check_counter(&[a.clone()], &[5]).is_ok());
        assert!(check_counter(&[a], &[4]).is_err());
    }

    #[test]
    fn crash_spanning_write_applying_twice_is_now_a_violation() {
        // Before per-origin dedup stamps, a write retried across a primary
        // promotion could legally apply twice (the old `maybe_twice`
        // allowance). The dedup window travels with every copy now, so the
        // same outcome — final 0x95 = all four acked (0x55) plus one extra
        // 0x40 — is a hard violation with no escape hatch.
        let mut a = WorkerOutcome::default();
        a.acked_write(1, 1);
        a.acked_write(4, 5);
        let mut b = WorkerOutcome::default();
        b.acked_write(0x10, 0x15);
        b.acked_write(0x40, 0x95);
        assert!(check_counter(&[a, b], &[0x95]).is_err());
    }

    #[test]
    fn stale_read_after_fresh_write_fails_sc() {
        // One worker writes (sees the other's write in its reply) then
        // reads an older value: no interleaving explains it.
        let mut a = WorkerOutcome::default();
        a.acked_write(1, 1);
        let mut b = WorkerOutcome::default();
        b.acked_write(4, 5); // reply shows a's write applied first
        b.read(4); // ...but the local read misses it
        let err = check_counter(&[a, b], &[5, 5]).unwrap_err();
        assert!(err.contains("sequentially consistent"), "{err}");
    }
}
