//! Mutation self-tests: deliberately broken protocol variants the checker
//! MUST flag.
//!
//! Each mutation (a `#[doc(hidden)]` sabotage switch inside the runtime
//! crates) disables one load-bearing piece of protocol machinery; if the
//! model checker cannot find a violating schedule, its search or its
//! invariants are too weak. Each caught violation must also replay
//! deterministically from its recorded trace — that is what makes a
//! checker-found bug debuggable.
//!
//! The sabotage switches are process-global, so these tests serialize
//! behind a mutex and reset the switch via the RAII guard.

use std::sync::Mutex;

use orca_mc::{explore, replay_trace, Scenario, Violation};
use orca_rts::sabotage::{SabotageGuard, NO_VERSION_GATING, REHOME_KEEPS_STALE_COPIES};

static LANE: Mutex<()> = Mutex::new(());

fn expect_caught(scenario: &dyn Scenario) -> Violation {
    let report = explore(scenario);
    eprintln!("{}", report.summary());
    let violation = report.violation.unwrap_or_else(|| {
        panic!(
            "{}: mutation NOT caught within budget — checker too weak ({} schedules explored)",
            report.scenario, report.schedules
        )
    });
    assert!(
        violation.replay_confirmed,
        "{}: violating trace did not reproduce on replay: {}",
        report.scenario, violation.trace
    );
    violation
}

#[test]
fn missing_version_gating_is_caught_and_replays() {
    let _lane = LANE.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    let _sabotage = SabotageGuard::enable(&NO_VERSION_GATING);
    let mut scenario = orca_mc::PrimaryFetchRace::default();
    scenario.budget.max_schedules = 768;
    let violation = expect_caught(&scenario);
    // And once more by hand, the way a developer would from the CLI.
    let replay = replay_trace(&scenario, &violation.trace);
    assert!(
        replay.violation.is_some(),
        "trace replay lost the violation: {}",
        violation.trace
    );
}

#[test]
fn rehome_keeping_stale_copies_is_caught_and_replays() {
    let _lane = LANE.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    let _sabotage = SabotageGuard::enable(&REHOME_KEEPS_STALE_COPIES);
    let mut scenario = orca_mc::PrimaryPromotion::default();
    scenario.budget.max_schedules = 512;
    expect_caught(&scenario);
}

#[test]
fn skipping_era_replay_is_caught_and_replays() {
    let _lane = LANE.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    let _sabotage = SabotageGuard::enable(&orca_group::sabotage::SKIP_ERA_REPLAY);
    let mut scenario = orca_mc::BroadcastEraReplay::default();
    scenario.budget.max_schedules = 384;
    expect_caught(&scenario);
}
