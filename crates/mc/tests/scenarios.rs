//! Honest-protocol lanes: exhaustively explore each scenario and assert no
//! schedule violates the invariants.
//!
//! The four crash-free scenarios (one per runtime-system family) must
//! explore their full interleaving tree — `complete` in the report — within
//! the state budget; the three crash scenarios may legitimately hit their
//! schedule budgets (crash-at-every-point multiplies the tree) and only
//! assert no violation.
//!
//! Scenarios share the process-global network clock and run one at a time
//! behind a mutex: the engine's quiescence detection measures wall time,
//! and a concurrently exploring scenario would starve it on the small CI
//! machines this runs on.

use std::sync::Mutex;

use orca_mc::{explore, Report, Scenario};

static LANE: Mutex<()> = Mutex::new(());

fn run(scenario: &dyn Scenario, must_be_complete: bool) -> Report {
    let _lane = LANE.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    let report = explore(scenario);
    eprintln!("{}", report.summary());
    if let Some(violation) = &report.violation {
        panic!(
            "unexpected violation in {}: {}\n  replay with ORCA_MC_SCENARIO={} ORCA_MC_TRACE={}\n  (replay confirmed: {})",
            report.scenario,
            violation.message,
            report.scenario,
            violation.trace,
            violation.replay_confirmed,
        );
    }
    assert!(
        report.schedules > 1,
        "{}: exploration never branched — the scenario is not exercising choices: {}",
        report.scenario,
        report.summary()
    );
    if must_be_complete {
        assert!(
            report.complete,
            "{}: expected exhaustive exploration within budget: {}",
            report.scenario,
            report.summary()
        );
    }
    report
}

#[test]
fn broadcast_ordering_holds_under_all_interleavings() {
    run(&orca_mc::BroadcastOrdering::default(), true);
}

#[test]
fn primary_fetch_race_holds_under_all_interleavings() {
    run(&orca_mc::PrimaryFetchRace::default(), true);
}

#[test]
fn sharded_handoff_loses_and_duplicates_nothing() {
    run(&orca_mc::ShardedHandoff::default(), true);
}

#[test]
fn adaptive_regime_switch_holds_under_all_interleavings() {
    run(&orca_mc::AdaptiveRegimeSwitch::default(), true);
}

#[test]
fn broadcast_era_replay_survives_sequencer_crash_everywhere() {
    run(&orca_mc::BroadcastEraReplay::default(), false);
}

#[test]
fn primary_promotion_survives_home_crash_everywhere() {
    run(&orca_mc::PrimaryPromotion::default(), false);
}

#[test]
fn primary_lease_revoke_keeps_leased_reads_linearizable() {
    run(&orca_mc::PrimaryLeaseRevoke::default(), false);
}
