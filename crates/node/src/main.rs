//! `orca-node` — one Orca cluster node per OS process.
//!
//! Launch the same binary N times with the same static peer list and the
//! processes form a live cluster over real TCP/UDP sockets: every node runs
//! the full runtime-system stack ([`orca_core::OrcaNodeRuntime`]), and with
//! recovery enabled the heartbeat failure detector prunes killed processes
//! from the membership and re-homes their objects onto survivors.
//!
//! Configuration comes from `KEY=VALUE` lines in an optional config file
//! (first CLI argument) with environment variables taking precedence:
//!
//! | key                  | meaning                                          |
//! |----------------------|--------------------------------------------------|
//! | `ORCA_NODE_ID`       | this process's node id (0-based, required)       |
//! | `ORCA_PEERS`         | comma-separated `host:port` list, one per node,  |
//! |                      | indexed by node id (required)                    |
//! | `ORCA_STRATEGY`      | `broadcast` \| `primary_update` \|               |
//! |                      | `primary_invalidate` \| `sharded[:P]` \|         |
//! |                      | `adaptive` (default `primary_update`)            |
//! | `ORCA_RECOVERY`      | `disabled` \| `enabled` \| `detect_only` \|      |
//! |                      | `fast` (default `disabled`)                      |
//! | `ORCA_WORKLOAD`      | `idle:<secs>` or `counter:<ops>` (default        |
//! |                      | `idle:5`)                                        |
//! | `ORCA_ACK_LOG`       | file that receives one flushed `ACK <n>` line    |
//! |                      | per acknowledged write (counter workload)        |
//!
//! The `counter` workload is the cluster conformance check used by
//! `tests/tcp_cluster.rs`: node 0 creates a shared integer, every node adds
//! 1 to it `ops` times (logging an `ACK` line after each acknowledged
//! write), then marks itself done in a per-node bit field of the same
//! counter and waits until every *live* node's field is set. The final line
//! `FINAL <value>` carries the counter value whose low 30 bits are the
//! surviving write count.

use std::fs::File;
use std::io::{BufRead, BufReader, LineWriter, Write};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use orca_core::objects::{IntObject, IntOp};
use orca_core::{
    ObjectHandle, OrcaConfig, OrcaNodeRuntime, RecoveryConfig, RtsStrategy, SocketConfig,
};
use orca_object::ObjectId;

/// Bit position of node `n`'s 4-bit completion field in the shared counter.
/// The low [`COUNT_BITS`] bits hold the write count, so the layout supports
/// clusters of up to 8 nodes inside an `i64`.
const COUNT_BITS: u32 = 30;
const FIELD_BITS: u32 = 4;
const MAX_COUNTER_NODES: usize = 8;

fn field_shift(node: usize) -> u32 {
    COUNT_BITS + FIELD_BITS * node as u32
}

/// A configuration key lookup: environment first, then the config file.
struct Settings {
    file: Vec<(String, String)>,
}

impl Settings {
    fn load() -> Result<Settings, String> {
        let mut file = Vec::new();
        if let Some(path) = std::env::args().nth(1) {
            let reader = BufReader::new(
                File::open(&path).map_err(|e| format!("cannot open config file {path}: {e}"))?,
            );
            for line in reader.lines() {
                let line = line.map_err(|e| format!("cannot read config file {path}: {e}"))?;
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                let Some((key, value)) = line.split_once('=') else {
                    return Err(format!("config line without '=' in {path}: {line}"));
                };
                file.push((key.trim().to_string(), value.trim().to_string()));
            }
        }
        Ok(Settings { file })
    }

    fn get(&self, key: &str) -> Option<String> {
        if let Ok(value) = std::env::var(key) {
            return Some(value);
        }
        self.file
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
    }

    fn require(&self, key: &str) -> Result<String, String> {
        self.get(key)
            .ok_or_else(|| format!("{key} must be set (environment or config file)"))
    }
}

fn parse_strategy(spec: &str) -> Result<RtsStrategy, String> {
    match spec {
        "broadcast" => Ok(RtsStrategy::broadcast()),
        "primary_update" => Ok(RtsStrategy::primary_update()),
        "primary_invalidate" => Ok(RtsStrategy::primary_invalidate()),
        "adaptive" => Ok(RtsStrategy::adaptive()),
        other => {
            if let Some(partitions) = other.strip_prefix("sharded") {
                let partitions = match partitions.strip_prefix(':') {
                    None if partitions.is_empty() => 4,
                    Some(p) => p
                        .parse()
                        .map_err(|_| format!("bad shard partition count in {other:?}"))?,
                    None => return Err(format!("unknown ORCA_STRATEGY {other:?}")),
                };
                Ok(RtsStrategy::sharded(partitions))
            } else {
                Err(format!("unknown ORCA_STRATEGY {other:?}"))
            }
        }
    }
}

fn parse_recovery(spec: &str) -> Result<RecoveryConfig, String> {
    match spec {
        "disabled" => Ok(RecoveryConfig::disabled()),
        "enabled" => Ok(RecoveryConfig::enabled()),
        "detect_only" => Ok(RecoveryConfig::detect_only()),
        "fast" => Ok(RecoveryConfig::fast()),
        other => Err(format!("unknown ORCA_RECOVERY {other:?}")),
    }
}

enum Workload {
    /// Stay up for the given duration, then exit (smoke / manual runs).
    Idle(Duration),
    /// The conformance counter workload with `ops` writes per node.
    Counter(u64),
}

fn parse_workload(spec: &str) -> Result<Workload, String> {
    match spec.split_once(':') {
        Some(("idle", secs)) => secs
            .parse()
            .map(|s| Workload::Idle(Duration::from_secs(s)))
            .map_err(|_| format!("bad idle duration in {spec:?}")),
        Some(("counter", ops)) => ops
            .parse()
            .map(Workload::Counter)
            .map_err(|_| format!("bad counter op count in {spec:?}")),
        _ => Err(format!("unknown ORCA_WORKLOAD {spec:?}")),
    }
}

fn main() {
    if let Err(message) = run() {
        eprintln!("orca-node: {message}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let settings = Settings::load()?;
    let node: usize = settings
        .require("ORCA_NODE_ID")?
        .parse()
        .map_err(|_| "ORCA_NODE_ID must be a non-negative integer".to_string())?;
    let peers: Vec<SocketAddr> = settings
        .require("ORCA_PEERS")?
        .split(',')
        .map(|addr| {
            addr.trim()
                .parse()
                .map_err(|_| format!("bad peer address {addr:?} in ORCA_PEERS"))
        })
        .collect::<Result<_, _>>()?;
    if node >= peers.len() {
        return Err(format!(
            "ORCA_NODE_ID {node} out of range for {} peers",
            peers.len()
        ));
    }
    let strategy = parse_strategy(
        settings
            .get("ORCA_STRATEGY")
            .as_deref()
            .unwrap_or("primary_update"),
    )?;
    let recovery = parse_recovery(
        settings
            .get("ORCA_RECOVERY")
            .as_deref()
            .unwrap_or("disabled"),
    )?;
    let workload = parse_workload(settings.get("ORCA_WORKLOAD").as_deref().unwrap_or("idle:5"))?;

    let mut config = OrcaConfig::broadcast(peers.len())
        .with_recovery(recovery)
        .with_transport(orca_core::TransportConfig::SocketLoopback);
    config.strategy = strategy;
    let runtime = OrcaNodeRuntime::start(
        config,
        orca_core::standard_registry(),
        SocketConfig::new(orca_amoeba::NodeId(node as u16), peers),
    )
    .map_err(|e| format!("cannot start node {node}: {e}"))?;
    println!("READY node={node} peers={}", runtime.num_nodes());

    match workload {
        Workload::Idle(duration) => {
            std::thread::sleep(duration);
        }
        Workload::Counter(ops) => {
            let ack_log = settings.get("ORCA_ACK_LOG");
            run_counter_workload(&runtime, ops, ack_log.as_deref())?;
        }
    }
    runtime.shutdown();
    Ok(())
}

/// Retry an invocation until it succeeds or the deadline passes. Transient
/// errors (object not yet visible, primary mid-re-home, dropped frames
/// during peer startup) all surface as `Err` from `invoke` and are retried.
fn invoke_until<T>(
    deadline: Instant,
    what: &str,
    mut attempt: impl FnMut() -> orca_core::OrcaResult<T>,
) -> Result<T, String> {
    let mut last_err = None;
    while Instant::now() < deadline {
        match attempt() {
            Ok(value) => return Ok(value),
            Err(e) => last_err = Some(e),
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    Err(format!("timed out waiting for {what}: {last_err:?}"))
}

fn run_counter_workload(
    runtime: &OrcaNodeRuntime,
    ops: u64,
    ack_log: Option<&str>,
) -> Result<(), String> {
    let num_nodes = runtime.num_nodes();
    if num_nodes > MAX_COUNTER_NODES {
        return Err(format!(
            "counter workload supports at most {MAX_COUNTER_NODES} nodes, got {num_nodes}"
        ));
    }
    let ctx = runtime.node();
    let deadline = Instant::now() + Duration::from_secs(60);

    // Node 0 creates the shared counter; its id is deterministic (first
    // object created by node 0), so the other processes can reference it
    // without any out-of-band exchange. They probe with a read until the
    // object is reachable.
    let handle: ObjectHandle<IntObject> = if runtime.node_id().index() == 0 {
        invoke_until(deadline, "counter creation", || ctx.create::<IntObject>(&0))?
    } else {
        ObjectHandle::from_id(ObjectId::compose(0, 1))
    };
    invoke_until(deadline, "counter to become reachable", || {
        ctx.invoke(handle, &IntOp::Value)
    })?;

    let mut log: Option<LineWriter<File>> = match ack_log {
        Some(path) => Some(LineWriter::new(
            File::create(path).map_err(|e| format!("cannot create ack log {path}: {e}"))?,
        )),
        None => None,
    };

    // The write phase. Every `Add` that returns Ok has been applied by the
    // object's primary/sequencer, so once the ACK line is flushed the write
    // must be visible in the final counter value even if this process is
    // killed immediately afterwards. (A retried Add whose first attempt
    // did apply can inflate the count — the conformance check therefore
    // asserts `acked <= final`, not equality, when nodes are killed.)
    for i in 0..ops {
        invoke_until(deadline, "write acknowledgement", || {
            ctx.invoke(handle, &IntOp::Add(1))
        })?;
        if let Some(log) = log.as_mut() {
            writeln!(log, "ACK {i}").and_then(|()| log.flush()).ok();
        }
    }

    // Mark this node done in its private 4-bit field. A crash-retry can
    // apply the marker at most a handful of times, which the field width
    // absorbs; completion is "field >= 1", not "field == 1".
    let marker = 1i64 << field_shift(runtime.node_id().index());
    invoke_until(deadline, "completion marker", || {
        ctx.invoke(handle, &IntOp::Add(marker))
    })?;

    // Wait for every *live* node to finish. With recovery enabled the
    // failure detector's view shrinks when a peer is killed, so survivors
    // do not wait for the dead node's marker.
    let value = invoke_until(deadline, "all live nodes to finish", || {
        let value = ctx.invoke(handle, &IntOp::Value)?;
        let live: Vec<usize> = match runtime.membership_view() {
            Some(view) => view.alive.iter().map(|&n| n.index()).collect(),
            None => (0..num_nodes).collect(),
        };
        let all_done = live
            .iter()
            .all(|&n| (value >> field_shift(n)) & ((1 << FIELD_BITS) - 1) >= 1);
        if all_done {
            Ok(value)
        } else {
            Err(orca_core::OrcaError::Timeout)
        }
    })?;
    println!("FINAL {value}");
    Ok(())
}

// Re-exported so the config-parsing helpers are unit-testable without
// spawning sockets.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_specs_parse() {
        assert!(matches!(
            parse_strategy("broadcast").unwrap(),
            RtsStrategy::Broadcast(_)
        ));
        assert!(matches!(
            parse_strategy("primary_update").unwrap(),
            RtsStrategy::PrimaryCopy { .. }
        ));
        assert!(matches!(
            parse_strategy("sharded:8").unwrap(),
            RtsStrategy::Sharded { .. }
        ));
        assert!(matches!(
            parse_strategy("sharded").unwrap(),
            RtsStrategy::Sharded { .. }
        ));
        assert!(parse_strategy("bogus").is_err());
        assert!(parse_strategy("sharded:x").is_err());
    }

    #[test]
    fn recovery_and_workload_specs_parse() {
        assert!(parse_recovery("fast").unwrap().enabled);
        assert!(!parse_recovery("disabled").unwrap().enabled);
        assert!(parse_recovery("sometimes").is_err());
        assert!(matches!(
            parse_workload("counter:100").unwrap(),
            Workload::Counter(100)
        ));
        assert!(matches!(
            parse_workload("idle:3").unwrap(),
            Workload::Idle(_)
        ));
        assert!(parse_workload("counter").is_err());
    }

    #[test]
    fn completion_fields_fit_an_i64() {
        let top = field_shift(MAX_COUNTER_NODES - 1) + FIELD_BITS;
        assert!(top <= 63, "field layout overflows i64: {top}");
    }
}
