//! Shared correctness checkers for the Orca runtime systems.
//!
//! One implementation of the sequential-consistency checker (and the
//! exactly-once invariants that go with it) serves three harnesses: the
//! cross-RTS conformance suite (`tests/conformance.rs`), the seed-sweep
//! determinism lane (`tests/seed_sweep.rs`), and the bounded model checker
//! (`orca-mc`). Keeping them on one checker means a checker bug — or a
//! checker improvement — cannot silently diverge between the lanes.
//!
//! The object under test is always a shared *counter*: processes issue
//! `Add(delta)` operations (the reply is the post-operation sum) and
//! `Value` reads (`delta == 0`). A counter makes replies maximally
//! discriminating while keeping the checker simple: an execution is
//! sequentially consistent iff some total order of all operations,
//! consistent with every process's issue order, explains every reply as a
//! running prefix sum.

#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};

/// One recorded invocation on the shared counter: the delta it added
/// (0 for a read) and the sum the runtime system replied with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistOp {
    /// The amount the operation added (0 for a pure read).
    pub delta: i64,
    /// The post-operation sum the runtime replied with.
    pub reply: i64,
}

impl HistOp {
    /// Convenience constructor.
    pub fn new(delta: i64, reply: i64) -> Self {
        HistOp { delta, reply }
    }
}

/// True if some total order consistent with every per-process history
/// explains every reply (sequential consistency of a counter register).
///
/// Depth-first search over process frontiers, memoized: the consumed
/// prefix determines the running sum, so a revisited frontier vector can
/// be cut off.
pub fn sequentially_consistent(histories: &[Vec<HistOp>]) -> bool {
    sequentially_consistent_with_phantoms(histories, &[])
}

/// Sequential consistency in the presence of *maybe-applied* operations.
///
/// A crashed or errored invocation may or may not have taken effect (the
/// reply was lost, not the operation). Each `phantom` delta may be
/// inserted into the total order at most once, anywhere, with no reply
/// constraint. Phantom placement is deliberately unconstrained by issue
/// order, which makes the check *sound* (a history this function rejects
/// is genuinely inconsistent) at the price of some completeness.
pub fn sequentially_consistent_with_phantoms(histories: &[Vec<HistOp>], phantoms: &[i64]) -> bool {
    assert!(
        phantoms.len() <= 63,
        "phantom set too large for the bitmask memo"
    );
    struct Search<'a> {
        histories: &'a [Vec<HistOp>],
        phantoms: &'a [i64],
        seen: HashSet<(Vec<usize>, u64)>,
    }
    impl Search<'_> {
        fn dfs(&mut self, frontier: &mut Vec<usize>, used: u64, sum: i64) -> bool {
            if frontier
                .iter()
                .zip(self.histories)
                .all(|(&done, history)| done == history.len())
            {
                // Leftover phantoms simply never took effect.
                return true;
            }
            if !self.seen.insert((frontier.clone(), used)) {
                return false;
            }
            for process in 0..self.histories.len() {
                let next = frontier[process];
                if next == self.histories[process].len() {
                    continue;
                }
                let op = self.histories[process][next];
                if op.reply == sum + op.delta {
                    frontier[process] += 1;
                    if self.dfs(frontier, used, sum + op.delta) {
                        return true;
                    }
                    frontier[process] -= 1;
                }
            }
            for (i, &delta) in self.phantoms.iter().enumerate() {
                if used & (1 << i) == 0 && self.dfs(frontier, used | (1 << i), sum + delta) {
                    return true;
                }
            }
            false
        }
    }
    let mut search = Search {
        histories,
        phantoms,
        seen: HashSet::new(),
    };
    let mut frontier = vec![0; histories.len()];
    search.dfs(&mut frontier, 0, 0)
}

/// Exactly-once / no-acked-write-lost check for counter workloads whose
/// deltas are *distinct powers of two*: adding such deltas never carries,
/// so the final counter value is exactly the bitwise OR of the deltas that
/// took effect. The final value must contain every acknowledged write
/// (nothing acked may be lost) and nothing outside the acked and
/// maybe-applied sets (nothing may be invented or double-applied — a
/// double-applied power of two carries into a bit outside both masks).
pub fn counter_value_explained(final_value: i64, acked_mask: i64, maybe_mask: i64) -> bool {
    final_value & acked_mask == acked_mask && final_value & !(acked_mask | maybe_mask) == 0
}

/// Exactly-once check for bag-like workloads (e.g. a job queue): every
/// acknowledged item must be observed exactly once, a maybe-applied item
/// (errored insert) at most once, and nothing else may appear. Items must
/// be distinct across `acked` and `maybe` for the multiplicity check to be
/// meaningful.
pub fn exactly_once_bag(acked: &[i64], maybe: &[i64], observed: &[i64]) -> Result<(), String> {
    let mut counts: HashMap<i64, usize> = HashMap::new();
    for &item in observed {
        *counts.entry(item).or_default() += 1;
    }
    for &item in acked {
        match counts.remove(&item) {
            Some(1) => {}
            Some(n) => return Err(format!("acked item {item} observed {n} times")),
            None => return Err(format!("acked item {item} lost")),
        }
    }
    for &item in maybe {
        match counts.remove(&item) {
            None | Some(1) => {}
            Some(n) => return Err(format!("maybe-applied item {item} observed {n} times")),
        }
    }
    if let Some((&item, &n)) = counts.iter().next() {
        return Err(format!("unexplained item {item} observed {n} times"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(delta: i64, reply: i64) -> HistOp {
        HistOp::new(delta, reply)
    }

    #[test]
    fn accepts_legal_serializations() {
        assert!(sequentially_consistent(&[vec![op(1, 1)], vec![op(2, 3)]]));
        assert!(sequentially_consistent(&[vec![op(1, 3)], vec![op(2, 2)]]));
        assert!(sequentially_consistent(&[vec![], vec![]]));
    }

    #[test]
    fn rejects_impossible_histories() {
        // Both processes claim to have run first.
        assert!(!sequentially_consistent(&[vec![op(1, 1)], vec![op(2, 2)]]));
        // A read observing a sum no prefix can produce.
        assert!(!sequentially_consistent(&[vec![op(1, 1), op(0, 99)]]));
        // A lost write: the second reply misses the first delta.
        assert!(!sequentially_consistent(&[vec![op(1, 1), op(2, 2)]]));
    }

    #[test]
    fn phantoms_explain_maybe_applied_writes() {
        // The read sees 5 = 1 + a phantom 4 whose ack was lost.
        assert!(!sequentially_consistent(&[vec![op(1, 1), op(0, 5)]]));
        assert!(sequentially_consistent_with_phantoms(
            &[vec![op(1, 1), op(0, 5)]],
            &[4]
        ));
        // A phantom is applied at most once: 9 would need 4 twice.
        assert!(!sequentially_consistent_with_phantoms(
            &[vec![op(1, 1), op(0, 9)]],
            &[4]
        ));
        // Unused phantoms are fine.
        assert!(sequentially_consistent_with_phantoms(
            &[vec![op(1, 1)]],
            &[4, 8]
        ));
    }

    #[test]
    fn bitmask_invariant() {
        assert!(counter_value_explained(0b101, 0b101, 0));
        assert!(counter_value_explained(0b111, 0b101, 0b010));
        assert!(counter_value_explained(0b101, 0b101, 0b010));
        // An acked write is missing.
        assert!(!counter_value_explained(0b001, 0b101, 0));
        // A bit nobody wrote (e.g. a double-applied delta carried).
        assert!(!counter_value_explained(0b1101, 0b101, 0));
    }

    #[test]
    fn bag_invariant() {
        assert!(exactly_once_bag(&[1, 2], &[3], &[2, 1, 3]).is_ok());
        assert!(exactly_once_bag(&[1, 2], &[3], &[2, 1]).is_ok());
        assert!(exactly_once_bag(&[1, 2], &[], &[1]).is_err());
        assert!(exactly_once_bag(&[1], &[], &[1, 1]).is_err());
        assert!(exactly_once_bag(&[1], &[3], &[1, 3, 3]).is_err());
        assert!(exactly_once_bag(&[1], &[], &[1, 9]).is_err());
    }
}
