//! PB vs BB under message loss: both broadcast protocols must deliver the
//! same gapless, totally-ordered sequence to every member, and neither may
//! lose or duplicate an application message no matter what the network
//! drops, duplicates or reorders underneath.

use std::collections::BTreeSet;
use std::time::Duration;

use orca_amoeba::network::{Network, NetworkConfig};
use orca_amoeba::FaultConfig;
use orca_group::{GroupConfig, GroupMember, MsgId};

const MEMBERS: usize = 4;
const PER_MEMBER: usize = 12;

/// Run a fixed broadcast workload under `config` on a lossy network and
/// return, per member, the delivered `(global_seq, id, payload)` sequence.
fn run(config: GroupConfig, fault: FaultConfig) -> Vec<Vec<(u64, MsgId, Vec<u8>)>> {
    let net = Network::new(NetworkConfig::with_fault(MEMBERS, fault));
    let members: Vec<GroupMember> = net
        .node_ids()
        .into_iter()
        .map(|node| GroupMember::start(net.handle(node), config.clone()))
        .collect();
    for (index, member) in members.iter().enumerate() {
        for k in 0..PER_MEMBER {
            member.broadcast(vec![index as u8, k as u8, 0xAB]).unwrap();
        }
    }
    let total = MEMBERS * PER_MEMBER;
    let orders: Vec<Vec<(u64, MsgId, Vec<u8>)>> = members
        .iter()
        .map(|member| {
            (0..total)
                .map(|_| {
                    let delivered = member
                        .recv_timeout(Duration::from_secs(30))
                        .expect("delivery within timeout despite loss");
                    (delivered.global_seq, delivered.id, delivered.payload)
                })
                .collect()
        })
        .collect();
    for member in members {
        member.shutdown();
    }
    orders
}

fn lossy(seed: u64) -> FaultConfig {
    FaultConfig {
        drop_prob: 0.15,
        duplicate_prob: 0.05,
        reorder_prob: 0.05,
        seed,
    }
}

fn fast_retransmit(mut config: GroupConfig) -> GroupConfig {
    config.retransmit_timeout = Duration::from_millis(40);
    config
}

/// All members saw the identical sequence; sequence numbers are gapless
/// 1..=total; no message was lost or delivered twice.
fn assert_protocol_invariants(orders: &[Vec<(u64, MsgId, Vec<u8>)>]) {
    for order in &orders[1..] {
        assert_eq!(order, &orders[0], "members disagree on the total order");
    }
    let seqs: Vec<u64> = orders[0].iter().map(|(seq, _, _)| *seq).collect();
    let expected: Vec<u64> = (1..=(MEMBERS * PER_MEMBER) as u64).collect();
    assert_eq!(seqs, expected, "sequence numbers must be gapless");
    let ids: BTreeSet<MsgId> = orders[0].iter().map(|(_, id, _)| *id).collect();
    assert_eq!(ids.len(), MEMBERS * PER_MEMBER, "duplicate or lost ids");
}

#[test]
fn pb_delivers_identical_total_order_under_loss() {
    let orders = run(fast_retransmit(GroupConfig::always_pb()), lossy(21));
    assert_protocol_invariants(&orders);
}

#[test]
fn bb_delivers_identical_total_order_under_loss() {
    let orders = run(fast_retransmit(GroupConfig::always_bb()), lossy(22));
    assert_protocol_invariants(&orders);
}

#[test]
fn pb_and_bb_deliver_the_same_message_set() {
    // The assignment of global sequence numbers is timing-dependent, so the
    // two protocols need not produce the same permutation — but they must
    // deliver exactly the same set of (origin, origin_seq, payload)
    // messages, each exactly once.
    let pb = run(fast_retransmit(GroupConfig::always_pb()), lossy(23));
    let bb = run(fast_retransmit(GroupConfig::always_bb()), lossy(23));
    let key = |orders: &[Vec<(u64, MsgId, Vec<u8>)>]| -> BTreeSet<(MsgId, Vec<u8>)> {
        orders[0]
            .iter()
            .map(|(_, id, payload)| (*id, payload.clone()))
            .collect()
    };
    assert_eq!(key(&pb), key(&bb));
}
