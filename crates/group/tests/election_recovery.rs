//! Sequencer election under crashes that happen *mid-traffic* — with and
//! without message loss — the failure scenarios the original tests dodged
//! by quiescing the group before killing the sequencer.

use std::collections::BTreeSet;
use std::time::{Duration, Instant};

use orca_amoeba::network::{Network, NetworkConfig};
use orca_amoeba::{FaultConfig, NodeId};
use orca_group::{Delivered, GroupConfig, GroupMember, MsgId};

fn start_members(net: &Network, config: &GroupConfig) -> Vec<GroupMember> {
    net.node_ids()
        .into_iter()
        .map(|n| GroupMember::start(net.handle(n), config.clone()))
        .collect()
}

fn fast_config() -> GroupConfig {
    GroupConfig {
        retransmit_timeout: Duration::from_millis(40),
        ..GroupConfig::default()
    }
}

/// Drain deliveries from `member` until `want` distinct ids from `origins`
/// have arrived (or the deadline passes), returning the full in-order
/// delivery sequence.
fn collect_until(
    member: &GroupMember,
    origins: &[NodeId],
    want: usize,
    deadline: Duration,
) -> Vec<Delivered> {
    let until = Instant::now() + deadline;
    let mut all = Vec::new();
    let mut wanted_seen = BTreeSet::new();
    while wanted_seen.len() < want {
        let remaining = until.saturating_duration_since(Instant::now());
        assert!(
            !remaining.is_zero(),
            "node{} delivered only {}/{want} expected messages",
            member.node().0,
            wanted_seen.len()
        );
        if let Ok(delivered) = member.recv_timeout(remaining.min(Duration::from_millis(200))) {
            if origins.contains(&delivered.id.origin) {
                wanted_seen.insert(delivered.id);
            }
            all.push(delivered);
        }
    }
    all
}

/// Crash the sequencer while broadcasts are in full flight: survivors must
/// elect a new sequencer, replay its era from their delivery histories, and
/// deliver every survivor-originated message exactly once, in one identical
/// total order.
#[test]
fn sequencer_crash_mid_traffic_loses_no_survivor_message() {
    let net = Network::reliable(3);
    let members = start_members(&net, &fast_config());
    const PER_MEMBER: usize = 30;
    // First half of the stream, no waiting — the sequencer dies with these
    // in various stages of sequencing and delivery.
    for k in 0..PER_MEMBER / 2 {
        for member in &members[1..] {
            member
                .broadcast(vec![member.node().0 as u8, k as u8])
                .unwrap();
        }
    }
    std::thread::sleep(Duration::from_millis(10));
    net.crash(NodeId(0));
    // Second half rides the re-election.
    for k in PER_MEMBER / 2..PER_MEMBER {
        for member in &members[1..] {
            member
                .broadcast(vec![member.node().0 as u8, k as u8])
                .unwrap();
        }
    }
    let origins = [NodeId(1), NodeId(2)];
    let want = PER_MEMBER * origins.len();
    let orders: Vec<Vec<MsgId>> = members[1..]
        .iter()
        .map(|member| {
            collect_until(member, &origins, want, Duration::from_secs(20))
                .into_iter()
                .map(|d| d.id)
                .collect()
        })
        .collect();
    // Exactly once: no id repeats on any member.
    for order in &orders {
        let unique: BTreeSet<&MsgId> = order.iter().collect();
        assert_eq!(unique.len(), order.len(), "a message was delivered twice");
    }
    // Identical total order across survivors (the dead sequencer's own
    // messages, if any were mid-flight, appear consistently or not at all).
    assert_eq!(orders[0], orders[1], "survivors diverged after election");
    for member in members {
        drop(member);
    }
}

/// A member crashes while the network is dropping, duplicating and
/// reordering packets: the election machinery must not be confused by the
/// combination — survivors still deliver one identical gapless order.
#[test]
fn election_survives_member_crash_under_message_loss() {
    let fault = FaultConfig {
        drop_prob: 0.10,
        duplicate_prob: 0.05,
        reorder_prob: 0.05,
        seed: 0xC4A5_11ED,
    };
    let net = Network::new(NetworkConfig::with_fault(4, fault));
    let members = start_members(&net, &fast_config());
    const PER_MEMBER: usize = 20;
    for k in 0..PER_MEMBER / 2 {
        for member in &members[..3] {
            member
                .broadcast(vec![member.node().0 as u8, k as u8])
                .unwrap();
        }
    }
    // Node 3 dies mid-stream; nobody depends on its traffic, but its crash
    // must not stall gap repair or confuse the (live) sequencer.
    net.crash(NodeId(3));
    for k in PER_MEMBER / 2..PER_MEMBER {
        for member in &members[..3] {
            member
                .broadcast(vec![member.node().0 as u8, k as u8])
                .unwrap();
        }
    }
    let origins = [NodeId(0), NodeId(1), NodeId(2)];
    let want = PER_MEMBER * origins.len();
    let orders: Vec<Vec<MsgId>> = members[..3]
        .iter()
        .map(|member| {
            collect_until(member, &origins, want, Duration::from_secs(30))
                .into_iter()
                .map(|d| d.id)
                .collect()
        })
        .collect();
    for order in &orders[1..] {
        assert_eq!(order, &orders[0], "survivors diverged under loss + crash");
    }
}

/// The nastier combination: the *sequencer* crashes while the network is
/// lossy. Detection here rides the retransmission-suspicion path as well as
/// the crash flag; survivors must converge on one order containing every
/// survivor-originated message.
#[test]
fn sequencer_crash_under_message_loss_converges() {
    let fault = FaultConfig {
        drop_prob: 0.08,
        duplicate_prob: 0.03,
        reorder_prob: 0.03,
        seed: 77,
    };
    let net = Network::new(NetworkConfig::with_fault(3, fault));
    let members = start_members(&net, &fast_config());
    const PER_MEMBER: usize = 15;
    for k in 0..PER_MEMBER / 2 {
        for member in &members[1..] {
            member
                .broadcast(vec![member.node().0 as u8, k as u8])
                .unwrap();
        }
    }
    std::thread::sleep(Duration::from_millis(15));
    net.crash(NodeId(0));
    for k in PER_MEMBER / 2..PER_MEMBER {
        for member in &members[1..] {
            member
                .broadcast(vec![member.node().0 as u8, k as u8])
                .unwrap();
        }
    }
    let origins = [NodeId(1), NodeId(2)];
    let want = PER_MEMBER * origins.len();
    let orders: Vec<Vec<MsgId>> = members[1..]
        .iter()
        .map(|member| {
            collect_until(member, &origins, want, Duration::from_secs(30))
                .into_iter()
                .map(|d| d.id)
                .collect()
        })
        .collect();
    for order in &orders {
        let unique: BTreeSet<&MsgId> = order.iter().collect();
        assert_eq!(unique.len(), order.len(), "a message was delivered twice");
    }
    assert_eq!(orders[0], orders[1], "survivors diverged");
}
