//! Per-member protocol statistics.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Live counters of one group member's protocol activity.
///
/// These are the numbers behind the PB-vs-BB table (§3.1): how many messages
/// went through each protocol, how many retransmissions were needed under
/// message loss, and how much work (duplicates, out-of-order buffering) the
/// member had to do.
#[derive(Debug, Default)]
pub struct GroupStats {
    /// Application messages sent using the PB protocol.
    pub pb_sent: AtomicU64,
    /// Application messages sent using the BB protocol.
    pub bb_sent: AtomicU64,
    /// Messages delivered to the application (in total order).
    pub delivered: AtomicU64,
    /// Messages this member sequenced while acting as sequencer.
    pub sequenced: AtomicU64,
    /// Retransmission requests this member sent (gaps detected).
    pub retransmit_requests: AtomicU64,
    /// Retransmissions this member served from its history buffer.
    pub retransmissions_served: AtomicU64,
    /// Sender-side retries because an own message was not sequenced in time.
    pub send_retries: AtomicU64,
    /// Duplicate protocol messages that were ignored.
    pub duplicates_ignored: AtomicU64,
    /// Messages buffered out of order before they could be delivered.
    pub buffered_out_of_order: AtomicU64,
}

impl GroupStats {
    /// Create a zeroed, shareable statistics block.
    pub fn new_shared() -> Arc<GroupStats> {
        Arc::new(GroupStats::default())
    }

    /// Increment a counter by one.
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Take a point-in-time snapshot.
    pub fn snapshot(&self) -> GroupStatsSnapshot {
        GroupStatsSnapshot {
            pb_sent: self.pb_sent.load(Ordering::Relaxed),
            bb_sent: self.bb_sent.load(Ordering::Relaxed),
            delivered: self.delivered.load(Ordering::Relaxed),
            sequenced: self.sequenced.load(Ordering::Relaxed),
            retransmit_requests: self.retransmit_requests.load(Ordering::Relaxed),
            retransmissions_served: self.retransmissions_served.load(Ordering::Relaxed),
            send_retries: self.send_retries.load(Ordering::Relaxed),
            duplicates_ignored: self.duplicates_ignored.load(Ordering::Relaxed),
            buffered_out_of_order: self.buffered_out_of_order.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of [`GroupStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupStatsSnapshot {
    /// Application messages sent using the PB protocol.
    pub pb_sent: u64,
    /// Application messages sent using the BB protocol.
    pub bb_sent: u64,
    /// Messages delivered to the application.
    pub delivered: u64,
    /// Messages sequenced while acting as sequencer.
    pub sequenced: u64,
    /// Retransmission requests sent.
    pub retransmit_requests: u64,
    /// Retransmissions served from the history buffer.
    pub retransmissions_served: u64,
    /// Sender-side retries.
    pub send_retries: u64,
    /// Duplicate protocol messages ignored.
    pub duplicates_ignored: u64,
    /// Messages buffered out of order.
    pub buffered_out_of_order: u64,
}

impl GroupStatsSnapshot {
    /// Total application messages this member sent (either protocol).
    pub fn sent(&self) -> u64 {
        self.pb_sent + self.bb_sent
    }

    /// Element-wise difference `self - earlier`, saturating at zero so a
    /// swapped snapshot pair (or one taken around a reset) yields zeros
    /// instead of wrapped near-`u64::MAX` values.
    pub fn since(&self, earlier: &GroupStatsSnapshot) -> GroupStatsSnapshot {
        GroupStatsSnapshot {
            pb_sent: self.pb_sent.saturating_sub(earlier.pb_sent),
            bb_sent: self.bb_sent.saturating_sub(earlier.bb_sent),
            delivered: self.delivered.saturating_sub(earlier.delivered),
            sequenced: self.sequenced.saturating_sub(earlier.sequenced),
            retransmit_requests: self
                .retransmit_requests
                .saturating_sub(earlier.retransmit_requests),
            retransmissions_served: self
                .retransmissions_served
                .saturating_sub(earlier.retransmissions_served),
            send_retries: self.send_retries.saturating_sub(earlier.send_retries),
            duplicates_ignored: self
                .duplicates_ignored
                .saturating_sub(earlier.duplicates_ignored),
            buffered_out_of_order: self
                .buffered_out_of_order
                .saturating_sub(earlier.buffered_out_of_order),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let stats = GroupStats::new_shared();
        GroupStats::bump(&stats.pb_sent);
        GroupStats::bump(&stats.pb_sent);
        GroupStats::bump(&stats.bb_sent);
        GroupStats::bump(&stats.delivered);
        let snap = stats.snapshot();
        assert_eq!(snap.pb_sent, 2);
        assert_eq!(snap.bb_sent, 1);
        assert_eq!(snap.sent(), 3);
        assert_eq!(snap.delivered, 1);
        assert_eq!(snap.retransmit_requests, 0);
    }

    #[test]
    fn since_saturates_instead_of_underflowing() {
        let stats = GroupStats::new_shared();
        GroupStats::bump(&stats.pb_sent);
        let before = stats.snapshot();
        GroupStats::bump(&stats.bb_sent);
        let after = stats.snapshot();
        let delta = after.since(&before);
        assert_eq!(delta.pb_sent, 0);
        assert_eq!(delta.bb_sent, 1);
        // Swapped order yields zeros, never wrapped values.
        assert_eq!(before.since(&after), GroupStatsSnapshot::default());
    }
}
