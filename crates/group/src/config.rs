//! Configuration of the group-communication layer.

use std::time::Duration;

/// Which broadcast protocol to use for outgoing messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodPolicy {
    /// Paper default: PB for messages that fit in one packet, BB for larger
    /// messages.
    Auto,
    /// Always use the PB (point-to-point then broadcast) protocol.
    AlwaysPb,
    /// Always use the BB (broadcast then accept) protocol.
    AlwaysBb,
}

/// Tunables of one group member.
#[derive(Debug, Clone)]
pub struct GroupConfig {
    /// Protocol selection policy.
    pub method: MethodPolicy,
    /// Largest payload (bytes) still sent with PB under [`MethodPolicy::Auto`].
    /// The paper switches protocols at one network packet.
    pub pb_max_payload: usize,
    /// How long a sender waits for its own message to come back sequenced
    /// before retransmitting the request.
    pub retransmit_timeout: Duration,
    /// How often the protocol thread wakes up to check timers even when no
    /// traffic arrives.
    pub tick: Duration,
    /// Maximum number of entries kept in the sequencer's history buffer.
    pub history_limit: usize,
    /// Consecutive failed retransmission rounds after which the sequencer is
    /// suspected to have crashed and an election is run.
    pub suspect_after: u32,
}

impl Default for GroupConfig {
    fn default() -> Self {
        GroupConfig {
            method: MethodPolicy::Auto,
            pb_max_payload: 1448, // one Ethernet packet minus protocol headers
            retransmit_timeout: Duration::from_millis(100),
            tick: Duration::from_millis(20),
            history_limit: 65_536,
            suspect_after: 20,
        }
    }
}

impl GroupConfig {
    /// Configuration that always uses PB (used by the protocol benchmarks).
    pub fn always_pb() -> Self {
        GroupConfig {
            method: MethodPolicy::AlwaysPb,
            ..GroupConfig::default()
        }
    }

    /// Configuration that always uses BB (used by the protocol benchmarks).
    pub fn always_bb() -> Self {
        GroupConfig {
            method: MethodPolicy::AlwaysBb,
            ..GroupConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_choices() {
        let config = GroupConfig::default();
        assert_eq!(config.method, MethodPolicy::Auto);
        assert!(config.pb_max_payload <= 1480);
        assert!(config.retransmit_timeout > config.tick);
    }

    #[test]
    fn forced_policies() {
        assert_eq!(GroupConfig::always_pb().method, MethodPolicy::AlwaysPb);
        assert_eq!(GroupConfig::always_bb().method, MethodPolicy::AlwaysBb);
    }
}
