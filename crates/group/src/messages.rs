//! Wire messages of the PB/BB broadcast protocols.

use orca_amoeba::NodeId;
use orca_wire::{Decoder, Encoder, Wire, WireError, WireResult};

/// Unique identifier of an application message, assigned by its origin.
///
/// The pair (origin node, per-origin sequence number) identifies a message
/// independently of the global sequence number the sequencer later assigns,
/// which is what makes retransmitted requests idempotent at the sequencer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MsgId {
    /// Node that created the message.
    pub origin: NodeId,
    /// Per-origin sequence number (starts at 1).
    pub origin_seq: u64,
}

impl Wire for MsgId {
    fn encode(&self, enc: &mut Encoder) {
        self.origin.encode(enc);
        self.origin_seq.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(MsgId {
            origin: Wire::decode(dec)?,
            origin_seq: Wire::decode(dec)?,
        })
    }
}

/// Which of the two protocols carried a message (recorded for statistics and
/// exposed to the benchmarks that reproduce §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BroadcastMethod {
    /// Point-to-point to the sequencer, then broadcast by the sequencer.
    Pb,
    /// Broadcast by the origin, then a short Accept broadcast by the
    /// sequencer.
    Bb,
}

impl Wire for BroadcastMethod {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(match self {
            BroadcastMethod::Pb => 0,
            BroadcastMethod::Bb => 1,
        });
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        match dec.get_u8()? {
            0 => Ok(BroadcastMethod::Pb),
            1 => Ok(BroadcastMethod::Bb),
            tag => Err(WireError::InvalidTag {
                type_name: "BroadcastMethod",
                tag: u64::from(tag),
            }),
        }
    }
}

/// Protocol messages exchanged on the group port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupMsg {
    /// PB, step 1: origin → sequencer (point-to-point). Carries the full
    /// payload; the sequencer will assign a global sequence number and
    /// broadcast it as [`GroupMsg::SeqData`].
    RequestForBroadcast {
        /// Message identity assigned by the origin.
        id: MsgId,
        /// Application payload.
        payload: Vec<u8>,
    },
    /// PB, step 2 (and retransmission payload): sequencer → all. Carries the
    /// global sequence number and the full payload.
    SeqData {
        /// Global total-order position (starts at 1).
        global_seq: u64,
        /// Message identity assigned by the origin.
        id: MsgId,
        /// Application payload.
        payload: Vec<u8>,
    },
    /// BB, step 1: origin → all (broadcast). Carries the full payload but no
    /// global sequence number yet; the message is only *official* once the
    /// matching [`GroupMsg::Accept`] arrives.
    BbData {
        /// Message identity assigned by the origin.
        id: MsgId,
        /// Application payload.
        payload: Vec<u8>,
    },
    /// BB, step 2: sequencer → all (broadcast). Very short: it binds an
    /// already-broadcast [`GroupMsg::BbData`] to a global sequence number.
    Accept {
        /// Global total-order position.
        global_seq: u64,
        /// Identity of the BbData message being accepted.
        id: MsgId,
    },
    /// Member → sequencer: "I am missing global sequence numbers
    /// `from..=to`, please retransmit them from your history buffer."
    RetransmitRequest {
        /// First missing sequence number.
        from: u64,
        /// Last missing sequence number.
        to: u64,
    },
    /// Announcement by a newly elected sequencer: global sequence numbers
    /// resume from `next_seq`.
    NewSequencer {
        /// Node that took over as sequencer.
        sequencer: NodeId,
        /// Next sequence number the new sequencer will assign.
        next_seq: u64,
    },
    /// Periodic status broadcast by the sequencer carrying the highest
    /// sequence number assigned so far. Members that have not yet delivered
    /// up to that number know they missed a broadcast and can ask for a
    /// retransmission even when no further traffic arrives.
    Status {
        /// Highest global sequence number assigned so far.
        highest_seq: u64,
    },
    /// Sequencer → member: the global sequence numbers `from..=to` were
    /// abandoned in a sequencer change-over (the failed sequencer announced
    /// them but no survivor ever received the data); deliver nothing for
    /// them and advance past. Sent in response to a retransmission request
    /// for numbers absent from every surviving history.
    Skip {
        /// First abandoned sequence number.
        from: u64,
        /// Last abandoned sequence number.
        to: u64,
    },
}

impl GroupMsg {
    const TAG_REQUEST: u8 = 0;
    const TAG_SEQ_DATA: u8 = 1;
    const TAG_BB_DATA: u8 = 2;
    const TAG_ACCEPT: u8 = 3;
    const TAG_RETRANSMIT_REQ: u8 = 4;
    const TAG_NEW_SEQUENCER: u8 = 5;
    const TAG_STATUS: u8 = 6;
    const TAG_SKIP: u8 = 7;
}

impl Wire for GroupMsg {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            GroupMsg::RequestForBroadcast { id, payload } => {
                enc.put_u8(Self::TAG_REQUEST);
                id.encode(enc);
                enc.put_bytes(payload);
            }
            GroupMsg::SeqData {
                global_seq,
                id,
                payload,
            } => {
                enc.put_u8(Self::TAG_SEQ_DATA);
                global_seq.encode(enc);
                id.encode(enc);
                enc.put_bytes(payload);
            }
            GroupMsg::BbData { id, payload } => {
                enc.put_u8(Self::TAG_BB_DATA);
                id.encode(enc);
                enc.put_bytes(payload);
            }
            GroupMsg::Accept { global_seq, id } => {
                enc.put_u8(Self::TAG_ACCEPT);
                global_seq.encode(enc);
                id.encode(enc);
            }
            GroupMsg::RetransmitRequest { from, to } => {
                enc.put_u8(Self::TAG_RETRANSMIT_REQ);
                from.encode(enc);
                to.encode(enc);
            }
            GroupMsg::NewSequencer {
                sequencer,
                next_seq,
            } => {
                enc.put_u8(Self::TAG_NEW_SEQUENCER);
                sequencer.encode(enc);
                next_seq.encode(enc);
            }
            GroupMsg::Status { highest_seq } => {
                enc.put_u8(Self::TAG_STATUS);
                highest_seq.encode(enc);
            }
            GroupMsg::Skip { from, to } => {
                enc.put_u8(Self::TAG_SKIP);
                from.encode(enc);
                to.encode(enc);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        match dec.get_u8()? {
            Self::TAG_REQUEST => Ok(GroupMsg::RequestForBroadcast {
                id: Wire::decode(dec)?,
                payload: dec.get_bytes()?,
            }),
            Self::TAG_SEQ_DATA => Ok(GroupMsg::SeqData {
                global_seq: Wire::decode(dec)?,
                id: Wire::decode(dec)?,
                payload: dec.get_bytes()?,
            }),
            Self::TAG_BB_DATA => Ok(GroupMsg::BbData {
                id: Wire::decode(dec)?,
                payload: dec.get_bytes()?,
            }),
            Self::TAG_ACCEPT => Ok(GroupMsg::Accept {
                global_seq: Wire::decode(dec)?,
                id: Wire::decode(dec)?,
            }),
            Self::TAG_RETRANSMIT_REQ => Ok(GroupMsg::RetransmitRequest {
                from: Wire::decode(dec)?,
                to: Wire::decode(dec)?,
            }),
            Self::TAG_NEW_SEQUENCER => Ok(GroupMsg::NewSequencer {
                sequencer: Wire::decode(dec)?,
                next_seq: Wire::decode(dec)?,
            }),
            Self::TAG_STATUS => Ok(GroupMsg::Status {
                highest_seq: Wire::decode(dec)?,
            }),
            Self::TAG_SKIP => Ok(GroupMsg::Skip {
                from: Wire::decode(dec)?,
                to: Wire::decode(dec)?,
            }),
            tag => Err(WireError::InvalidTag {
                type_name: "GroupMsg",
                tag: u64::from(tag),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_id() -> MsgId {
        MsgId {
            origin: NodeId(3),
            origin_seq: 17,
        }
    }

    #[test]
    fn all_variants_round_trip() {
        let messages = vec![
            GroupMsg::RequestForBroadcast {
                id: sample_id(),
                payload: vec![1, 2, 3],
            },
            GroupMsg::SeqData {
                global_seq: 42,
                id: sample_id(),
                payload: vec![9; 100],
            },
            GroupMsg::BbData {
                id: sample_id(),
                payload: vec![],
            },
            GroupMsg::Accept {
                global_seq: 7,
                id: sample_id(),
            },
            GroupMsg::RetransmitRequest { from: 5, to: 9 },
            GroupMsg::NewSequencer {
                sequencer: NodeId(2),
                next_seq: 100,
            },
            GroupMsg::Status { highest_seq: 12 },
            GroupMsg::Skip { from: 13, to: 15 },
        ];
        for msg in messages {
            assert_eq!(GroupMsg::from_bytes(&msg.to_bytes()).unwrap(), msg);
        }
    }

    #[test]
    fn accept_is_much_smaller_than_data() {
        let payload = vec![0u8; 4000];
        let data = GroupMsg::BbData {
            id: sample_id(),
            payload: payload.clone(),
        };
        let accept = GroupMsg::Accept {
            global_seq: 1,
            id: sample_id(),
        };
        assert!(accept.encoded_len() < 20);
        assert!(data.encoded_len() > payload.len());
    }

    #[test]
    fn method_round_trip() {
        for m in [BroadcastMethod::Pb, BroadcastMethod::Bb] {
            assert_eq!(BroadcastMethod::from_bytes(&m.to_bytes()).unwrap(), m);
        }
    }
}
