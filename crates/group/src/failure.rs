//! Heartbeat-based failure detection and epoch'd membership views.
//!
//! Every node runs one [`FailureDetector`]: a thread that periodically
//! broadcasts a heartbeat on the membership port and declares any node that
//! stays silent for [`FailureConfig::suspect_after`] heartbeat intervals
//! dead. The failure model is **fail-stop**: a node declared dead never
//! rejoins the view (the simulated kernel may un-crash its network for a
//! later experiment, but the membership machinery treats the declaration as
//! permanent — re-homed objects stay re-homed).
//!
//! Because every survivor observes the same silences, and the view
//! transition function is deterministic (remove the silent node, bump the
//! epoch), survivors converge on the same [`ViewSnapshot`] without running
//! an agreement protocol; the election rule of
//! [`orca_amoeba::election`] (lowest live node id) then yields the same
//! coordinator everywhere. Heartbeats ride the *unreliable* broadcast
//! primitive, so they are subject to fault injection like all group
//! traffic; [`FailureConfig::suspect_after`] trades detection latency
//! against false suspicions under message loss.
//!
//! Layers that need to *act* on a failure (the runtime systems' recovery
//! coordinators) register callbacks with [`FailureDetector::on_failure`];
//! callbacks run on the detector thread, so they must hand real work off to
//! their own threads.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use orca_amoeba::election::Membership;
use orca_amoeba::network::NetworkHandle;
use orca_amoeba::node::{ports, NodeId};
use orca_wire::{MembershipView, RecoveryMsg, Wire};
use parking_lot::Mutex;

/// Tunables of the heartbeat failure detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureConfig {
    /// Interval between heartbeat broadcasts.
    pub heartbeat_every: Duration,
    /// Number of heartbeat intervals a node may stay silent before it is
    /// declared dead. Higher values tolerate more message loss at the cost
    /// of detection latency.
    pub suspect_after: u32,
}

impl Default for FailureConfig {
    fn default() -> Self {
        FailureConfig {
            heartbeat_every: Duration::from_millis(50),
            suspect_after: 6,
        }
    }
}

impl FailureConfig {
    /// A fast-detecting configuration for tests (short intervals, few
    /// tolerated silences).
    pub fn fast() -> Self {
        FailureConfig {
            heartbeat_every: Duration::from_millis(20),
            suspect_after: 4,
        }
    }

    /// The silence after which a node is declared dead.
    pub fn silence_limit(&self) -> Duration {
        self.heartbeat_every * self.suspect_after.max(1)
    }
}

/// A point-in-time membership view: which nodes are alive, and how many
/// failures have been observed so far.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewSnapshot {
    /// Number of failures declared so far (0 = initial full view).
    pub epoch: u64,
    /// Nodes believed alive, in ascending id order.
    pub alive: Vec<NodeId>,
}

impl ViewSnapshot {
    /// The coordinator of this view: the lowest live node.
    pub fn coordinator(&self) -> Option<NodeId> {
        self.alive.first().copied()
    }

    /// True if `node` is alive in this view.
    pub fn contains(&self, node: NodeId) -> bool {
        self.alive.binary_search(&node).is_ok()
    }

    /// The wire representation of this view.
    pub fn to_wire(&self) -> MembershipView {
        MembershipView {
            epoch: self.epoch,
            alive: self.alive.iter().map(|n| n.0).collect(),
        }
    }
}

/// Callback invoked when a node is declared dead: `(dead node, view after
/// the declaration)`.
pub type FailureCallback = Box<dyn Fn(NodeId, ViewSnapshot) + Send + Sync>;

struct DetectorState {
    /// Last time a heartbeat (or the initial grace stamp) was seen, per
    /// node. `None` once the node has been declared dead — fail-stop means
    /// it can never be resurrected by a late heartbeat.
    last_heard: Vec<Option<Instant>>,
    epoch: u64,
}

struct Inner {
    node: NodeId,
    config: FailureConfig,
    membership: Membership,
    state: Mutex<DetectorState>,
    callbacks: Mutex<Vec<FailureCallback>>,
    stopped: AtomicBool,
}

/// A running heartbeat failure detector on one node.
///
/// Cheap to clone (all clones share the same detector); shut down with
/// [`FailureDetector::shutdown`] or by dropping the last clone.
pub struct FailureDetector {
    inner: Arc<Inner>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for FailureDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FailureDetector")
            .field("node", &self.inner.node)
            .finish()
    }
}

impl FailureDetector {
    /// Start a failure detector on the node owning `handle`.
    pub fn start(handle: NetworkHandle, config: FailureConfig) -> Arc<FailureDetector> {
        let node = handle.node();
        let members = handle.node_ids();
        let now = Instant::now();
        let inner = Arc::new(Inner {
            node,
            config,
            membership: Membership::new(&members),
            state: Mutex::new(DetectorState {
                last_heard: vec![Some(now); members.len()],
                epoch: 0,
            }),
            callbacks: Mutex::new(Vec::new()),
            stopped: AtomicBool::new(false),
        });
        let thread_inner = Arc::clone(&inner);
        let thread = std::thread::Builder::new()
            .name(format!("failure-detector-{node}"))
            .spawn(move || detector_loop(thread_inner, handle))
            .expect("spawn failure detector thread");
        Arc::new(FailureDetector {
            inner,
            thread: Mutex::new(Some(thread)),
        })
    }

    /// The node this detector runs on.
    pub fn node(&self) -> NodeId {
        self.inner.node
    }

    /// The configuration the detector was started with.
    pub fn config(&self) -> FailureConfig {
        self.inner.config
    }

    /// Current membership view.
    pub fn view(&self) -> ViewSnapshot {
        ViewSnapshot {
            epoch: self.inner.state.lock().epoch,
            alive: self.inner.membership.alive(),
        }
    }

    /// Current membership epoch alone, without snapshotting the alive set.
    ///
    /// Lease validation checks the epoch on every leased local read, so this
    /// avoids cloning the membership vector on a path that must cost no more
    /// than the local apply itself.
    pub fn epoch(&self) -> u64 {
        self.inner.state.lock().epoch
    }

    /// True if `node` is currently believed alive.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.inner.membership.is_alive(node)
    }

    /// Register a callback invoked (on the detector thread) whenever a node
    /// is declared dead.
    pub fn on_failure(&self, callback: FailureCallback) {
        self.inner.callbacks.lock().push(callback);
    }

    /// Declare `node` dead immediately, without waiting for the silence
    /// limit (used when another layer has independent evidence of the
    /// crash, e.g. a reliable-transport RPC that went unanswered far beyond
    /// its deadline). Idempotent; fires callbacks like a detected failure.
    pub fn declare_dead(&self, node: NodeId) {
        declare_dead(&self.inner, node);
    }

    /// Stop the detector thread. Idempotent.
    pub fn shutdown(&self) {
        self.inner.stopped.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.lock().take() {
            let _ = thread.join();
        }
    }
}

impl Drop for FailureDetector {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn detector_loop(inner: Arc<Inner>, handle: NetworkHandle) {
    let rx = handle.bind(ports::MEMBERSHIP);
    let mut last_beat = Instant::now() - inner.config.heartbeat_every;
    while !inner.stopped.load(Ordering::SeqCst) {
        // Send our own heartbeat when due.
        if last_beat.elapsed() >= inner.config.heartbeat_every {
            last_beat = Instant::now();
            let beat = RecoveryMsg::Heartbeat {
                node: inner.node.0,
                epoch: inner.state.lock().epoch,
            };
            let _ = handle.broadcast(ports::MEMBERSHIP, beat.to_bytes());
        }
        // Drain incoming heartbeats, waiting at most a fraction of the
        // interval so shutdown and sending stay prompt.
        let wait = inner.config.heartbeat_every / 4;
        if let Ok(msg) = rx.recv_timeout(wait.max(Duration::from_millis(1))) {
            if let Ok(RecoveryMsg::Heartbeat { node, .. }) = RecoveryMsg::from_bytes(&msg.payload) {
                let mut state = inner.state.lock();
                if let Some(slot) = state.last_heard.get_mut(usize::from(node)) {
                    if slot.is_some() {
                        *slot = Some(Instant::now());
                    }
                    // A heartbeat from a node already declared dead is
                    // ignored: fail-stop views never resurrect members.
                }
            }
        }
        // Declare the silent dead.
        let silence_limit = inner.config.silence_limit();
        let silent: Vec<NodeId> = {
            let state = inner.state.lock();
            state
                .last_heard
                .iter()
                .enumerate()
                .filter_map(|(index, heard)| match heard {
                    Some(at)
                        if at.elapsed() > silence_limit && NodeId::from(index) != inner.node =>
                    {
                        Some(NodeId::from(index))
                    }
                    _ => None,
                })
                .collect()
        };
        for node in silent {
            declare_dead(&inner, node);
        }
    }
}

/// Mark `node` dead (once), bump the epoch, and fire callbacks.
fn declare_dead(inner: &Arc<Inner>, node: NodeId) {
    if node == inner.node {
        return;
    }
    let view = {
        let mut state = inner.state.lock();
        let Some(slot) = state.last_heard.get_mut(node.index()) else {
            return;
        };
        if slot.is_none() {
            return; // already declared
        }
        *slot = None;
        inner.membership.mark_failed(node);
        state.epoch += 1;
        ViewSnapshot {
            epoch: state.epoch,
            alive: inner.membership.alive(),
        }
    };
    let callbacks = inner.callbacks.lock();
    for callback in callbacks.iter() {
        callback(node, view.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orca_amoeba::network::{Network, NetworkConfig};
    use orca_amoeba::FaultConfig;

    fn start_all(net: &Network, config: FailureConfig) -> Vec<Arc<FailureDetector>> {
        net.node_ids()
            .into_iter()
            .map(|n| FailureDetector::start(net.handle(n), config))
            .collect()
    }

    fn wait_for_epoch(detector: &FailureDetector, epoch: u64, deadline: Duration) -> ViewSnapshot {
        let until = Instant::now() + deadline;
        loop {
            let view = detector.view();
            if view.epoch >= epoch {
                return view;
            }
            assert!(Instant::now() < until, "epoch {epoch} never reached");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn silent_node_is_declared_dead_on_every_survivor() {
        let net = Network::reliable(3);
        let detectors = start_all(&net, FailureConfig::fast());
        std::thread::sleep(Duration::from_millis(50));
        for detector in &detectors {
            assert_eq!(detector.view().alive.len(), 3);
            assert_eq!(detector.view().epoch, 0);
        }
        net.crash(NodeId(2));
        for detector in &detectors[..2] {
            let view = wait_for_epoch(detector, 1, Duration::from_secs(5));
            assert_eq!(view.alive, vec![NodeId(0), NodeId(1)]);
            assert_eq!(view.coordinator(), Some(NodeId(0)));
            assert!(!detector.is_alive(NodeId(2)));
        }
        for detector in &detectors {
            detector.shutdown();
        }
    }

    #[test]
    fn callbacks_fire_once_per_failure() {
        let net = Network::reliable(2);
        let detectors = start_all(&net, FailureConfig::fast());
        let fired = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&fired);
        detectors[0].on_failure(Box::new(move |node, view| {
            sink.lock().push((node, view.epoch));
        }));
        net.crash(NodeId(1));
        wait_for_epoch(&detectors[0], 1, Duration::from_secs(5));
        // Give the detector time to (incorrectly) double-fire.
        std::thread::sleep(detectors[0].config().silence_limit() * 2);
        assert_eq!(fired.lock().as_slice(), &[(NodeId(1), 1)]);
        for detector in &detectors {
            detector.shutdown();
        }
    }

    #[test]
    fn detection_survives_message_loss() {
        // Heartbeats are droppable; a loss rate well under the silence
        // limit must not cause false suspicions, and a real crash must
        // still be detected.
        let fault = FaultConfig {
            drop_prob: 0.2,
            duplicate_prob: 0.05,
            reorder_prob: 0.05,
            seed: 42,
        };
        let net = Network::new(NetworkConfig::with_fault(3, fault));
        let config = FailureConfig {
            heartbeat_every: Duration::from_millis(10),
            suspect_after: 12,
        };
        let detectors = start_all(&net, config);
        std::thread::sleep(config.silence_limit() * 2);
        for detector in &detectors {
            assert_eq!(detector.view().epoch, 0, "false suspicion under loss");
        }
        net.crash(NodeId(1));
        for detector in [&detectors[0], &detectors[2]] {
            let view = wait_for_epoch(detector, 1, Duration::from_secs(5));
            assert!(!view.contains(NodeId(1)));
        }
        for detector in &detectors {
            detector.shutdown();
        }
    }

    #[test]
    fn declare_dead_is_immediate_and_idempotent() {
        let net = Network::reliable(2);
        let detectors = start_all(&net, FailureConfig::default());
        detectors[0].declare_dead(NodeId(1));
        detectors[0].declare_dead(NodeId(1));
        let view = detectors[0].view();
        assert_eq!(view.epoch, 1);
        assert_eq!(view.alive, vec![NodeId(0)]);
        // Late heartbeats from the declared-dead node do not resurrect it.
        std::thread::sleep(detectors[0].config().heartbeat_every * 3);
        assert!(!detectors[0].is_alive(NodeId(1)));
        for detector in &detectors {
            detector.shutdown();
        }
    }
}
