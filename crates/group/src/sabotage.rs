//! Deliberate protocol mutations for model-checker self-tests (see
//! `orca_rts::sabotage` for the rationale). Process-global, off by
//! default, zero effect on production paths while off.

use std::sync::atomic::{AtomicBool, Ordering};

/// A newly elected sequencer skips era replay entirely: it resumes
/// numbering from its *own* delivery point instead of the highest number
/// known to exist, seeds no dedup state from its history, and opens no
/// resync window for the failed sequencer's unseen assignments, and it
/// ignores old-era assignments that survivors push at it on handover
/// (otherwise that replay silently repairs the skipped recovery and the
/// mutation is unobservable). Sequence numbers assigned by the dead
/// sequencer can then be silently reused and retransmitted requests
/// re-sequenced — members diverge or apply an operation twice.
pub static SKIP_ERA_REPLAY: AtomicBool = AtomicBool::new(false);

pub(crate) fn skip_era_replay() -> bool {
    SKIP_ERA_REPLAY.load(Ordering::SeqCst)
}
