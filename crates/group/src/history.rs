//! The sequencer's history buffer.
//!
//! Every message the sequencer assigns a global sequence number to is stored
//! here so that members which missed the broadcast can ask for a
//! retransmission. The buffer is bounded; when it overflows, the oldest
//! entries are discarded (in the real system the sequencer additionally
//! tracks acknowledgements so it never discards an entry some member still
//! needs — the simulation relies on the generous default limit instead, and
//! reports how many entries were ever discarded).

use std::collections::BTreeMap;

use crate::messages::MsgId;

/// One sequenced message kept for retransmission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryEntry {
    /// Identity assigned by the origin.
    pub id: MsgId,
    /// Application payload.
    pub payload: Vec<u8>,
}

/// Bounded buffer of sequenced messages, indexed by global sequence number.
#[derive(Debug)]
pub struct HistoryBuffer {
    entries: BTreeMap<u64, HistoryEntry>,
    limit: usize,
    discarded: u64,
}

impl HistoryBuffer {
    /// Create a buffer keeping at most `limit` entries.
    pub fn new(limit: usize) -> Self {
        assert!(limit > 0, "history limit must be positive");
        HistoryBuffer {
            entries: BTreeMap::new(),
            limit,
            discarded: 0,
        }
    }

    /// Store a sequenced message.
    pub fn insert(&mut self, global_seq: u64, entry: HistoryEntry) {
        self.entries.insert(global_seq, entry);
        while self.entries.len() > self.limit {
            if let Some((&oldest, _)) = self.entries.iter().next() {
                self.entries.remove(&oldest);
                self.discarded += 1;
            }
        }
    }

    /// Look up a sequenced message for retransmission.
    pub fn get(&self, global_seq: u64) -> Option<&HistoryEntry> {
        self.entries.get(&global_seq)
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the buffer holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of entries that have been discarded because of the size limit.
    pub fn discarded(&self) -> u64 {
        self.discarded
    }

    /// Highest sequence number stored so far (0 if none).
    pub fn highest_seq(&self) -> u64 {
        self.entries.keys().next_back().copied().unwrap_or(0)
    }

    /// Lowest sequence number still stored (0 if none). Numbers below this
    /// may have been evicted by the size bound, so their absence proves
    /// nothing about whether they ever existed.
    pub fn lowest_seq(&self) -> u64 {
        self.entries.keys().next().copied().unwrap_or(0)
    }

    /// Entries in the inclusive range `from..=to` that are still available.
    pub fn range(&self, from: u64, to: u64) -> Vec<(u64, HistoryEntry)> {
        self.entries
            .range(from..=to)
            .map(|(&seq, entry)| (seq, entry.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orca_amoeba::NodeId;

    fn entry(n: u64) -> HistoryEntry {
        HistoryEntry {
            id: MsgId {
                origin: NodeId(0),
                origin_seq: n,
            },
            payload: vec![n as u8],
        }
    }

    #[test]
    fn insert_get_and_range() {
        let mut buffer = HistoryBuffer::new(100);
        for seq in 1..=10 {
            buffer.insert(seq, entry(seq));
        }
        assert_eq!(buffer.len(), 10);
        assert_eq!(buffer.get(5).unwrap().payload, vec![5]);
        assert!(buffer.get(11).is_none());
        assert_eq!(buffer.highest_seq(), 10);
        let range = buffer.range(3, 5);
        assert_eq!(range.len(), 3);
        assert_eq!(range[0].0, 3);
    }

    #[test]
    fn overflow_discards_oldest() {
        let mut buffer = HistoryBuffer::new(3);
        for seq in 1..=5 {
            buffer.insert(seq, entry(seq));
        }
        assert_eq!(buffer.len(), 3);
        assert_eq!(buffer.discarded(), 2);
        assert!(buffer.get(1).is_none());
        assert!(buffer.get(2).is_none());
        assert!(buffer.get(3).is_some());
        assert!(!buffer.is_empty());
    }
}
