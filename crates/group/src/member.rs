//! The group member: protocol engine for totally-ordered reliable broadcast.
//!
//! Every node of an application runs one [`GroupMember`]. A member can
//! [`GroupMember::broadcast`] application payloads and receives *all* group
//! messages (its own included) through [`GroupMember::recv`] in a single
//! total order that is identical at every member.
//!
//! One member at a time acts as the *sequencer* (initially the
//! lowest-numbered node). The sequencer assigns consecutive global sequence
//! numbers, keeps a history buffer for retransmissions and — depending on
//! message size — either rebroadcasts the full message (PB) or broadcasts a
//! short Accept for a message the origin already broadcast (BB).
//!
//! ## Failure handling
//!
//! * Lost broadcasts are detected as gaps in the sequence numbers and
//!   repaired with retransmission requests served from the history buffer.
//! * Lost requests (the origin's message never gets sequenced) are detected
//!   by the origin's retransmission timer and simply sent again; the
//!   sequencer deduplicates by message id.
//! * A crashed sequencer is detected either through the simulated kernel's
//!   crash flag or after repeated fruitless retransmissions; the remaining
//!   members elect the lowest-numbered live node, which resumes sequencing
//!   after the highest number it has itself observed. (The full Amoeba
//!   recovery protocol additionally reconciles the outgoing history of the
//!   failed sequencer; this simulation documents that simplification in
//!   DESIGN.md and its tests quiesce traffic before killing the sequencer.)

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use orca_amoeba::election::Membership;
use orca_amoeba::network::NetworkHandle;
use orca_amoeba::node::{ports, NodeId};
use orca_amoeba::NetMessage;
use orca_wire::Wire;

use crate::config::{GroupConfig, MethodPolicy};
use crate::history::{HistoryBuffer, HistoryEntry};
use crate::messages::{BroadcastMethod, GroupMsg, MsgId};
use crate::stats::{GroupStats, GroupStatsSnapshot};

/// A message delivered in total order to the application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivered {
    /// Position in the global total order (1-based, no gaps).
    pub global_seq: u64,
    /// Identity assigned by the message's origin.
    pub id: MsgId,
    /// Application payload.
    pub payload: Vec<u8>,
}

/// Errors surfaced by the group layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupError {
    /// The member has been shut down.
    Terminated,
    /// A blocking receive timed out.
    Timeout,
}

impl std::fmt::Display for GroupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GroupError::Terminated => write!(f, "group member terminated"),
            GroupError::Timeout => write!(f, "receive timed out"),
        }
    }
}

impl std::error::Error for GroupError {}

enum Command {
    Broadcast { payload: Vec<u8> },
    Shutdown,
}

/// Cheap cloneable handle that can queue broadcasts on a [`GroupMember`]
/// from other threads (e.g. the runtime system's invocation path) while the
/// member itself is owned by its manager thread.
#[derive(Clone)]
pub struct GroupSender {
    cmd_tx: Sender<Command>,
}

impl std::fmt::Debug for GroupSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupSender").finish()
    }
}

impl GroupSender {
    /// Queue an application payload for totally-ordered broadcast.
    pub fn broadcast(&self, payload: Vec<u8>) -> Result<(), GroupError> {
        self.cmd_tx
            .send(Command::Broadcast { payload })
            .map_err(|_| GroupError::Terminated)
    }
}

/// Handle to a running group member (protocol thread + delivery queue).
pub struct GroupMember {
    node: NodeId,
    cmd_tx: Sender<Command>,
    delivery_rx: Receiver<Delivered>,
    stats: Arc<GroupStats>,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for GroupMember {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupMember")
            .field("node", &self.node)
            .finish()
    }
}

impl GroupMember {
    /// Start a group member on the node owning `handle`.
    ///
    /// All nodes of the network are assumed to be members of the (single)
    /// group, which matches the paper's model of one parallel application
    /// owning the processor pool.
    pub fn start(handle: NetworkHandle, config: GroupConfig) -> GroupMember {
        let node = handle.node();
        let stats = GroupStats::new_shared();
        let (cmd_tx, cmd_rx) = unbounded();
        let (delivery_tx, delivery_rx) = unbounded();
        let state_stats = Arc::clone(&stats);
        let thread = std::thread::Builder::new()
            .name(format!("group-{node}"))
            .spawn(move || {
                let mut state = ProtocolState::new(handle, config, state_stats, delivery_tx);
                state.run(cmd_rx);
            })
            .expect("spawn group protocol thread");
        GroupMember {
            node,
            cmd_tx,
            delivery_rx,
            stats,
            thread: Some(thread),
        }
    }

    /// Node this member runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// A cloneable handle that can queue broadcasts from other threads.
    pub fn sender(&self) -> GroupSender {
        GroupSender {
            cmd_tx: self.cmd_tx.clone(),
        }
    }

    /// Queue an application payload for totally-ordered broadcast.
    ///
    /// The call returns immediately; the message is delivered (also to the
    /// caller's own member) once the sequencer has ordered it.
    pub fn broadcast(&self, payload: Vec<u8>) -> Result<(), GroupError> {
        self.cmd_tx
            .send(Command::Broadcast { payload })
            .map_err(|_| GroupError::Terminated)
    }

    /// Blocking receive of the next message in total order.
    pub fn recv(&self) -> Result<Delivered, GroupError> {
        self.delivery_rx.recv().map_err(|_| GroupError::Terminated)
    }

    /// Blocking receive with a timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Delivered, GroupError> {
        self.delivery_rx
            .recv_timeout(timeout)
            .map_err(|err| match err {
                crossbeam::channel::RecvTimeoutError::Timeout => GroupError::Timeout,
                crossbeam::channel::RecvTimeoutError::Disconnected => GroupError::Terminated,
            })
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Delivered> {
        self.delivery_rx.try_recv().ok()
    }

    /// Borrow the delivery channel (for select loops in higher layers).
    pub fn deliveries(&self) -> &Receiver<Delivered> {
        &self.delivery_rx
    }

    /// Snapshot of this member's protocol statistics.
    pub fn stats(&self) -> GroupStatsSnapshot {
        self.stats.snapshot()
    }

    /// Stop the protocol thread and wait for it to exit.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let _ = self.cmd_tx.send(Command::Shutdown);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for GroupMember {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

struct PendingSend {
    payload: Vec<u8>,
    method: BroadcastMethod,
    last_sent: Instant,
    attempts: u32,
}

struct ProtocolState {
    handle: NetworkHandle,
    config: GroupConfig,
    stats: Arc<GroupStats>,
    delivery_tx: Sender<Delivered>,
    membership: Membership,
    sequencer: NodeId,
    // Member-side ordering state.
    next_deliver: u64,
    pending_order: BTreeMap<u64, (MsgId, Option<Vec<u8>>)>,
    bb_data: HashMap<MsgId, Vec<u8>>,
    delivered_ids: HashSet<MsgId>,
    gap_since: Option<Instant>,
    /// Highest global sequence number this member knows to exist (from data,
    /// accepts or sequencer status messages).
    known_highest: u64,
    last_status_sent: Instant,
    // Sender-side state.
    next_origin_seq: u64,
    unacked: HashMap<MsgId, PendingSend>,
    // Sequencer-side state.
    next_global_seq: u64,
    history: HistoryBuffer,
    sequenced_ids: HashMap<MsgId, u64>,
}

impl ProtocolState {
    fn new(
        handle: NetworkHandle,
        config: GroupConfig,
        stats: Arc<GroupStats>,
        delivery_tx: Sender<Delivered>,
    ) -> Self {
        let members = handle.node_ids();
        let membership = Membership::new(&members);
        let sequencer = membership.sequencer().expect("non-empty group");
        let history_limit = config.history_limit;
        ProtocolState {
            handle,
            config,
            stats,
            delivery_tx,
            membership,
            sequencer,
            next_deliver: 1,
            pending_order: BTreeMap::new(),
            bb_data: HashMap::new(),
            delivered_ids: HashSet::new(),
            gap_since: None,
            known_highest: 0,
            last_status_sent: Instant::now(),
            next_origin_seq: 1,
            unacked: HashMap::new(),
            next_global_seq: 1,
            history: HistoryBuffer::new(history_limit),
            sequenced_ids: HashMap::new(),
        }
    }

    fn run(&mut self, cmd_rx: Receiver<Command>) {
        let net_rx = self.handle.bind(ports::GROUP);
        loop {
            crossbeam::channel::select! {
                recv(cmd_rx) -> cmd => match cmd {
                    Ok(Command::Broadcast { payload }) => self.start_broadcast(payload),
                    Ok(Command::Shutdown) | Err(_) => return,
                },
                recv(net_rx.receiver()) -> msg => match msg {
                    Ok(msg) => self.handle_net(msg),
                    Err(_) => return,
                },
                default(self.config.tick) => {}
            }
            self.check_timers();
        }
    }

    fn is_sequencer(&self) -> bool {
        self.sequencer == self.handle.node()
    }

    fn choose_method(&self, payload_len: usize) -> BroadcastMethod {
        match self.config.method {
            MethodPolicy::AlwaysPb => BroadcastMethod::Pb,
            MethodPolicy::AlwaysBb => BroadcastMethod::Bb,
            MethodPolicy::Auto => {
                if payload_len <= self.config.pb_max_payload {
                    BroadcastMethod::Pb
                } else {
                    BroadcastMethod::Bb
                }
            }
        }
    }

    fn start_broadcast(&mut self, payload: Vec<u8>) {
        let id = MsgId {
            origin: self.handle.node(),
            origin_seq: self.next_origin_seq,
        };
        self.next_origin_seq += 1;
        let method = self.choose_method(payload.len());
        match method {
            BroadcastMethod::Pb => GroupStats::bump(&self.stats.pb_sent),
            BroadcastMethod::Bb => GroupStats::bump(&self.stats.bb_sent),
        }
        self.unacked.insert(
            id,
            PendingSend {
                payload: payload.clone(),
                method,
                last_sent: Instant::now(),
                attempts: 0,
            },
        );
        self.transmit(id, &payload, method);
    }

    fn transmit(&mut self, id: MsgId, payload: &[u8], method: BroadcastMethod) {
        match method {
            BroadcastMethod::Pb => {
                if self.is_sequencer() {
                    // The sequencer's own writes never touch the wire on the
                    // request leg; it sequences them directly.
                    self.sequence_data(id, payload.to_vec());
                } else {
                    let msg = GroupMsg::RequestForBroadcast {
                        id,
                        payload: payload.to_vec(),
                    };
                    let _ = self
                        .handle
                        .send(self.sequencer, ports::GROUP, msg.to_bytes());
                }
            }
            BroadcastMethod::Bb => {
                let msg = GroupMsg::BbData {
                    id,
                    payload: payload.to_vec(),
                };
                let _ = self.handle.broadcast(ports::GROUP, msg.to_bytes());
            }
        }
    }

    /// Sequencer duty: assign the next global number and announce the data.
    fn sequence_data(&mut self, id: MsgId, payload: Vec<u8>) {
        if let Some(&existing) = self.sequenced_ids.get(&id) {
            // Duplicate request (origin retransmitted): re-announce.
            GroupStats::bump(&self.stats.duplicates_ignored);
            if let Some(entry) = self.history.get(existing) {
                let msg = GroupMsg::SeqData {
                    global_seq: existing,
                    id,
                    payload: entry.payload.clone(),
                };
                let _ = self.handle.broadcast(ports::GROUP, msg.to_bytes());
            }
            return;
        }
        let global_seq = self.next_global_seq;
        self.next_global_seq += 1;
        self.history.insert(
            global_seq,
            HistoryEntry {
                id,
                payload: payload.clone(),
            },
        );
        self.sequenced_ids.insert(id, global_seq);
        GroupStats::bump(&self.stats.sequenced);
        let msg = GroupMsg::SeqData {
            global_seq,
            id,
            payload,
        };
        let _ = self.handle.broadcast(ports::GROUP, msg.to_bytes());
    }

    /// Sequencer duty for the BB protocol: bind an already-broadcast message
    /// to a global number with a short Accept.
    fn sequence_accept(&mut self, id: MsgId, payload: Vec<u8>) {
        if let Some(&existing) = self.sequenced_ids.get(&id) {
            GroupStats::bump(&self.stats.duplicates_ignored);
            let msg = GroupMsg::Accept {
                global_seq: existing,
                id,
            };
            let _ = self.handle.broadcast(ports::GROUP, msg.to_bytes());
            return;
        }
        let global_seq = self.next_global_seq;
        self.next_global_seq += 1;
        self.history
            .insert(global_seq, HistoryEntry { id, payload });
        self.sequenced_ids.insert(id, global_seq);
        GroupStats::bump(&self.stats.sequenced);
        let msg = GroupMsg::Accept { global_seq, id };
        let _ = self.handle.broadcast(ports::GROUP, msg.to_bytes());
    }

    fn handle_net(&mut self, msg: NetMessage) {
        let src = msg.src;
        let decoded: GroupMsg = match msg.decode_payload() {
            Ok(decoded) => decoded,
            Err(_) => return, // corrupted message: the protocol recovers via gaps
        };
        match decoded {
            GroupMsg::RequestForBroadcast { id, payload } => {
                if self.is_sequencer() {
                    self.sequence_data(id, payload);
                }
            }
            GroupMsg::SeqData {
                global_seq,
                id,
                payload,
            } => {
                self.receive_sequenced(global_seq, id, Some(payload));
            }
            GroupMsg::BbData { id, payload } => {
                if !self.delivered_ids.contains(&id) {
                    self.bb_data.insert(id, payload.clone());
                }
                if self.is_sequencer() {
                    self.sequence_accept(id, payload);
                }
            }
            GroupMsg::Accept { global_seq, id } => {
                let payload = self.bb_data.remove(&id);
                self.receive_sequenced(global_seq, id, payload);
            }
            GroupMsg::RetransmitRequest { from, to } => {
                self.serve_retransmission(src, from, to);
            }
            GroupMsg::NewSequencer {
                sequencer,
                next_seq,
            } => {
                self.sequencer = sequencer;
                if next_seq > self.next_global_seq {
                    self.next_global_seq = next_seq;
                }
            }
            GroupMsg::Status { highest_seq } => {
                self.note_highest(highest_seq);
            }
        }
    }

    /// Record that sequence numbers up to `seq` have been assigned; if this
    /// member has not delivered that far yet, start the gap-repair timer.
    fn note_highest(&mut self, seq: u64) {
        if seq > self.known_highest {
            self.known_highest = seq;
        }
        if self.known_highest >= self.next_deliver && self.gap_since.is_none() {
            self.gap_since = Some(Instant::now());
        }
    }

    fn serve_retransmission(&mut self, requester: NodeId, from: u64, to: u64) {
        // Any member that still has the entry in its history can serve it;
        // normally only the sequencer has one.
        let to = to.min(from.saturating_add(256)); // bound the burst
        for (global_seq, entry) in self.history.range(from, to) {
            GroupStats::bump(&self.stats.retransmissions_served);
            let msg = GroupMsg::SeqData {
                global_seq,
                id: entry.id,
                payload: entry.payload,
            };
            let _ = self.handle.send(requester, ports::GROUP, msg.to_bytes());
        }
    }

    fn receive_sequenced(&mut self, global_seq: u64, id: MsgId, payload: Option<Vec<u8>>) {
        if global_seq > self.known_highest {
            self.known_highest = global_seq;
        }
        if global_seq < self.next_deliver {
            GroupStats::bump(&self.stats.duplicates_ignored);
            return;
        }
        match self.pending_order.get_mut(&global_seq) {
            Some((_, existing @ None)) => {
                if payload.is_some() {
                    *existing = payload;
                }
            }
            Some(_) => {
                GroupStats::bump(&self.stats.duplicates_ignored);
            }
            None => {
                if global_seq > self.next_deliver {
                    GroupStats::bump(&self.stats.buffered_out_of_order);
                }
                self.pending_order.insert(global_seq, (id, payload));
            }
        }
        self.try_deliver();
    }

    fn try_deliver(&mut self) {
        loop {
            let ready = matches!(
                self.pending_order.get(&self.next_deliver),
                Some((_, Some(_)))
            );
            if !ready {
                break;
            }
            let (id, payload) = self
                .pending_order
                .remove(&self.next_deliver)
                .expect("checked above");
            let payload = payload.expect("checked above");
            let delivered = Delivered {
                global_seq: self.next_deliver,
                id,
                payload,
            };
            self.delivered_ids.insert(id);
            self.bb_data.remove(&id);
            self.unacked.remove(&id);
            GroupStats::bump(&self.stats.delivered);
            self.next_deliver += 1;
            let _ = self.delivery_tx.send(delivered);
        }
        self.gap_since = if self.pending_order.is_empty() && self.known_highest < self.next_deliver
        {
            None
        } else if self.gap_since.is_none() {
            Some(Instant::now())
        } else {
            self.gap_since
        };
    }

    fn check_timers(&mut self) {
        self.check_sequencer_alive();
        self.retry_unacked();
        self.repair_gaps();
        self.send_status();
    }

    /// Sequencer duty: periodically announce the highest assigned sequence
    /// number so members that missed the *last* broadcast (and therefore see
    /// no gap) still learn they are behind.
    fn send_status(&mut self) {
        if !self.is_sequencer() || self.next_global_seq == 1 {
            return;
        }
        let interval = self.config.retransmit_timeout;
        if self.last_status_sent.elapsed() < interval {
            return;
        }
        self.last_status_sent = Instant::now();
        let msg = GroupMsg::Status {
            highest_seq: self.next_global_seq - 1,
        };
        let _ = self.handle.broadcast(ports::GROUP, msg.to_bytes());
    }

    fn check_sequencer_alive(&mut self) {
        // The simulated kernel exposes crash state directly (a perfect
        // failure detector); the retry path below also suspects the
        // sequencer after repeated fruitless retransmissions.
        if self.handle.network().is_crashed(self.sequencer) {
            self.fail_sequencer();
        }
    }

    fn fail_sequencer(&mut self) {
        self.membership.mark_failed(self.sequencer);
        let Some(new_sequencer) = self.membership.sequencer() else {
            return;
        };
        if new_sequencer == self.sequencer {
            return;
        }
        self.sequencer = new_sequencer;
        if self.is_sequencer() {
            // Resume numbering after everything this member has seen.
            let highest_buffered = self
                .pending_order
                .keys()
                .next_back()
                .copied()
                .unwrap_or(self.next_deliver.saturating_sub(1));
            let resume = highest_buffered.max(self.next_deliver.saturating_sub(1)) + 1;
            if resume > self.next_global_seq {
                self.next_global_seq = resume;
            }
            let msg = GroupMsg::NewSequencer {
                sequencer: self.sequencer,
                next_seq: self.next_global_seq,
            };
            let _ = self.handle.broadcast(ports::GROUP, msg.to_bytes());
        }
    }

    fn retry_unacked(&mut self) {
        let now = Instant::now();
        let timeout = self.config.retransmit_timeout;
        let due: Vec<MsgId> = self
            .unacked
            .iter()
            .filter(|(_, pending)| now.duration_since(pending.last_sent) >= timeout)
            .map(|(&id, _)| id)
            .collect();
        let mut suspect_sequencer = false;
        for id in due {
            let (payload, method, attempts) = {
                let pending = self.unacked.get_mut(&id).expect("due id present");
                pending.last_sent = now;
                pending.attempts += 1;
                (pending.payload.clone(), pending.method, pending.attempts)
            };
            GroupStats::bump(&self.stats.send_retries);
            if attempts >= self.config.suspect_after {
                suspect_sequencer = true;
            }
            self.transmit(id, &payload, method);
        }
        if suspect_sequencer && !self.is_sequencer() {
            self.fail_sequencer();
        }
    }

    fn repair_gaps(&mut self) {
        let Some(since) = self.gap_since else { return };
        if since.elapsed() < self.config.retransmit_timeout {
            return;
        }
        let highest_buffered = self.pending_order.keys().next_back().copied().unwrap_or(0);
        let highest = highest_buffered.max(self.known_highest);
        if highest < self.next_deliver {
            self.gap_since = None;
            return;
        }
        if self.is_sequencer() {
            // We *are* the sequencer: the lost copies are in our own history
            // buffer (we store every message we sequence), so re-inject them
            // locally instead of asking anyone.
            let missing = self.history.range(self.next_deliver, highest);
            for (global_seq, entry) in missing {
                self.receive_sequenced(global_seq, entry.id, Some(entry.payload));
            }
            self.gap_since = Some(Instant::now());
            return;
        }
        // Ask for everything from the next expected number up to the highest
        // number known to exist; the sequencer ignores numbers it no longer
        // has.
        GroupStats::bump(&self.stats.retransmit_requests);
        let msg = GroupMsg::RetransmitRequest {
            from: self.next_deliver,
            to: highest,
        };
        let _ = self
            .handle
            .send(self.sequencer, ports::GROUP, msg.to_bytes());
        self.gap_since = Some(Instant::now());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orca_amoeba::network::{Network, NetworkConfig};
    use orca_amoeba::FaultConfig;

    fn start_members(net: &Network, config: &GroupConfig) -> Vec<GroupMember> {
        net.node_ids()
            .into_iter()
            .map(|n| GroupMember::start(net.handle(n), config.clone()))
            .collect()
    }

    fn collect(member: &GroupMember, count: usize, per_msg: Duration) -> Vec<Delivered> {
        (0..count)
            .map(|_| {
                member
                    .recv_timeout(per_msg)
                    .expect("delivery within timeout")
            })
            .collect()
    }

    #[test]
    fn single_broadcast_reaches_all_members_in_order() {
        let net = Network::reliable(4);
        let members = start_members(&net, &GroupConfig::default());
        members[2].broadcast(b"hello".to_vec()).unwrap();
        for member in &members {
            let delivered = member.recv_timeout(Duration::from_secs(2)).unwrap();
            assert_eq!(delivered.global_seq, 1);
            assert_eq!(delivered.payload, b"hello");
            assert_eq!(delivered.id.origin, NodeId(2));
        }
    }

    #[test]
    fn concurrent_broadcasts_identical_total_order() {
        let net = Network::reliable(5);
        let members = start_members(&net, &GroupConfig::default());
        let per_member = 20usize;
        for (i, member) in members.iter().enumerate() {
            for k in 0..per_member {
                member.broadcast(format!("{i}:{k}").into_bytes()).unwrap();
            }
        }
        let total = per_member * members.len();
        let orders: Vec<Vec<(u64, MsgId)>> = members
            .iter()
            .map(|m| {
                collect(m, total, Duration::from_secs(5))
                    .into_iter()
                    .map(|d| (d.global_seq, d.id))
                    .collect()
            })
            .collect();
        for order in &orders[1..] {
            assert_eq!(order, &orders[0]);
        }
        // Sequence numbers are gapless 1..=total.
        let seqs: Vec<u64> = orders[0].iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, (1..=total as u64).collect::<Vec<_>>());
    }

    #[test]
    fn large_messages_use_bb_and_small_use_pb_under_auto() {
        let net = Network::reliable(3);
        let members = start_members(&net, &GroupConfig::default());
        members[1].broadcast(vec![1u8; 10]).unwrap();
        members[1].broadcast(vec![2u8; 50_000]).unwrap();
        for member in &members {
            let _ = collect(member, 2, Duration::from_secs(2));
        }
        let stats = members[1].stats();
        assert_eq!(stats.pb_sent, 1);
        assert_eq!(stats.bb_sent, 1);
    }

    #[test]
    fn lossy_network_still_delivers_everything_in_order() {
        let fault = FaultConfig {
            drop_prob: 0.15,
            duplicate_prob: 0.05,
            reorder_prob: 0.05,
            seed: 7,
        };
        let net = Network::new(NetworkConfig::with_fault(4, fault));
        let config = GroupConfig {
            retransmit_timeout: Duration::from_millis(40),
            ..GroupConfig::default()
        };
        let members = start_members(&net, &config);
        let per_member = 15usize;
        for (i, member) in members.iter().enumerate() {
            for k in 0..per_member {
                member.broadcast(vec![i as u8, k as u8]).unwrap();
            }
        }
        let total = per_member * members.len();
        let orders: Vec<Vec<MsgId>> = members
            .iter()
            .map(|m| {
                collect(m, total, Duration::from_secs(20))
                    .into_iter()
                    .map(|d| d.id)
                    .collect()
            })
            .collect();
        for order in &orders[1..] {
            assert_eq!(order, &orders[0]);
        }
    }

    #[test]
    fn sequencer_crash_elects_new_sequencer_and_traffic_continues() {
        let net = Network::reliable(3);
        let config = GroupConfig {
            retransmit_timeout: Duration::from_millis(30),
            ..GroupConfig::default()
        };
        let members = start_members(&net, &config);
        // Quiesce: one message through the original sequencer first.
        members[1].broadcast(b"before".to_vec()).unwrap();
        for member in &members {
            let _ = member.recv_timeout(Duration::from_secs(2)).unwrap();
        }
        // Kill the sequencer (node 0) and keep broadcasting from node 2.
        net.crash(NodeId(0));
        members[2].broadcast(b"after".to_vec()).unwrap();
        for member in &members[1..] {
            let delivered = member.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(delivered.payload, b"after");
            assert_eq!(delivered.global_seq, 2);
        }
    }

    #[test]
    fn forced_pb_and_bb_policies_are_respected() {
        for (config, expect_pb) in [
            (GroupConfig::always_pb(), true),
            (GroupConfig::always_bb(), false),
        ] {
            let net = Network::reliable(2);
            let members = start_members(&net, &config);
            members[1].broadcast(vec![0u8; 20_000]).unwrap();
            members[1].broadcast(vec![0u8; 8]).unwrap();
            for member in &members {
                let _ = collect(member, 2, Duration::from_secs(2));
            }
            let stats = members[1].stats();
            if expect_pb {
                assert_eq!(stats.pb_sent, 2);
                assert_eq!(stats.bb_sent, 0);
            } else {
                assert_eq!(stats.pb_sent, 0);
                assert_eq!(stats.bb_sent, 2);
            }
        }
    }
}
