//! The group member: protocol engine for totally-ordered reliable broadcast.
//!
//! Every node of an application runs one [`GroupMember`]. A member can
//! [`GroupMember::broadcast`] application payloads and receives *all* group
//! messages (its own included) through [`GroupMember::recv`] in a single
//! total order that is identical at every member.
//!
//! One member at a time acts as the *sequencer* (initially the
//! lowest-numbered node). The sequencer assigns consecutive global sequence
//! numbers, keeps a history buffer for retransmissions and — depending on
//! message size — either rebroadcasts the full message (PB) or broadcasts a
//! short Accept for a message the origin already broadcast (BB).
//!
//! ## Failure handling
//!
//! * Lost broadcasts are detected as gaps in the sequence numbers and
//!   repaired with retransmission requests served from the history buffer.
//! * Lost requests (the origin's message never gets sequenced) are detected
//!   by the origin's retransmission timer and simply sent again; the
//!   sequencer deduplicates by message id.
//! * A crashed sequencer is detected either through the simulated kernel's
//!   crash flag or after repeated fruitless retransmissions; the remaining
//!   members elect the lowest-numbered live node as the new sequencer.
//!   Every member keeps a history buffer of the messages it has *delivered*
//!   (not just the ones it sequenced), so a newly elected sequencer can
//!   serve retransmissions for the old sequencer's era. Because the new
//!   sequencer may not have observed the failed sequencer's final
//!   assignments, it announces itself (`NewSequencer`) and pauses
//!   sequencing for one retransmission interval: members that have seen
//!   higher sequence numbers replay those entries to it from their own
//!   history, the new sequencer adopts them (advancing its numbering past
//!   everything any survivor delivered), and only then does it resume
//!   assigning fresh numbers. A message acknowledged to any *surviving*
//!   origin is therefore never lost and never double-numbered across the
//!   change-over. (Residual: under simultaneous heavy message loss the
//!   replay itself can be dropped; the resync window bounds but does not
//!   eliminate that race — see docs/ARCHITECTURE.md.)

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use orca_amoeba::election::Membership;
use orca_amoeba::network::NetworkHandle;
use orca_amoeba::node::{ports, NodeId};
use orca_amoeba::NetMessage;
use orca_wire::Wire;

use crate::config::{GroupConfig, MethodPolicy};
use crate::history::{HistoryBuffer, HistoryEntry};
use crate::messages::{BroadcastMethod, GroupMsg, MsgId};
use crate::stats::{GroupStats, GroupStatsSnapshot};

/// A message delivered in total order to the application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivered {
    /// Position in the global total order (1-based, no gaps).
    pub global_seq: u64,
    /// Identity assigned by the message's origin.
    pub id: MsgId,
    /// Application payload.
    pub payload: Vec<u8>,
}

/// Errors surfaced by the group layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupError {
    /// The member has been shut down.
    Terminated,
    /// A blocking receive timed out.
    Timeout,
}

impl std::fmt::Display for GroupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GroupError::Terminated => write!(f, "group member terminated"),
            GroupError::Timeout => write!(f, "receive timed out"),
        }
    }
}

impl std::error::Error for GroupError {}

enum Command {
    Broadcast { payload: Vec<u8> },
    Shutdown,
}

/// Cheap cloneable handle that can queue broadcasts on a [`GroupMember`]
/// from other threads (e.g. the runtime system's invocation path) while the
/// member itself is owned by its manager thread.
#[derive(Clone)]
pub struct GroupSender {
    cmd_tx: Sender<Command>,
}

impl std::fmt::Debug for GroupSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupSender").finish()
    }
}

impl GroupSender {
    /// Queue an application payload for totally-ordered broadcast.
    pub fn broadcast(&self, payload: Vec<u8>) -> Result<(), GroupError> {
        self.cmd_tx
            .send(Command::Broadcast { payload })
            .map_err(|_| GroupError::Terminated)
    }
}

/// Handle to a running group member (protocol thread + delivery queue).
pub struct GroupMember {
    node: NodeId,
    cmd_tx: Sender<Command>,
    delivery_rx: Receiver<Delivered>,
    stats: Arc<GroupStats>,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for GroupMember {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupMember")
            .field("node", &self.node)
            .finish()
    }
}

impl GroupMember {
    /// Start a group member on the node owning `handle`.
    ///
    /// All nodes of the network are assumed to be members of the (single)
    /// group, which matches the paper's model of one parallel application
    /// owning the processor pool.
    pub fn start(handle: NetworkHandle, config: GroupConfig) -> GroupMember {
        let node = handle.node();
        let stats = GroupStats::new_shared();
        let (cmd_tx, cmd_rx) = unbounded();
        let (delivery_tx, delivery_rx) = unbounded();
        let state_stats = Arc::clone(&stats);
        let thread = std::thread::Builder::new()
            .name(format!("group-{node}"))
            .spawn(move || {
                let mut state = ProtocolState::new(handle, config, state_stats, delivery_tx);
                state.run(cmd_rx);
            })
            .expect("spawn group protocol thread");
        GroupMember {
            node,
            cmd_tx,
            delivery_rx,
            stats,
            thread: Some(thread),
        }
    }

    /// Node this member runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// A cloneable handle that can queue broadcasts from other threads.
    pub fn sender(&self) -> GroupSender {
        GroupSender {
            cmd_tx: self.cmd_tx.clone(),
        }
    }

    /// Queue an application payload for totally-ordered broadcast.
    ///
    /// The call returns immediately; the message is delivered (also to the
    /// caller's own member) once the sequencer has ordered it.
    pub fn broadcast(&self, payload: Vec<u8>) -> Result<(), GroupError> {
        self.cmd_tx
            .send(Command::Broadcast { payload })
            .map_err(|_| GroupError::Terminated)
    }

    /// Blocking receive of the next message in total order.
    pub fn recv(&self) -> Result<Delivered, GroupError> {
        self.delivery_rx.recv().map_err(|_| GroupError::Terminated)
    }

    /// Blocking receive with a timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Delivered, GroupError> {
        self.delivery_rx
            .recv_timeout(timeout)
            .map_err(|err| match err {
                crossbeam::channel::RecvTimeoutError::Timeout => GroupError::Timeout,
                crossbeam::channel::RecvTimeoutError::Disconnected => GroupError::Terminated,
            })
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Delivered> {
        self.delivery_rx.try_recv().ok()
    }

    /// Borrow the delivery channel (for select loops in higher layers).
    pub fn deliveries(&self) -> &Receiver<Delivered> {
        &self.delivery_rx
    }

    /// Snapshot of this member's protocol statistics.
    pub fn stats(&self) -> GroupStatsSnapshot {
        self.stats.snapshot()
    }

    /// Stop the protocol thread and wait for it to exit.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let _ = self.cmd_tx.send(Command::Shutdown);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for GroupMember {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

struct PendingSend {
    payload: Vec<u8>,
    method: BroadcastMethod,
    last_sent: Instant,
    attempts: u32,
}

struct ProtocolState {
    handle: NetworkHandle,
    config: GroupConfig,
    stats: Arc<GroupStats>,
    delivery_tx: Sender<Delivered>,
    membership: Membership,
    sequencer: NodeId,
    // Member-side ordering state.
    next_deliver: u64,
    pending_order: BTreeMap<u64, (MsgId, Option<Vec<u8>>)>,
    /// Sequence numbers declared abandoned by a sequencer change-over
    /// ([`GroupMsg::Skip`]) or consumed by a re-sequenced duplicate;
    /// delivery advances past them without handing anything up.
    skipped: BTreeSet<u64>,
    bb_data: HashMap<MsgId, Vec<u8>>,
    delivered_ids: HashSet<MsgId>,
    gap_since: Option<Instant>,
    /// Highest global sequence number this member knows to exist (from data,
    /// accepts or sequencer status messages).
    known_highest: u64,
    last_status_sent: Instant,
    // Sender-side state.
    next_origin_seq: u64,
    unacked: HashMap<MsgId, PendingSend>,
    // Sequencer-side state.
    next_global_seq: u64,
    /// Sequenced (as sequencer) *and* delivered (as member) messages, so a
    /// newly elected sequencer can serve retransmissions and replay the old
    /// sequencer's era.
    history: HistoryBuffer,
    sequenced_ids: HashMap<MsgId, u64>,
    /// Set while a newly elected sequencer waits for survivors to replay
    /// sequence numbers it may have missed; sequencing duties arriving in
    /// the window are deferred to [`ProtocolState::deferred`].
    resync_until: Option<Instant>,
    /// Sequencing duties (id, payload, use-BB-accept) deferred by the
    /// resync window.
    deferred: Vec<(MsgId, Vec<u8>, bool)>,
    /// Consecutive post-resync repair rounds in which the sequencer still
    /// had holes in the failed sequencer's era; after a few fruitless
    /// survivor probes the holes are declared abandoned and skipped.
    hole_rounds: u32,
}

/// Fruitless survivor-probe rounds after which a newly elected sequencer
/// declares a hole in its predecessor's era abandoned.
const HOLE_PROBE_ROUNDS: u32 = 3;

impl ProtocolState {
    fn new(
        handle: NetworkHandle,
        config: GroupConfig,
        stats: Arc<GroupStats>,
        delivery_tx: Sender<Delivered>,
    ) -> Self {
        let members = handle.node_ids();
        let membership = Membership::new(&members);
        let sequencer = membership.sequencer().expect("non-empty group");
        let history_limit = config.history_limit;
        ProtocolState {
            handle,
            config,
            stats,
            delivery_tx,
            membership,
            sequencer,
            next_deliver: 1,
            pending_order: BTreeMap::new(),
            skipped: BTreeSet::new(),
            bb_data: HashMap::new(),
            delivered_ids: HashSet::new(),
            gap_since: None,
            known_highest: 0,
            last_status_sent: Instant::now(),
            next_origin_seq: 1,
            unacked: HashMap::new(),
            next_global_seq: 1,
            history: HistoryBuffer::new(history_limit),
            sequenced_ids: HashMap::new(),
            resync_until: None,
            deferred: Vec::new(),
            hole_rounds: 0,
        }
    }

    fn run(&mut self, cmd_rx: Receiver<Command>) {
        let net_rx = self.handle.bind(ports::GROUP);
        loop {
            crossbeam::channel::select! {
                recv(cmd_rx) -> cmd => match cmd {
                    Ok(Command::Broadcast { payload }) => self.start_broadcast(payload),
                    Ok(Command::Shutdown) | Err(_) => return,
                },
                recv(net_rx.receiver()) -> msg => match msg {
                    Ok(msg) => self.handle_net(msg),
                    Err(_) => return,
                },
                default(self.config.tick) => {}
            }
            self.check_timers();
        }
    }

    fn is_sequencer(&self) -> bool {
        self.sequencer == self.handle.node()
    }

    fn choose_method(&self, payload_len: usize) -> BroadcastMethod {
        match self.config.method {
            MethodPolicy::AlwaysPb => BroadcastMethod::Pb,
            MethodPolicy::AlwaysBb => BroadcastMethod::Bb,
            MethodPolicy::Auto => {
                if payload_len <= self.config.pb_max_payload {
                    BroadcastMethod::Pb
                } else {
                    BroadcastMethod::Bb
                }
            }
        }
    }

    fn start_broadcast(&mut self, payload: Vec<u8>) {
        let id = MsgId {
            origin: self.handle.node(),
            origin_seq: self.next_origin_seq,
        };
        self.next_origin_seq += 1;
        let method = self.choose_method(payload.len());
        match method {
            BroadcastMethod::Pb => GroupStats::bump(&self.stats.pb_sent),
            BroadcastMethod::Bb => GroupStats::bump(&self.stats.bb_sent),
        }
        self.unacked.insert(
            id,
            PendingSend {
                payload: payload.clone(),
                method,
                last_sent: Instant::now(),
                attempts: 0,
            },
        );
        self.transmit(id, &payload, method);
    }

    fn transmit(&mut self, id: MsgId, payload: &[u8], method: BroadcastMethod) {
        match method {
            BroadcastMethod::Pb => {
                if self.is_sequencer() {
                    // The sequencer's own writes never touch the wire on the
                    // request leg; it sequences them directly.
                    self.sequence_data(id, payload.to_vec());
                } else {
                    let msg = GroupMsg::RequestForBroadcast {
                        id,
                        payload: payload.to_vec(),
                    };
                    let _ = self
                        .handle
                        .send(self.sequencer, ports::GROUP, msg.to_bytes());
                }
            }
            BroadcastMethod::Bb => {
                let msg = GroupMsg::BbData {
                    id,
                    payload: payload.to_vec(),
                };
                let _ = self.handle.broadcast(ports::GROUP, msg.to_bytes());
            }
        }
    }

    /// True while a newly elected sequencer is waiting out its resync
    /// window (survivors may still be replaying the old sequencer's
    /// assignments).
    fn in_resync(&self) -> bool {
        matches!(self.resync_until, Some(until) if Instant::now() < until)
    }

    /// Sequencer duty: assign the next global number and announce the data.
    fn sequence_data(&mut self, id: MsgId, payload: Vec<u8>) {
        if self.in_resync() {
            self.defer(id, payload, false);
            return;
        }
        if let Some(&existing) = self.sequenced_ids.get(&id) {
            // Duplicate request (origin retransmitted): re-announce.
            GroupStats::bump(&self.stats.duplicates_ignored);
            if let Some(entry) = self.history.get(existing) {
                let msg = GroupMsg::SeqData {
                    global_seq: existing,
                    id,
                    payload: entry.payload.clone(),
                };
                let _ = self.handle.broadcast(ports::GROUP, msg.to_bytes());
            }
            return;
        }
        let global_seq = self.next_global_seq;
        self.next_global_seq += 1;
        self.history.insert(
            global_seq,
            HistoryEntry {
                id,
                payload: payload.clone(),
            },
        );
        self.sequenced_ids.insert(id, global_seq);
        GroupStats::bump(&self.stats.sequenced);
        let msg = GroupMsg::SeqData {
            global_seq,
            id,
            payload,
        };
        let _ = self.handle.broadcast(ports::GROUP, msg.to_bytes());
    }

    /// Park a request that arrived during the resync window. Origins keep
    /// retransmitting while we defer (they cannot see the window), so dedup
    /// by id or the backlog grows one copy per retry.
    fn defer(&mut self, id: MsgId, payload: Vec<u8>, accept: bool) {
        if self.deferred.iter().any(|(existing, _, _)| *existing == id) {
            GroupStats::bump(&self.stats.duplicates_ignored);
            return;
        }
        self.deferred.push((id, payload, accept));
    }

    /// Sequencer duty for the BB protocol: bind an already-broadcast message
    /// to a global number with a short Accept.
    fn sequence_accept(&mut self, id: MsgId, payload: Vec<u8>) {
        if self.in_resync() {
            self.defer(id, payload, true);
            return;
        }
        if let Some(&existing) = self.sequenced_ids.get(&id) {
            GroupStats::bump(&self.stats.duplicates_ignored);
            let msg = GroupMsg::Accept {
                global_seq: existing,
                id,
            };
            let _ = self.handle.broadcast(ports::GROUP, msg.to_bytes());
            return;
        }
        let global_seq = self.next_global_seq;
        self.next_global_seq += 1;
        self.history
            .insert(global_seq, HistoryEntry { id, payload });
        self.sequenced_ids.insert(id, global_seq);
        GroupStats::bump(&self.stats.sequenced);
        let msg = GroupMsg::Accept { global_seq, id };
        let _ = self.handle.broadcast(ports::GROUP, msg.to_bytes());
    }

    fn handle_net(&mut self, msg: NetMessage) {
        let src = msg.src;
        let decoded: GroupMsg = match msg.decode_payload() {
            Ok(decoded) => decoded,
            Err(_) => return, // corrupted message: the protocol recovers via gaps
        };
        match decoded {
            GroupMsg::RequestForBroadcast { id, payload } => {
                if self.is_sequencer() {
                    self.sequence_data(id, payload);
                } else {
                    // Stale view: the origin thinks we are the sequencer
                    // (it rode out an election we saw first, or vice
                    // versa). Point it at the real one so its retries
                    // converge instead of vanishing into a non-sequencer.
                    let msg = GroupMsg::NewSequencer {
                        sequencer: self.sequencer,
                        next_seq: self.next_global_seq,
                    };
                    let _ = self.handle.send(src, ports::GROUP, msg.to_bytes());
                }
            }
            GroupMsg::SeqData {
                global_seq,
                id,
                payload,
            } => {
                if self.is_sequencer() && !crate::sabotage::skip_era_replay() {
                    // Replayed assignments of a previous sequencer's era
                    // (handover after an election, or retransmissions in
                    // flight across it): adopt them so our numbering
                    // resumes past everything any survivor has seen and
                    // duplicate requests stay deduplicated. (The sabotaged
                    // failover also ignores these survivor-pushed replays —
                    // otherwise they silently compensate for the skipped
                    // replay and the mutation is unobservable.)
                    self.adopt_sequenced(global_seq, id, &payload);
                }
                self.receive_sequenced(global_seq, id, Some(payload));
            }
            GroupMsg::BbData { id, payload } => {
                if !self.delivered_ids.contains(&id) {
                    self.bb_data.insert(id, payload.clone());
                }
                if self.is_sequencer() {
                    self.sequence_accept(id, payload);
                }
            }
            GroupMsg::Accept { global_seq, id } => {
                let payload = self.bb_data.remove(&id);
                self.receive_sequenced(global_seq, id, payload);
            }
            GroupMsg::RetransmitRequest { from, to } => {
                self.serve_retransmission(src, from, to);
                // A requester (typically a newly elected sequencer probing
                // the failed sequencer's era) that asks up to `to` has not
                // heard of anything higher; if we have, tell it.
                if self.known_highest > to {
                    let msg = GroupMsg::Status {
                        highest_seq: self.known_highest,
                    };
                    let _ = self.handle.send(src, ports::GROUP, msg.to_bytes());
                }
            }
            GroupMsg::NewSequencer {
                sequencer,
                next_seq,
            } => {
                self.sequencer = sequencer;
                if next_seq > self.next_global_seq {
                    self.next_global_seq = next_seq;
                }
                // Handover: if this member has seen sequence numbers the
                // new sequencer has not, replay them from local history
                // (delivered) and the reorder buffer (received, not yet
                // delivered) so the new sequencer adopts them before it
                // assigns fresh numbers.
                // (The sabotaged build has no era-replay code on either
                // side — survivors do not push old assignments at the new
                // sequencer, so nothing repairs a resumed-too-low
                // numbering.)
                if sequencer != self.handle.node()
                    && self.known_highest >= next_seq
                    && !crate::sabotage::skip_era_replay()
                {
                    for (global_seq, entry) in self.history.range(next_seq, self.known_highest) {
                        let msg = GroupMsg::SeqData {
                            global_seq,
                            id: entry.id,
                            payload: entry.payload,
                        };
                        let _ = self.handle.send(sequencer, ports::GROUP, msg.to_bytes());
                    }
                    for (&global_seq, (id, payload)) in self.pending_order.range(next_seq..) {
                        if let Some(payload) = payload {
                            let msg = GroupMsg::SeqData {
                                global_seq,
                                id: *id,
                                payload: payload.clone(),
                            };
                            let _ = self.handle.send(sequencer, ports::GROUP, msg.to_bytes());
                        }
                    }
                }
            }
            GroupMsg::Status { highest_seq } => {
                self.note_highest(highest_seq);
            }
            GroupMsg::Skip { from, to } => {
                // Bounded like retransmission bursts; numbers below the
                // delivery point are already consumed.
                let to = to.min(from.saturating_add(256));
                for seq in from.max(self.next_deliver)..=to {
                    self.skipped.insert(seq);
                }
                self.try_deliver();
            }
        }
    }

    /// Record that sequence numbers up to `seq` have been assigned; if this
    /// member has not delivered that far yet, start the gap-repair timer.
    fn note_highest(&mut self, seq: u64) {
        if seq > self.known_highest {
            self.known_highest = seq;
        }
        if self.known_highest >= self.next_deliver && self.gap_since.is_none() {
            self.gap_since = Some(Instant::now());
        }
    }

    fn serve_retransmission(&mut self, requester: NodeId, from: u64, to: u64) {
        // Any member that still has the entry in its history can serve it;
        // normally only the sequencer has one.
        let to = to.min(from.saturating_add(256)); // bound the burst
        let mut present = BTreeSet::new();
        for (global_seq, entry) in self.history.range(from, to) {
            present.insert(global_seq);
            GroupStats::bump(&self.stats.retransmissions_served);
            let msg = GroupMsg::SeqData {
                global_seq,
                id: entry.id,
                payload: entry.payload,
            };
            let _ = self.handle.send(requester, ports::GROUP, msg.to_bytes());
        }
        // Sequencer authority: numbers this sequencer has itself already
        // consumed (delivered or skipped — i.e. below its own delivery
        // point) that are absent from its history were abandoned in a
        // change-over; tell the requester to skip them, otherwise its
        // delivery would stall forever. Two bounds keep Skip truthful:
        // the *delivery* point (never skip a number we might still fill
        // in), and the history buffer's lowest retained entry (a number
        // below it may be a real delivered message the size bound
        // evicted — absence proves nothing there, so the requester keeps
        // retrying instead of silently diverging).
        if !self.is_sequencer() || self.in_resync() {
            return;
        }
        let floor = self.history.lowest_seq();
        if floor == 0 {
            return;
        }
        let mut seq = from.max(floor);
        while seq <= to && seq < self.next_deliver {
            if present.contains(&seq) {
                seq += 1;
                continue;
            }
            let run_start = seq;
            while seq <= to && seq < self.next_deliver && !present.contains(&seq) {
                seq += 1;
            }
            let msg = GroupMsg::Skip {
                from: run_start,
                to: seq - 1,
            };
            let _ = self.handle.send(requester, ports::GROUP, msg.to_bytes());
        }
    }

    /// Sequencer duty after an election: fold a replayed assignment of a
    /// previous era into our own sequencer state (history for
    /// retransmissions, id map for request deduplication, numbering past
    /// everything adopted).
    fn adopt_sequenced(&mut self, global_seq: u64, id: MsgId, payload: &[u8]) {
        if let std::collections::hash_map::Entry::Vacant(vacant) = self.sequenced_ids.entry(id) {
            vacant.insert(global_seq);
            self.history.insert(
                global_seq,
                HistoryEntry {
                    id,
                    payload: payload.to_vec(),
                },
            );
        }
        if global_seq >= self.next_global_seq {
            self.next_global_seq = global_seq + 1;
        }
    }

    fn receive_sequenced(&mut self, global_seq: u64, id: MsgId, payload: Option<Vec<u8>>) {
        if global_seq > self.known_highest {
            self.known_highest = global_seq;
        }
        if global_seq < self.next_deliver {
            GroupStats::bump(&self.stats.duplicates_ignored);
            return;
        }
        // A message this member already delivered, re-sequenced under a new
        // number (its origin retransmitted across a sequencer change-over
        // that this member rode out with the *old* assignment): consume the
        // new number without delivering twice.
        if payload.is_some() && self.delivered_ids.contains(&id) {
            GroupStats::bump(&self.stats.duplicates_ignored);
            self.skipped.insert(global_seq);
            self.try_deliver();
            return;
        }
        match self.pending_order.get_mut(&global_seq) {
            Some((_, existing @ None)) => {
                if payload.is_some() {
                    *existing = payload;
                }
            }
            Some(_) => {
                GroupStats::bump(&self.stats.duplicates_ignored);
            }
            None => {
                if global_seq > self.next_deliver {
                    GroupStats::bump(&self.stats.buffered_out_of_order);
                }
                self.pending_order.insert(global_seq, (id, payload));
            }
        }
        self.try_deliver();
    }

    fn try_deliver(&mut self) {
        loop {
            let ready = matches!(
                self.pending_order.get(&self.next_deliver),
                Some((_, Some(_)))
            );
            if !ready {
                // An abandoned number (sequencer change-over) with no real
                // payload pending is consumed silently.
                if self.skipped.contains(&self.next_deliver) {
                    self.skipped.remove(&self.next_deliver);
                    self.pending_order.remove(&self.next_deliver);
                    self.next_deliver += 1;
                    continue;
                }
                break;
            }
            self.skipped.remove(&self.next_deliver);
            let (id, payload) = self
                .pending_order
                .remove(&self.next_deliver)
                .expect("checked above");
            let payload = payload.expect("checked above");
            if self.delivered_ids.contains(&id) {
                // Already delivered under an earlier number (the message
                // was re-sequenced across a sequencer change-over and the
                // new assignment was buffered before the old one arrived):
                // consume the number silently.
                GroupStats::bump(&self.stats.duplicates_ignored);
                self.next_deliver += 1;
                continue;
            }
            // Every member (not just the sequencer) remembers what it
            // delivered, so a newly elected sequencer can replay and serve
            // the failed sequencer's era from its own buffer.
            self.history.insert(
                self.next_deliver,
                HistoryEntry {
                    id,
                    payload: payload.clone(),
                },
            );
            let delivered = Delivered {
                global_seq: self.next_deliver,
                id,
                payload,
            };
            self.delivered_ids.insert(id);
            self.bb_data.remove(&id);
            self.unacked.remove(&id);
            GroupStats::bump(&self.stats.delivered);
            self.next_deliver += 1;
            let _ = self.delivery_tx.send(delivered);
        }
        self.gap_since = if self.pending_order.is_empty() && self.known_highest < self.next_deliver
        {
            None
        } else if self.gap_since.is_none() {
            Some(Instant::now())
        } else {
            self.gap_since
        };
    }

    fn check_timers(&mut self) {
        // `ORCA_GROUP_TRACE=1` dumps per-tick member state to stderr — the
        // fastest way to see an election livelock or a stuck resync window
        // when a model-checker trace replays but the cause is not obvious.
        static TRACE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        if *TRACE.get_or_init(|| std::env::var_os("ORCA_GROUP_TRACE").is_some()) {
            eprintln!(
                "group-trace node={} seq={} next_global={} next_deliver={} unacked={} deferred={} resync={} pending={}",
                self.handle.node().index(),
                self.sequencer.index(),
                self.next_global_seq,
                self.next_deliver,
                self.unacked.len(),
                self.deferred.len(),
                self.in_resync(),
                self.pending_order.len(),
            );
        }
        self.check_sequencer_alive();
        self.probe_predecessor_era();
        self.flush_deferred();
        self.retry_unacked();
        self.repair_gaps();
        self.send_status();
    }

    /// During the post-election resync window, the new sequencer actively
    /// asks every survivor to replay anything it is missing from the failed
    /// sequencer's era (a single handover replay can be lost on a lossy
    /// network). Members answer with history entries and with their own
    /// highest known number, so by the end of the window the new
    /// sequencer's numbering has moved past everything any survivor saw.
    fn probe_predecessor_era(&mut self) {
        if !self.is_sequencer() || !self.in_resync() {
            return;
        }
        if self.known_highest >= self.next_deliver {
            let msg = GroupMsg::RetransmitRequest {
                from: self.next_deliver,
                to: self.known_highest,
            };
            let _ = self.handle.broadcast(ports::GROUP, msg.to_bytes());
        }
    }

    /// Sequencer duty: once the post-election resync window has passed,
    /// sequence the requests that arrived during it.
    fn flush_deferred(&mut self) {
        if self.in_resync() {
            return;
        }
        self.resync_until = None;
        if self.deferred.is_empty() {
            return;
        }
        if !self.is_sequencer() {
            // Deferred entries only exist on a (former) sequencer; if
            // leadership moved on, the origins retransmit to the new
            // sequencer themselves.
            self.deferred.clear();
            return;
        }
        let deferred = std::mem::take(&mut self.deferred);
        for (id, payload, accept) in deferred {
            if accept {
                self.sequence_accept(id, payload);
            } else {
                self.sequence_data(id, payload);
            }
        }
    }

    /// Sequencer duty: periodically announce the highest assigned sequence
    /// number so members that missed the *last* broadcast (and therefore see
    /// no gap) still learn they are behind.
    fn send_status(&mut self) {
        if !self.is_sequencer() || self.next_global_seq == 1 {
            return;
        }
        let interval = self.config.retransmit_timeout;
        if self.last_status_sent.elapsed() < interval {
            return;
        }
        self.last_status_sent = Instant::now();
        let msg = GroupMsg::Status {
            highest_seq: self.next_global_seq - 1,
        };
        let _ = self.handle.broadcast(ports::GROUP, msg.to_bytes());
    }

    fn check_sequencer_alive(&mut self) {
        // The transport's fail-stop oracle: the simulated kernel exposes
        // crash state directly (a perfect failure detector), the socket
        // backend reports failure-detector verdicts. The retry path below
        // raises suspicion after repeated fruitless retransmissions but
        // also defers to this confirmation before deposing anyone.
        if self.handle.is_crashed(self.sequencer) {
            self.fail_sequencer();
        }
    }

    fn fail_sequencer(&mut self) {
        self.membership.mark_failed(self.sequencer);
        let Some(new_sequencer) = self.membership.sequencer() else {
            return;
        };
        if new_sequencer == self.sequencer {
            return;
        }
        self.sequencer = new_sequencer;
        self.handle.telemetry().record_traced(
            self.handle.node().0,
            orca_telemetry::FlightKind::Election,
            u64::from(new_sequencer.0),
            self.next_global_seq,
        );
        // Fruitless-retry counts were evidence against the old incumbent;
        // the new sequencer starts with a clean slate (otherwise it is
        // suspected on its very first unacked retry).
        for pending in self.unacked.values_mut() {
            pending.attempts = 0;
        }
        if self.is_sequencer() {
            if crate::sabotage::skip_era_replay() {
                // Sabotaged failover (model-checker self-test): resume from
                // this member's own delivery point with no history dedup
                // and no resync window — the dead sequencer's unseen
                // assignments are reused and retries re-sequenced.
                if self.next_deliver > self.next_global_seq {
                    self.next_global_seq = self.next_deliver;
                }
                let msg = GroupMsg::NewSequencer {
                    sequencer: self.sequencer,
                    next_seq: self.next_global_seq,
                };
                let _ = self.handle.broadcast(ports::GROUP, msg.to_bytes());
                return;
            }
            // Resume numbering after everything this member has seen:
            // delivered history, the reorder buffer, and any number known
            // to exist from status traffic.
            let highest_buffered = self
                .pending_order
                .keys()
                .next_back()
                .copied()
                .unwrap_or(self.next_deliver.saturating_sub(1));
            let resume = highest_buffered
                .max(self.next_deliver.saturating_sub(1))
                .max(self.history.highest_seq())
                .max(self.known_highest)
                + 1;
            if resume > self.next_global_seq {
                self.next_global_seq = resume;
            }
            // The new sequencer serves retransmissions for the old era
            // from its delivery history; requests it merely delivered must
            // dedup like requests it sequenced.
            for (global_seq, entry) in self.history.range(1, self.history.highest_seq()) {
                self.sequenced_ids.entry(entry.id).or_insert(global_seq);
            }
            // Announce, then hold off assigning fresh numbers for two
            // retransmission intervals so survivors can replay assignments
            // of the failed sequencer we never saw (they arrive as SeqData
            // and are adopted, advancing next_global_seq past them; the
            // resync probe re-asks every tick in case a replay is lost).
            self.resync_until = Some(Instant::now() + self.config.retransmit_timeout * 2);
            let msg = GroupMsg::NewSequencer {
                sequencer: self.sequencer,
                next_seq: self.next_global_seq,
            };
            let _ = self.handle.broadcast(ports::GROUP, msg.to_bytes());
        }
    }

    fn retry_unacked(&mut self) {
        let now = Instant::now();
        let timeout = self.config.retransmit_timeout;
        let due: Vec<MsgId> = self
            .unacked
            .iter()
            .filter(|(_, pending)| now.duration_since(pending.last_sent) >= timeout)
            .map(|(&id, _)| id)
            .collect();
        let mut suspect_sequencer = false;
        for id in due {
            let (payload, method, attempts) = {
                let pending = self.unacked.get_mut(&id).expect("due id present");
                pending.last_sent = now;
                pending.attempts += 1;
                (pending.payload.clone(), pending.method, pending.attempts)
            };
            GroupStats::bump(&self.stats.send_retries);
            if attempts >= self.config.suspect_after {
                suspect_sequencer = true;
            }
            self.transmit(id, &payload, method);
        }
        // Fruitless retransmissions raise *suspicion*; the failure
        // detector decides. Failing over on suspicion alone marks a live
        // node failed in the local membership — which is sticky, so two
        // members that each suspect the other's (live, merely resyncing)
        // sequencer elect each other in a cycle and livelock the group.
        // Under fail-stop semantics only a confirmed crash deposes.
        if suspect_sequencer && !self.is_sequencer() && self.handle.is_crashed(self.sequencer) {
            self.fail_sequencer();
        }
    }

    fn repair_gaps(&mut self) {
        let Some(since) = self.gap_since else { return };
        if since.elapsed() < self.config.retransmit_timeout {
            return;
        }
        let highest_buffered = self.pending_order.keys().next_back().copied().unwrap_or(0);
        let highest = highest_buffered.max(self.known_highest);
        if highest < self.next_deliver {
            self.gap_since = None;
            return;
        }
        if self.is_sequencer() {
            if self.in_resync() {
                // Survivors may still be replaying the failed sequencer's
                // assignments (probe_predecessor_era is asking for them);
                // treat nothing as abandoned yet.
                self.gap_since = Some(Instant::now());
                return;
            }
            // We *are* the sequencer: lost copies of our own era are in our
            // history buffer (we store every message we sequence or
            // deliver), so re-inject them locally. Numbers below our
            // assignment point that neither we nor — after a few more
            // survivor probes — anyone else has were abandoned by the
            // failed sequencer: skip them, or delivery would stall.
            let missing = self.history.range(self.next_deliver, highest);
            let present: BTreeSet<u64> = missing.iter().map(|(seq, _)| *seq).collect();
            for (global_seq, entry) in missing {
                self.receive_sequenced(global_seq, entry.id, Some(entry.payload));
            }
            let ceiling = highest.min(self.next_global_seq.saturating_sub(1));
            let holes: Vec<u64> = (self.next_deliver..=ceiling)
                .filter(|seq| {
                    let has_payload = matches!(self.pending_order.get(seq), Some((_, Some(_))));
                    !present.contains(seq) && !has_payload
                })
                .collect();
            if holes.is_empty() {
                self.hole_rounds = 0;
            } else if self.hole_rounds < HOLE_PROBE_ROUNDS {
                self.hole_rounds += 1;
                let msg = GroupMsg::RetransmitRequest {
                    from: self.next_deliver,
                    to: ceiling,
                };
                let _ = self.handle.broadcast(ports::GROUP, msg.to_bytes());
            } else {
                self.hole_rounds = 0;
                for seq in holes {
                    self.skipped.insert(seq);
                }
            }
            self.try_deliver();
            self.gap_since = Some(Instant::now());
            return;
        }
        // Ask for everything from the next expected number up to the highest
        // number known to exist; the sequencer ignores numbers it no longer
        // has.
        GroupStats::bump(&self.stats.retransmit_requests);
        let msg = GroupMsg::RetransmitRequest {
            from: self.next_deliver,
            to: highest,
        };
        let _ = self
            .handle
            .send(self.sequencer, ports::GROUP, msg.to_bytes());
        self.gap_since = Some(Instant::now());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orca_amoeba::network::{Network, NetworkConfig};
    use orca_amoeba::FaultConfig;

    fn start_members(net: &Network, config: &GroupConfig) -> Vec<GroupMember> {
        net.node_ids()
            .into_iter()
            .map(|n| GroupMember::start(net.handle(n), config.clone()))
            .collect()
    }

    fn collect(member: &GroupMember, count: usize, per_msg: Duration) -> Vec<Delivered> {
        (0..count)
            .map(|_| {
                member
                    .recv_timeout(per_msg)
                    .expect("delivery within timeout")
            })
            .collect()
    }

    #[test]
    fn single_broadcast_reaches_all_members_in_order() {
        let net = Network::reliable(4);
        let members = start_members(&net, &GroupConfig::default());
        members[2].broadcast(b"hello".to_vec()).unwrap();
        for member in &members {
            let delivered = member.recv_timeout(Duration::from_secs(2)).unwrap();
            assert_eq!(delivered.global_seq, 1);
            assert_eq!(delivered.payload, b"hello");
            assert_eq!(delivered.id.origin, NodeId(2));
        }
    }

    #[test]
    fn concurrent_broadcasts_identical_total_order() {
        let net = Network::reliable(5);
        let members = start_members(&net, &GroupConfig::default());
        let per_member = 20usize;
        for (i, member) in members.iter().enumerate() {
            for k in 0..per_member {
                member.broadcast(format!("{i}:{k}").into_bytes()).unwrap();
            }
        }
        let total = per_member * members.len();
        let orders: Vec<Vec<(u64, MsgId)>> = members
            .iter()
            .map(|m| {
                collect(m, total, Duration::from_secs(5))
                    .into_iter()
                    .map(|d| (d.global_seq, d.id))
                    .collect()
            })
            .collect();
        for order in &orders[1..] {
            assert_eq!(order, &orders[0]);
        }
        // Sequence numbers are gapless 1..=total.
        let seqs: Vec<u64> = orders[0].iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, (1..=total as u64).collect::<Vec<_>>());
    }

    #[test]
    fn large_messages_use_bb_and_small_use_pb_under_auto() {
        let net = Network::reliable(3);
        let members = start_members(&net, &GroupConfig::default());
        members[1].broadcast(vec![1u8; 10]).unwrap();
        members[1].broadcast(vec![2u8; 50_000]).unwrap();
        for member in &members {
            let _ = collect(member, 2, Duration::from_secs(2));
        }
        let stats = members[1].stats();
        assert_eq!(stats.pb_sent, 1);
        assert_eq!(stats.bb_sent, 1);
    }

    #[test]
    fn lossy_network_still_delivers_everything_in_order() {
        let fault = FaultConfig {
            drop_prob: 0.15,
            duplicate_prob: 0.05,
            reorder_prob: 0.05,
            seed: 7,
        };
        let net = Network::new(NetworkConfig::with_fault(4, fault));
        let config = GroupConfig {
            retransmit_timeout: Duration::from_millis(40),
            ..GroupConfig::default()
        };
        let members = start_members(&net, &config);
        let per_member = 15usize;
        for (i, member) in members.iter().enumerate() {
            for k in 0..per_member {
                member.broadcast(vec![i as u8, k as u8]).unwrap();
            }
        }
        let total = per_member * members.len();
        let orders: Vec<Vec<MsgId>> = members
            .iter()
            .map(|m| {
                collect(m, total, Duration::from_secs(20))
                    .into_iter()
                    .map(|d| d.id)
                    .collect()
            })
            .collect();
        for order in &orders[1..] {
            assert_eq!(order, &orders[0]);
        }
    }

    #[test]
    fn sequencer_crash_elects_new_sequencer_and_traffic_continues() {
        let net = Network::reliable(3);
        let config = GroupConfig {
            retransmit_timeout: Duration::from_millis(30),
            ..GroupConfig::default()
        };
        let members = start_members(&net, &config);
        // Quiesce: one message through the original sequencer first.
        members[1].broadcast(b"before".to_vec()).unwrap();
        for member in &members {
            let _ = member.recv_timeout(Duration::from_secs(2)).unwrap();
        }
        // Kill the sequencer (node 0) and keep broadcasting from node 2.
        net.crash(NodeId(0));
        members[2].broadcast(b"after".to_vec()).unwrap();
        for member in &members[1..] {
            let delivered = member.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(delivered.payload, b"after");
            assert_eq!(delivered.global_seq, 2);
        }
    }

    #[test]
    fn forced_pb_and_bb_policies_are_respected() {
        for (config, expect_pb) in [
            (GroupConfig::always_pb(), true),
            (GroupConfig::always_bb(), false),
        ] {
            let net = Network::reliable(2);
            let members = start_members(&net, &config);
            members[1].broadcast(vec![0u8; 20_000]).unwrap();
            members[1].broadcast(vec![0u8; 8]).unwrap();
            for member in &members {
                let _ = collect(member, 2, Duration::from_secs(2));
            }
            let stats = members[1].stats();
            if expect_pb {
                assert_eq!(stats.pb_sent, 2);
                assert_eq!(stats.bb_sent, 0);
            } else {
                assert_eq!(stats.pb_sent, 0);
                assert_eq!(stats.bb_sent, 2);
            }
        }
    }
}
