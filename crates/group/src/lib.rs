//! Totally-ordered reliable broadcast for the simulated Amoeba network.
//!
//! This crate implements the group-communication layer described in §3.1 of
//! the paper: a sequencer-based protocol family that turns the unreliable
//! hardware broadcast of the network into a *reliable, totally-ordered*
//! broadcast, the property the broadcast runtime system needs to keep object
//! replicas sequentially consistent.
//!
//! Two protocols are provided, selectable per message:
//!
//! * **PB (Point-to-point → Broadcast).** The sender transmits the message
//!   point-to-point to the sequencer; the sequencer assigns the next global
//!   sequence number, stores the message in its history buffer, and
//!   broadcasts it. The full message crosses the wire twice (2·m bytes) but
//!   each member is interrupted only once.
//! * **BB (Broadcast → Broadcast).** The sender broadcasts the full message
//!   itself (tagged with a unique id); the sequencer broadcasts a short
//!   *Accept* carrying the assigned sequence number. Only ~m bytes cross the
//!   wire but every member is interrupted twice.
//!
//! The default policy mirrors the paper: PB for messages that fit in one
//! network packet, BB for larger ones.
//!
//! Members deliver messages strictly in sequence-number order. Gaps (lost
//! broadcasts) are detected by comparing sequence numbers and repaired by
//! asking the sequencer for a retransmission from its history buffer;
//! senders whose message never gets sequenced (lost request) retransmit it.
//! If the sequencer crashes, the remaining members elect the lowest-numbered
//! live node as the new sequencer (see [`member::GroupMember`] for the
//! recovery caveats of this simulation).

pub mod config;
pub mod failure;
pub mod history;
pub mod member;
pub mod messages;
#[doc(hidden)]
pub mod sabotage;
pub mod stats;

pub use config::{GroupConfig, MethodPolicy};
pub use failure::{FailureConfig, FailureDetector, ViewSnapshot};
pub use member::{Delivered, GroupError, GroupMember, GroupSender};
pub use messages::{BroadcastMethod, GroupMsg, MsgId};
pub use stats::{GroupStats, GroupStatsSnapshot};
