//! Chess board representation and move generation for Oracol.
//!
//! A compact 8×8 mailbox board with pseudo-legal move generation plus a
//! legality filter (own king may not be left in check). Castling and
//! en-passant are omitted — Oracol solves tactical positions ("mate in N",
//! material-winning combinations), for which these rules are irrelevant; the
//! simplification is recorded in DESIGN.md.

/// Piece kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Piece {
    /// Pawn.
    Pawn,
    /// Knight.
    Knight,
    /// Bishop.
    Bishop,
    /// Rook.
    Rook,
    /// Queen.
    Queen,
    /// King.
    King,
}

impl Piece {
    /// Material value in centipawns.
    pub fn value(self) -> i32 {
        match self {
            Piece::Pawn => 100,
            Piece::Knight => 320,
            Piece::Bishop => 330,
            Piece::Rook => 500,
            Piece::Queen => 900,
            Piece::King => 20_000,
        }
    }
}

/// Side to move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Color {
    /// White.
    White,
    /// Black.
    Black,
}

impl Color {
    /// The opposing colour.
    pub fn opponent(self) -> Color {
        match self {
            Color::White => Color::Black,
            Color::Black => Color::White,
        }
    }
}

/// One square's contents.
pub type Square = Option<(Color, Piece)>;

/// A move: from-square, to-square, and what the moving piece becomes (only
/// different from the moving piece for pawn promotion, always to a queen).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Move {
    /// Source square index (0..64, a1 = 0, h8 = 63).
    pub from: u8,
    /// Destination square index.
    pub to: u8,
    /// True when the move promotes a pawn (to a queen).
    pub promotes: bool,
}

impl Move {
    /// Encode the move into a small integer (used as the payload of shared
    /// killer/transposition table entries).
    pub fn encode(self) -> u64 {
        u64::from(self.from) | (u64::from(self.to) << 8) | (u64::from(self.promotes as u8) << 16)
    }

    /// Inverse of [`Move::encode`].
    pub fn decode(bits: u64) -> Move {
        Move {
            from: (bits & 0xff) as u8,
            to: ((bits >> 8) & 0xff) as u8,
            promotes: (bits >> 16) & 1 == 1,
        }
    }
}

/// A chess position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Board {
    /// 64 squares, a1 = index 0, h8 = index 63.
    pub squares: [Square; 64],
    /// Side to move.
    pub to_move: Color,
}

fn file(square: usize) -> i32 {
    (square % 8) as i32
}

fn rank(square: usize) -> i32 {
    (square / 8) as i32
}

fn square_at(file: i32, rank: i32) -> Option<usize> {
    if (0..8).contains(&file) && (0..8).contains(&rank) {
        Some((rank * 8 + file) as usize)
    } else {
        None
    }
}

const KNIGHT_STEPS: [(i32, i32); 8] = [
    (1, 2),
    (2, 1),
    (-1, 2),
    (-2, 1),
    (1, -2),
    (2, -1),
    (-1, -2),
    (-2, -1),
];
const KING_STEPS: [(i32, i32); 8] = [
    (1, 0),
    (-1, 0),
    (0, 1),
    (0, -1),
    (1, 1),
    (1, -1),
    (-1, 1),
    (-1, -1),
];
const BISHOP_DIRS: [(i32, i32); 4] = [(1, 1), (1, -1), (-1, 1), (-1, -1)];
const ROOK_DIRS: [(i32, i32); 4] = [(1, 0), (-1, 0), (0, 1), (0, -1)];

impl Board {
    /// An empty board with White to move.
    pub fn empty() -> Board {
        Board {
            squares: [None; 64],
            to_move: Color::White,
        }
    }

    /// The standard chess starting position.
    pub fn start_position() -> Board {
        let mut board = Board::empty();
        let back = [
            Piece::Rook,
            Piece::Knight,
            Piece::Bishop,
            Piece::Queen,
            Piece::King,
            Piece::Bishop,
            Piece::Knight,
            Piece::Rook,
        ];
        for (f, piece) in back.iter().enumerate() {
            board.squares[f] = Some((Color::White, *piece));
            board.squares[8 + f] = Some((Color::White, Piece::Pawn));
            board.squares[48 + f] = Some((Color::Black, Piece::Pawn));
            board.squares[56 + f] = Some((Color::Black, *piece));
        }
        board
    }

    /// Place a piece (test/position construction helper).
    pub fn put(&mut self, square: usize, color: Color, piece: Piece) -> &mut Self {
        self.squares[square] = Some((color, piece));
        self
    }

    /// Zobrist-style hash of the position (simple multiplicative mixing; good
    /// enough for transposition-table indexing in the reproduction).
    pub fn hash(&self) -> u64 {
        let mut h: u64 = match self.to_move {
            Color::White => 0x9e3779b97f4a7c15,
            Color::Black => 0xc2b2ae3d27d4eb4f,
        };
        for (i, square) in self.squares.iter().enumerate() {
            if let Some((color, piece)) = square {
                let code = (i as u64)
                    .wrapping_mul(0x100000001b3)
                    .wrapping_add(*piece as u64 * 7 + (*color as u64) * 97 + 1);
                h ^= code
                    .wrapping_mul(0xff51afd7ed558ccd)
                    .rotate_left((i % 63) as u32);
            }
        }
        h
    }

    /// Square of `color`'s king, if present.
    pub fn king_square(&self, color: Color) -> Option<usize> {
        self.squares
            .iter()
            .position(|s| *s == Some((color, Piece::King)))
    }

    /// True if `square` is attacked by any piece of `attacker`.
    pub fn is_attacked(&self, square: usize, attacker: Color) -> bool {
        let f = file(square);
        let r = rank(square);
        // Pawn attacks.
        let pawn_rank = match attacker {
            Color::White => r - 1,
            Color::Black => r + 1,
        };
        for df in [-1, 1] {
            if let Some(sq) = square_at(f + df, pawn_rank) {
                if self.squares[sq] == Some((attacker, Piece::Pawn)) {
                    return true;
                }
            }
        }
        // Knight attacks.
        for (df, dr) in KNIGHT_STEPS {
            if let Some(sq) = square_at(f + df, r + dr) {
                if self.squares[sq] == Some((attacker, Piece::Knight)) {
                    return true;
                }
            }
        }
        // King attacks.
        for (df, dr) in KING_STEPS {
            if let Some(sq) = square_at(f + df, r + dr) {
                if self.squares[sq] == Some((attacker, Piece::King)) {
                    return true;
                }
            }
        }
        // Sliding attacks.
        for (dirs, pieces) in [
            (&BISHOP_DIRS, [Piece::Bishop, Piece::Queen]),
            (&ROOK_DIRS, [Piece::Rook, Piece::Queen]),
        ] {
            for (df, dr) in dirs.iter() {
                let mut step = 1;
                while let Some(sq) = square_at(f + df * step, r + dr * step) {
                    match self.squares[sq] {
                        None => step += 1,
                        Some((color, piece)) => {
                            if color == attacker && pieces.contains(&piece) {
                                return true;
                            }
                            break;
                        }
                    }
                }
            }
        }
        false
    }

    /// True if the side to move is in check.
    pub fn in_check(&self) -> bool {
        match self.king_square(self.to_move) {
            Some(square) => self.is_attacked(square, self.to_move.opponent()),
            None => false,
        }
    }

    /// Apply a move, returning the new position (the original is unchanged).
    pub fn make_move(&self, mv: Move) -> Board {
        let mut next = self.clone();
        let piece = next.squares[mv.from as usize].take();
        next.squares[mv.to as usize] = if mv.promotes {
            piece.map(|(color, _)| (color, Piece::Queen))
        } else {
            piece
        };
        next.to_move = self.to_move.opponent();
        next
    }

    /// All pseudo-legal moves for the side to move (may leave the king in
    /// check; see [`Board::legal_moves`]).
    pub fn pseudo_legal_moves(&self) -> Vec<Move> {
        let mut moves = Vec::with_capacity(48);
        let us = self.to_move;
        for from in 0..64usize {
            let Some((color, piece)) = self.squares[from] else {
                continue;
            };
            if color != us {
                continue;
            }
            let f = file(from);
            let r = rank(from);
            match piece {
                Piece::Pawn => {
                    let dir = if us == Color::White { 1 } else { -1 };
                    let last_rank = if us == Color::White { 7 } else { 0 };
                    // Single push.
                    if let Some(to) = square_at(f, r + dir) {
                        if self.squares[to].is_none() {
                            moves.push(Move {
                                from: from as u8,
                                to: to as u8,
                                promotes: rank(to) == last_rank,
                            });
                            // Double push from the starting rank.
                            let start_rank = if us == Color::White { 1 } else { 6 };
                            if r == start_rank {
                                if let Some(to2) = square_at(f, r + 2 * dir) {
                                    if self.squares[to2].is_none() {
                                        moves.push(Move {
                                            from: from as u8,
                                            to: to2 as u8,
                                            promotes: false,
                                        });
                                    }
                                }
                            }
                        }
                    }
                    // Captures.
                    for df in [-1, 1] {
                        if let Some(to) = square_at(f + df, r + dir) {
                            if matches!(self.squares[to], Some((c, _)) if c != us) {
                                moves.push(Move {
                                    from: from as u8,
                                    to: to as u8,
                                    promotes: rank(to) == last_rank,
                                });
                            }
                        }
                    }
                }
                Piece::Knight => {
                    for (df, dr) in KNIGHT_STEPS {
                        if let Some(to) = square_at(f + df, r + dr) {
                            if !matches!(self.squares[to], Some((c, _)) if c == us) {
                                moves.push(Move {
                                    from: from as u8,
                                    to: to as u8,
                                    promotes: false,
                                });
                            }
                        }
                    }
                }
                Piece::King => {
                    for (df, dr) in KING_STEPS {
                        if let Some(to) = square_at(f + df, r + dr) {
                            if !matches!(self.squares[to], Some((c, _)) if c == us) {
                                moves.push(Move {
                                    from: from as u8,
                                    to: to as u8,
                                    promotes: false,
                                });
                            }
                        }
                    }
                }
                Piece::Bishop | Piece::Rook | Piece::Queen => {
                    let dirs: &[(i32, i32)] = match piece {
                        Piece::Bishop => &BISHOP_DIRS,
                        Piece::Rook => &ROOK_DIRS,
                        _ => &[
                            (1, 1),
                            (1, -1),
                            (-1, 1),
                            (-1, -1),
                            (1, 0),
                            (-1, 0),
                            (0, 1),
                            (0, -1),
                        ],
                    };
                    for (df, dr) in dirs {
                        let mut step = 1;
                        while let Some(to) = square_at(f + df * step, r + dr * step) {
                            match self.squares[to] {
                                None => {
                                    moves.push(Move {
                                        from: from as u8,
                                        to: to as u8,
                                        promotes: false,
                                    });
                                    step += 1;
                                }
                                Some((c, _)) => {
                                    if c != us {
                                        moves.push(Move {
                                            from: from as u8,
                                            to: to as u8,
                                            promotes: false,
                                        });
                                    }
                                    break;
                                }
                            }
                        }
                    }
                }
            }
        }
        moves
    }

    /// All legal moves (pseudo-legal moves that do not leave the mover's
    /// king attacked).
    pub fn legal_moves(&self) -> Vec<Move> {
        let us = self.to_move;
        self.pseudo_legal_moves()
            .into_iter()
            .filter(|mv| {
                let next = self.make_move(*mv);
                match next.king_square(us) {
                    Some(square) => !next.is_attacked(square, us.opponent()),
                    None => false,
                }
            })
            .collect()
    }

    /// True if the move captures a piece.
    pub fn is_capture(&self, mv: Move) -> bool {
        self.squares[mv.to as usize].is_some()
    }

    /// Static evaluation from the point of view of the side to move:
    /// material plus a small mobility term.
    pub fn evaluate(&self) -> i32 {
        let mut score = 0;
        for square in self.squares.iter().flatten() {
            let (color, piece) = square;
            let value = piece.value();
            if *color == self.to_move {
                score += value;
            } else {
                score -= value;
            }
        }
        score
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perft(board: &Board, depth: u32) -> u64 {
        if depth == 0 {
            return 1;
        }
        board
            .legal_moves()
            .iter()
            .map(|mv| perft(&board.make_move(*mv), depth - 1))
            .sum()
    }

    #[test]
    fn start_position_move_counts() {
        // Without castling/en passant the shallow perft numbers match the
        // standard ones (those rules only matter deeper).
        let board = Board::start_position();
        assert_eq!(board.legal_moves().len(), 20);
        assert_eq!(perft(&board, 2), 400);
        assert_eq!(perft(&board, 3), 8902);
    }

    #[test]
    fn check_detection_and_legality_filter() {
        // White king e1, black rook e8: king may not stay on the e-file.
        let mut board = Board::empty();
        board.put(4, Color::White, Piece::King);
        board.put(60, Color::Black, Piece::Rook);
        assert!(board.in_check());
        let moves = board.legal_moves();
        assert!(!moves.is_empty());
        for mv in &moves {
            let next = board.make_move(*mv);
            let king = next.king_square(Color::White).unwrap();
            assert!(!next.is_attacked(king, Color::Black));
        }
    }

    #[test]
    fn pawn_promotion_generates_queen() {
        let mut board = Board::empty();
        board.put(0, Color::White, Piece::King);
        board.put(63, Color::Black, Piece::King);
        board.put(48 + 1, Color::White, Piece::Pawn); // b7
        let moves: Vec<Move> = board
            .legal_moves()
            .into_iter()
            .filter(|mv| mv.from == 49)
            .collect();
        assert!(moves.iter().all(|mv| mv.promotes));
        let next = board.make_move(moves[0]);
        assert_eq!(
            next.squares[moves[0].to as usize],
            Some((Color::White, Piece::Queen))
        );
    }

    #[test]
    fn move_encode_decode_round_trip() {
        let mv = Move {
            from: 12,
            to: 60,
            promotes: true,
        };
        assert_eq!(Move::decode(mv.encode()), mv);
    }

    #[test]
    fn hash_distinguishes_positions() {
        let a = Board::start_position();
        let mut b = a.clone();
        b.to_move = Color::Black;
        assert_ne!(a.hash(), b.hash());
        let c = a.make_move(a.legal_moves()[0]);
        assert_ne!(a.hash(), c.hash());
    }

    #[test]
    fn evaluation_counts_material() {
        let mut board = Board::empty();
        board.put(0, Color::White, Piece::King);
        board.put(63, Color::Black, Piece::King);
        board.put(27, Color::White, Piece::Queen);
        assert!(board.evaluate() > 800);
        board.to_move = Color::Black;
        assert!(board.evaluate() < -800);
    }
}
