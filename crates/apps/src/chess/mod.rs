//! Oracol — the chess problem solver of §4.3.
//!
//! Oracol looks for mates-in-N and material-winning combinations. Its search
//! is alpha-beta with iterative deepening and quiescence; parallelism comes
//! from dynamically partitioning the search tree (here: the root moves) over
//! the processors through a shared job queue. The killer table and the
//! transposition table can be kept per-worker ([`TableMode::Local`]) or in
//! shared objects ([`TableMode::Shared`]); the paper reports that the shared
//! versions — the killer table especially — are the most efficient.

pub mod board;
pub mod parallel;
pub mod search;

pub use board::{Board, Color, Move, Piece};
pub use parallel::{solve_parallel, ChessResult, TableMode};
pub use search::{
    is_mate_score, search_position, LocalTables, SearchResult, SearchTables, SharedTables,
    MATE_SCORE,
};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A tactical test position with a short description.
#[derive(Debug, Clone)]
pub struct TestPosition {
    /// Human-readable name (shown in benchmark tables).
    pub name: &'static str,
    /// The position.
    pub board: Board,
    /// Search depth Oracol uses on it.
    pub depth: i32,
}

/// The tactical positions used by the chess benchmarks: a couple of
/// constructed mates plus material-winning middlegame positions.
pub fn tactical_positions() -> Vec<TestPosition> {
    let mut positions = Vec::new();

    // Back-rank mate in one.
    let mut back_rank = Board::empty();
    back_rank.put(0, Color::White, Piece::Rook);
    back_rank.put(6, Color::White, Piece::King);
    back_rank.put(62, Color::Black, Piece::King);
    back_rank.put(53, Color::Black, Piece::Pawn);
    back_rank.put(54, Color::Black, Piece::Pawn);
    back_rank.put(55, Color::Black, Piece::Pawn);
    positions.push(TestPosition {
        name: "back-rank mate",
        board: back_rank,
        depth: 4,
    });

    // Two rooks ladder mate (mate in a few moves).
    let mut ladder = Board::empty();
    ladder.put(7, Color::White, Piece::Rook); // h1
    ladder.put(15, Color::White, Piece::Rook); // h2
    ladder.put(2, Color::White, Piece::King); // c1
    ladder.put(59, Color::Black, Piece::King); // d8
    positions.push(TestPosition {
        name: "two-rook ladder",
        board: ladder,
        depth: 4,
    });

    // Queen wins an undefended rook.
    let mut material = Board::empty();
    material.put(0, Color::White, Piece::King);
    material.put(63, Color::Black, Piece::King);
    material.put(3, Color::White, Piece::Queen);
    material.put(27, Color::Black, Piece::Rook);
    material.put(36, Color::Black, Piece::Knight);
    positions.push(TestPosition {
        name: "win material",
        board: material,
        depth: 4,
    });

    // A random middlegame position (seeded, deterministic).
    positions.push(TestPosition {
        name: "middlegame",
        board: random_middlegame(12, 1993),
        depth: 4,
    });

    positions
}

/// Play `plies` random legal moves from the starting position (seeded), which
/// gives a deterministic "middlegame" benchmark position.
pub fn random_middlegame(plies: usize, seed: u64) -> Board {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut board = Board::start_position();
    for _ in 0..plies {
        let moves = board.legal_moves();
        if moves.is_empty() {
            break;
        }
        // Avoid immediately hanging the queen so positions stay "quiet".
        let mv = moves[rng.gen_range(0..moves.len())];
        board = board.make_move(mv);
    }
    board
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tactical_positions_are_legal_and_searchable() {
        for position in tactical_positions() {
            assert!(
                !position.board.legal_moves().is_empty(),
                "{} has no moves",
                position.name
            );
            let mut tables = LocalTables::new();
            let result = search_position(&position.board, 2, &mut tables);
            assert!(result.nodes > 0);
        }
    }

    #[test]
    fn random_middlegame_is_deterministic() {
        assert_eq!(random_middlegame(10, 7), random_middlegame(10, 7));
        assert_ne!(
            random_middlegame(10, 7).hash(),
            random_middlegame(10, 8).hash()
        );
    }

    #[test]
    fn back_rank_position_is_a_mate_in_one() {
        let positions = tactical_positions();
        let mut tables = LocalTables::new();
        let result = search_position(&positions[0].board, 2, &mut tables);
        assert!(is_mate_score(result.score, 2));
    }
}
