//! Oracol's search: alpha-beta with iterative deepening, quiescence,
//! a killer table and a transposition table.
//!
//! The two tables are deliberately hidden behind [`SearchTables`]: "both the
//! killer table and the transposition table can be implemented as local data
//! structures or as shared objects … the two versions differ in only a few
//! lines of code" (§4.3). [`LocalTables`] keeps them private to one worker;
//! [`SharedTables`] stores them in shared `KvTable` objects so every worker
//! benefits from every other worker's work at the price of communication.

use std::collections::HashMap;

use orca_core::objects::{KvTable, TableEntry};
use orca_core::OrcaNode;

use super::board::{Board, Move};

/// Score assigned to mate (minus the ply distance, so faster mates score
/// higher).
pub const MATE_SCORE: i32 = 100_000;

/// Result of searching one position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchResult {
    /// Best move found at the root (None when the position is terminal).
    pub best_move: Option<Move>,
    /// Score from the point of view of the side to move.
    pub score: i32,
    /// Nodes searched (the work metric of §4.3).
    pub nodes: u64,
}

/// Abstraction over the killer and transposition tables.
pub trait SearchTables {
    /// Look up a position in the transposition table.
    fn tt_get(&mut self, key: u64) -> Option<TableEntry>;
    /// Store a position in the transposition table.
    fn tt_put(&mut self, key: u64, entry: TableEntry);
    /// Current killer move for a ply, if any.
    fn killer_get(&mut self, ply: u32) -> Option<Move>;
    /// Record a killer move for a ply.
    fn killer_put(&mut self, ply: u32, mv: Move);
}

/// Tables private to one search (no communication, no sharing of results).
#[derive(Debug, Default)]
pub struct LocalTables {
    tt: HashMap<u64, TableEntry>,
    killers: HashMap<u32, Move>,
}

impl LocalTables {
    /// Create empty local tables.
    pub fn new() -> Self {
        LocalTables::default()
    }

    /// Number of transposition-table entries stored.
    pub fn tt_len(&self) -> usize {
        self.tt.len()
    }
}

impl SearchTables for LocalTables {
    fn tt_get(&mut self, key: u64) -> Option<TableEntry> {
        self.tt.get(&key).copied()
    }
    fn tt_put(&mut self, key: u64, entry: TableEntry) {
        let slot = self.tt.entry(key).or_insert(entry);
        if entry.depth >= slot.depth {
            *slot = entry;
        }
    }
    fn killer_get(&mut self, ply: u32) -> Option<Move> {
        self.killers.get(&ply).copied()
    }
    fn killer_put(&mut self, ply: u32, mv: Move) {
        self.killers.insert(ply, mv);
    }
}

/// Tables stored in shared objects: every worker reads and writes the same
/// killer and transposition tables through its node's runtime system.
pub struct SharedTables {
    ctx: OrcaNode,
    transposition: KvTable,
    killer: KvTable,
}

impl SharedTables {
    /// Bind shared tables to the invoking process's context.
    pub fn new(ctx: OrcaNode, transposition: KvTable, killer: KvTable) -> Self {
        SharedTables {
            ctx,
            transposition,
            killer,
        }
    }
}

impl SearchTables for SharedTables {
    fn tt_get(&mut self, key: u64) -> Option<TableEntry> {
        self.transposition.get(&self.ctx, key).unwrap_or(None)
    }
    fn tt_put(&mut self, key: u64, entry: TableEntry) {
        let _ = self.transposition.put(&self.ctx, key, entry);
    }
    fn killer_get(&mut self, ply: u32) -> Option<Move> {
        self.killer
            .get(&self.ctx, u64::from(ply))
            .ok()
            .flatten()
            .map(|entry| Move::decode(entry.aux))
    }
    fn killer_put(&mut self, ply: u32, mv: Move) {
        let entry = TableEntry {
            depth: 0,
            value: 0,
            aux: mv.encode(),
        };
        let _ = self.killer.put(&self.ctx, u64::from(ply), entry);
    }
}

/// Quiescence search: only captures, to avoid the horizon effect.
fn quiesce(board: &Board, mut alpha: i32, beta: i32, nodes: &mut u64) -> i32 {
    *nodes += 1;
    let stand_pat = board.evaluate();
    if stand_pat >= beta {
        return beta;
    }
    alpha = alpha.max(stand_pat);
    let mut captures: Vec<Move> = board
        .legal_moves()
        .into_iter()
        .filter(|mv| board.is_capture(*mv))
        .collect();
    // Most valuable victim first.
    captures.sort_by_key(|mv| {
        board.squares[mv.to as usize]
            .map(|(_, piece)| -piece.value())
            .unwrap_or(0)
    });
    for mv in captures {
        let score = -quiesce(&board.make_move(mv), -beta, -alpha, nodes);
        if score >= beta {
            return beta;
        }
        alpha = alpha.max(score);
    }
    alpha
}

#[allow(clippy::too_many_arguments)]
fn alpha_beta(
    board: &Board,
    depth: i32,
    ply: u32,
    mut alpha: i32,
    beta: i32,
    tables: &mut dyn SearchTables,
    nodes: &mut u64,
) -> i32 {
    *nodes += 1;
    let key = board.hash();
    if let Some(entry) = tables.tt_get(key) {
        if entry.depth >= depth {
            return entry.value as i32;
        }
    }
    let moves = board.legal_moves();
    if moves.is_empty() {
        return if board.in_check() {
            -(MATE_SCORE - ply as i32)
        } else {
            0
        };
    }
    if depth <= 0 {
        return quiesce(board, alpha, beta, nodes);
    }
    let ordered = order_moves(board, moves, tables.killer_get(ply));
    let mut best = -MATE_SCORE;
    for mv in ordered {
        let score = -alpha_beta(
            &board.make_move(mv),
            depth - 1,
            ply + 1,
            -beta,
            -alpha,
            tables,
            nodes,
        );
        if score > best {
            best = score;
        }
        if best > alpha {
            alpha = best;
        }
        if alpha >= beta {
            // Cutoff: remember the refutation as the killer move for this ply.
            tables.killer_put(ply, mv);
            break;
        }
    }
    tables.tt_put(
        key,
        TableEntry {
            depth,
            value: i64::from(best),
            aux: 0,
        },
    );
    best
}

fn order_moves(board: &Board, mut moves: Vec<Move>, killer: Option<Move>) -> Vec<Move> {
    moves.sort_by_key(|mv| {
        let mut score = 0i32;
        if Some(*mv) == killer {
            score -= 10_000;
        }
        if let Some((_, captured)) = board.squares[mv.to as usize] {
            score -= captured.value();
        }
        if mv.promotes {
            score -= 800;
        }
        score
    });
    moves
}

/// Search one root move to `depth - 1` and return its score from the root
/// player's point of view (used by the parallel root-splitting search).
pub fn search_root_move(
    board: &Board,
    mv: Move,
    depth: i32,
    tables: &mut dyn SearchTables,
) -> (i32, u64) {
    let mut nodes = 0;
    let score = -alpha_beta(
        &board.make_move(mv),
        depth - 1,
        1,
        -MATE_SCORE,
        MATE_SCORE,
        tables,
        &mut nodes,
    );
    (score, nodes)
}

/// Full search of a position with iterative deepening up to `max_depth`.
pub fn search_position(
    board: &Board,
    max_depth: i32,
    tables: &mut dyn SearchTables,
) -> SearchResult {
    let mut nodes = 0;
    let mut best_move = None;
    let mut best_score = -MATE_SCORE;
    for depth in 1..=max_depth {
        let mut depth_best = None;
        let mut depth_score = -MATE_SCORE;
        let moves = order_moves(board, board.legal_moves(), tables.killer_get(0));
        if moves.is_empty() {
            return SearchResult {
                best_move: None,
                score: if board.in_check() { -MATE_SCORE } else { 0 },
                nodes,
            };
        }
        for mv in moves {
            let mut child_nodes = 0;
            let score = -alpha_beta(
                &board.make_move(mv),
                depth - 1,
                1,
                -MATE_SCORE,
                -depth_score.max(-MATE_SCORE),
                tables,
                &mut child_nodes,
            );
            nodes += child_nodes;
            if score > depth_score {
                depth_score = score;
                depth_best = Some(mv);
            }
        }
        best_move = depth_best;
        best_score = depth_score;
    }
    SearchResult {
        best_move,
        score: best_score,
        nodes,
    }
}

/// True if `score` means the side to move delivers mate within `plies` plies.
pub fn is_mate_score(score: i32, plies: u32) -> bool {
    score >= MATE_SCORE - plies as i32
}

#[cfg(test)]
mod tests {
    use super::super::board::{Color, Piece};
    use super::*;

    /// Back-rank mate in one: white Ra1, white Kg1 vs black Kg8 with pawns
    /// f7 g7 h7. Ra1-a8 is mate.
    fn mate_in_one_position() -> Board {
        let mut board = Board::empty();
        board.put(0, Color::White, Piece::Rook); // a1
        board.put(6, Color::White, Piece::King); // g1
        board.put(62, Color::Black, Piece::King); // g8
        board.put(53, Color::Black, Piece::Pawn); // f7
        board.put(54, Color::Black, Piece::Pawn); // g7
        board.put(55, Color::Black, Piece::Pawn); // h7
        board
    }

    #[test]
    fn finds_mate_in_one() {
        let board = mate_in_one_position();
        let mut tables = LocalTables::new();
        let result = search_position(&board, 2, &mut tables);
        assert!(is_mate_score(result.score, 2), "score = {}", result.score);
        let mv = result.best_move.unwrap();
        assert_eq!(mv.from, 0);
        assert_eq!(mv.to, 56); // a8
    }

    #[test]
    fn prefers_winning_material() {
        // White queen can capture an undefended black rook.
        let mut board = Board::empty();
        board.put(0, Color::White, Piece::King);
        board.put(63, Color::Black, Piece::King);
        board.put(3, Color::White, Piece::Queen); // d1
        board.put(27, Color::Black, Piece::Rook); // d4, undefended
        let mut tables = LocalTables::new();
        let result = search_position(&board, 3, &mut tables);
        let mv = result.best_move.unwrap();
        assert_eq!(mv.to, 27, "queen should capture the rook");
        assert!(result.score > 300);
    }

    #[test]
    fn transposition_table_reduces_nodes() {
        let board = Board::start_position();
        let mut with_tt = LocalTables::new();
        let first = search_position(&board, 4, &mut with_tt);
        // Searching again with a warm table must be much cheaper.
        let second = search_position(&board, 4, &mut with_tt);
        assert!(second.nodes < first.nodes);
        assert!(with_tt.tt_len() > 0);
    }

    #[test]
    fn stalemate_is_a_draw_score() {
        // Black king a8, white queen c7, white king c8->no... use classic
        // stalemate: black Ka8, white Qb6, white Kc6, black to move.
        let mut board = Board::empty();
        board.put(56, Color::Black, Piece::King); // a8
        board.put(41, Color::White, Piece::Queen); // b6
        board.put(42, Color::White, Piece::King); // c6
        board.to_move = Color::Black;
        assert!(board.legal_moves().is_empty());
        assert!(!board.in_check());
        let mut tables = LocalTables::new();
        let result = search_position(&board, 3, &mut tables);
        assert_eq!(result.score, 0);
        assert!(result.best_move.is_none());
    }
}
