//! Parallel Oracol: root moves are distributed over worker processes through
//! a shared job queue; the best score found so far is kept in a shared
//! integer used for pruning (mirroring the paper's description of a job
//! queue plus shared search tables).

use orca_core::objects::{IntObject, IntOp, JobQueue, KvTable, SharedInt};
use orca_core::{replicated_workers, ObjectHandle, OrcaRuntime};
use orca_wire::{Decoder, Encoder, Wire, WireResult};

use super::board::{Board, Move};
use super::search::{search_root_move, LocalTables, SearchTables, SharedTables, MATE_SCORE};
use crate::metrics::{ParallelRunReport, WorkerWork};

/// Whether the killer and transposition tables are per-worker or shared
/// objects (§4.3 compares the two).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableMode {
    /// Each worker keeps private tables; no communication, no sharing.
    Local,
    /// One shared transposition table and one shared killer table for all
    /// workers.
    Shared,
}

/// One root-splitting job: search this root move to the given depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChessJob {
    /// Encoded root move.
    pub mv: u64,
    /// Search depth.
    pub depth: i32,
}

impl Wire for ChessJob {
    fn encode(&self, enc: &mut Encoder) {
        self.mv.encode(enc);
        self.depth.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(ChessJob {
            mv: Wire::decode(dec)?,
            depth: Wire::decode(dec)?,
        })
    }
}

/// Result of a parallel chess solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChessResult {
    /// Best root move.
    pub best_move: Option<Move>,
    /// Score of the best move (side to move's point of view).
    pub score: i32,
    /// Total nodes searched by all workers.
    pub nodes: u64,
}

/// Solve a position in parallel on `runtime` with `workers` workers.
pub fn solve_parallel(
    runtime: &OrcaRuntime,
    board: &Board,
    depth: i32,
    workers: usize,
    tables: TableMode,
) -> (ChessResult, ParallelRunReport) {
    let main = runtime.main();
    let queue: JobQueue<ChessJob> = JobQueue::create(main).expect("job queue");
    // Best score so far, stored negated so the shared MinAssign can be used
    // as a MaxAssign.
    let best_neg_score: SharedInt = SharedInt::create(main, i64::from(MATE_SCORE)).expect("best");
    // Best (score, move) pair packed into one shared integer so the winning
    // move can be recovered atomically: higher score wins, ties by move bits.
    // Values are stored negated so the indivisible MinAssign acts as a
    // maximum; the initial MAX therefore means "no result yet".
    let best_packed = SharedInt::create(main, i64::MAX).expect("best packed");
    let shared_tt = KvTable::create(main).expect("shared transposition table");
    let shared_killer = KvTable::create(main).expect("shared killer table");

    let root_moves = board.legal_moves();
    let jobs: Vec<ChessJob> = root_moves
        .iter()
        .map(|mv| ChessJob {
            mv: mv.encode(),
            depth,
        })
        .collect();
    queue.add_all(main, &jobs).expect("enqueue root moves");
    queue.close(main).expect("close queue");

    let board_clone = board.clone();
    let reports = replicated_workers(runtime, workers, move |_worker, ctx| {
        let board = board_clone.clone();
        let mut work = WorkerWork::default();
        let mut local: LocalTables = LocalTables::new();
        let mut shared = SharedTables::new(ctx.clone(), shared_tt, shared_killer);
        while let Some(job) = queue.get(&ctx).expect("dequeue") {
            work.jobs += 1;
            let mv = Move::decode(job.mv);
            let tables_ref: &mut dyn SearchTables = match tables {
                TableMode::Local => &mut local,
                TableMode::Shared => &mut shared,
            };
            let (score, nodes) = search_root_move(&board, mv, job.depth, tables_ref);
            work.units += nodes;
            // Publish the (score, move) pair; MinAssign on the negated packed
            // value keeps the maximum.
            let packed = pack(score, job.mv);
            best_packed
                .min_assign(&ctx, -packed)
                .expect("publish best move");
            best_neg_score
                .min_assign(&ctx, i64::from(-score))
                .expect("publish best score");
        }
        work
    });

    let report = ParallelRunReport::new(reports);
    // The Value read below is local to main's replica, which can lag behind
    // the final worker writes; MinAssign(i64::MAX) never changes the value
    // but, as a write, is sequenced after every worker write and completes
    // only once main's replica has applied them all.
    best_packed
        .min_assign(runtime.main(), i64::MAX)
        .expect("sync barrier");
    let packed = -runtime
        .main()
        .invoke::<IntObject>(best_packed.handle(), &IntOp::Value)
        .expect("read best");
    let (score, mv_bits) = unpack(packed);
    let best_move = if root_moves.is_empty() {
        None
    } else {
        Some(Move::decode(mv_bits))
    };
    let result = ChessResult {
        best_move,
        score,
        nodes: report.total_units(),
    };
    (result, report)
}

/// Pack a score and an encoded move into one ordered integer (score in the
/// high bits so comparisons order by score first).
fn pack(score: i32, mv: u64) -> i64 {
    ((i64::from(score)) << 24) | (mv as i64 & 0xff_ffff)
}

fn unpack(packed: i64) -> (i32, u64) {
    let score = (packed >> 24) as i32;
    let mv = (packed & 0xff_ffff) as u64;
    (score, mv)
}

/// Handles needed by workers when the caller wants to manage shared tables
/// itself (exposed for the table-mode benchmark).
pub type SharedTableHandles = (
    ObjectHandle<orca_core::objects::KvTableObject>,
    ObjectHandle<orca_core::objects::KvTableObject>,
);

#[cfg(test)]
mod tests {
    use super::super::search::{is_mate_score, search_position};
    use super::super::tactical_positions;
    use super::*;

    #[test]
    fn pack_orders_by_score() {
        assert!(pack(100, 5) > pack(50, 200));
        assert!(pack(-10, 0) > pack(-500, 7));
        let (score, mv) = unpack(pack(-123, 77));
        assert_eq!(score, -123);
        assert_eq!(mv, 77);
    }

    #[test]
    fn parallel_finds_the_same_score_as_sequential() {
        let position = &tactical_positions()[0];
        let runtime = OrcaRuntime::standard(2);
        let mut tables = LocalTables::new();
        let sequential = search_position(&position.board, 2, &mut tables);
        let (parallel, report) = solve_parallel(&runtime, &position.board, 2, 2, TableMode::Local);
        assert!(is_mate_score(sequential.score, 2));
        assert!(is_mate_score(parallel.score, 2));
        assert_eq!(parallel.best_move.map(|m| m.to), Some(56)); // Ra8 mate
        assert_eq!(report.workers(), 2);
        assert!(report.total_jobs() >= position.board.legal_moves().len() as u64);
    }

    #[test]
    fn shared_tables_mode_also_finds_the_tactic() {
        let position = &tactical_positions()[2]; // win material
        let runtime = OrcaRuntime::standard(2);
        let (result, _) = solve_parallel(&runtime, &position.board, 3, 2, TableMode::Shared);
        assert!(result.score > 300);
        assert_eq!(result.best_move.map(|m| m.to), Some(27));
    }

    #[test]
    fn chess_job_codec() {
        let job = ChessJob { mv: 513, depth: 5 };
        assert_eq!(ChessJob::from_bytes(&job.to_bytes()).unwrap(), job);
    }
}
