//! The Arc Consistency Problem (§4.2, Fig. 3).
//!
//! Input: variables `V0..Vn`, each with a finite domain of integer values,
//! and binary constraints of the form `Vi (+ c) < Vj`, `Vi != Vj + c`, etc.
//! The goal is the maximal set of values for each variable such that every
//! constraint can still be satisfied (arc consistency).
//!
//! The Orca program statically partitions the variables over the worker
//! processes and uses four shared objects, exactly as described in the
//! paper:
//!
//! * `domain` — an application-defined object holding the value set of every
//!   variable, with an indivisible `RemoveValue` operation;
//! * `work` — a boolean array: `work[v]` is true when variable `v` must be
//!   rechecked;
//! * `quit` — a boolean flag set when some variable's set becomes empty
//!   (no solution);
//! * `result` — a boolean array with one entry per process, true when that
//!   process has no more work; the program terminates when all `work`
//!   entries are false and all `result` entries are true.

use std::collections::BTreeSet;

use orca_core::objects::{BoolArray, BoolFlag};
use orca_core::{replicated_workers, ObjectHandle, OrcaNode, OrcaRuntime};
use orca_object::{ObjectType, OpKind, OpOutcome};
use orca_wire::{Decoder, Encoder, Wire, WireError, WireResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::metrics::{ParallelRunReport, WorkerWork};

/// A binary constraint between two variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Constraint {
    /// `Va + offset < Vb`
    Less {
        /// Left variable.
        a: u32,
        /// Right variable.
        b: u32,
        /// Offset added to `Va`.
        offset: i32,
    },
    /// `Va != Vb + offset`
    NotEqual {
        /// Left variable.
        a: u32,
        /// Right variable.
        b: u32,
        /// Offset added to `Vb`.
        offset: i32,
    },
}

impl Constraint {
    /// The two variables the constraint involves.
    pub fn variables(&self) -> (u32, u32) {
        match self {
            Constraint::Less { a, b, .. } | Constraint::NotEqual { a, b, .. } => (*a, *b),
        }
    }

    /// True if assigning `va` to the first variable and `vb` to the second
    /// satisfies the constraint.
    pub fn satisfied(&self, va: i32, vb: i32) -> bool {
        match self {
            Constraint::Less { offset, .. } => va + offset < vb,
            Constraint::NotEqual { offset, .. } => va != vb + offset,
        }
    }
}

impl Wire for Constraint {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            Constraint::Less { a, b, offset } => {
                enc.put_u8(0);
                a.encode(enc);
                b.encode(enc);
                offset.encode(enc);
            }
            Constraint::NotEqual { a, b, offset } => {
                enc.put_u8(1);
                a.encode(enc);
                b.encode(enc);
                offset.encode(enc);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        match dec.get_u8()? {
            0 => Ok(Constraint::Less {
                a: Wire::decode(dec)?,
                b: Wire::decode(dec)?,
                offset: Wire::decode(dec)?,
            }),
            1 => Ok(Constraint::NotEqual {
                a: Wire::decode(dec)?,
                b: Wire::decode(dec)?,
                offset: Wire::decode(dec)?,
            }),
            tag => Err(WireError::InvalidTag {
                type_name: "Constraint",
                tag: u64::from(tag),
            }),
        }
    }
}

/// An ACP instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AcpInstance {
    /// Number of variables.
    pub variables: usize,
    /// Initial domain of every variable (`0..domain_size`).
    pub domain_size: i32,
    /// The constraints.
    pub constraints: Vec<Constraint>,
}

impl AcpInstance {
    /// Generate a random instance. The paper's Fig. 3 uses 64 variables; the
    /// constraint graph here is a sparse random graph of comparison
    /// constraints, which produces plenty of propagation work.
    pub fn random(variables: usize, domain_size: i32, constraints: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut list = Vec::with_capacity(constraints);
        for _ in 0..constraints {
            let a = rng.gen_range(0..variables as u32);
            let mut b = rng.gen_range(0..variables as u32);
            while b == a {
                b = rng.gen_range(0..variables as u32);
            }
            let offset = rng.gen_range(-2..3);
            if rng.gen_bool(0.7) {
                list.push(Constraint::Less { a, b, offset });
            } else {
                list.push(Constraint::NotEqual { a, b, offset });
            }
        }
        AcpInstance {
            variables,
            domain_size,
            constraints: list,
        }
    }

    /// Constraints that involve variable `v`.
    pub fn constraints_of(&self, v: u32) -> Vec<Constraint> {
        self.constraints
            .iter()
            .copied()
            .filter(|c| {
                let (a, b) = c.variables();
                a == v || b == v
            })
            .collect()
    }

    /// Variables that share a constraint with `v`.
    pub fn neighbours(&self, v: u32) -> Vec<u32> {
        let mut out = BTreeSet::new();
        for c in &self.constraints {
            let (a, b) = c.variables();
            if a == v {
                out.insert(b);
            } else if b == v {
                out.insert(a);
            }
        }
        out.into_iter().collect()
    }
}

/// The shared `domain` object: one value set per variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DomainObject;

/// Operations of [`DomainObject`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DomainOp {
    /// Remove `value` from variable `var`'s set (write). Returns the new set
    /// size (0 means the problem has no solution).
    RemoveValue {
        /// Variable index.
        var: u32,
        /// Value to remove.
        value: i32,
    },
    /// Return variable `var`'s current value set (read).
    GetSet(u32),
    /// Return the size of variable `var`'s set (read).
    SizeOf(u32),
    /// Return the sizes of all value sets (read) — used to extract the final
    /// fixpoint.
    AllSets,
}

impl Wire for DomainOp {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            DomainOp::RemoveValue { var, value } => {
                enc.put_u8(0);
                var.encode(enc);
                value.encode(enc);
            }
            DomainOp::GetSet(var) => {
                enc.put_u8(1);
                var.encode(enc);
            }
            DomainOp::SizeOf(var) => {
                enc.put_u8(2);
                var.encode(enc);
            }
            DomainOp::AllSets => enc.put_u8(3),
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        match dec.get_u8()? {
            0 => Ok(DomainOp::RemoveValue {
                var: Wire::decode(dec)?,
                value: Wire::decode(dec)?,
            }),
            1 => Ok(DomainOp::GetSet(Wire::decode(dec)?)),
            2 => Ok(DomainOp::SizeOf(Wire::decode(dec)?)),
            3 => Ok(DomainOp::AllSets),
            tag => Err(WireError::InvalidTag {
                type_name: "DomainOp",
                tag: u64::from(tag),
            }),
        }
    }
}

/// Reply type of [`DomainObject`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DomainReply {
    /// New (or current) size of one set.
    Size(u64),
    /// One variable's value set.
    Set(Vec<i32>),
    /// Every variable's value set.
    AllSets(Vec<Vec<i32>>),
}

impl Wire for DomainReply {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            DomainReply::Size(n) => {
                enc.put_u8(0);
                n.encode(enc);
            }
            DomainReply::Set(values) => {
                enc.put_u8(1);
                values.encode(enc);
            }
            DomainReply::AllSets(sets) => {
                enc.put_u8(2);
                sets.encode(enc);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        match dec.get_u8()? {
            0 => Ok(DomainReply::Size(Wire::decode(dec)?)),
            1 => Ok(DomainReply::Set(Wire::decode(dec)?)),
            2 => Ok(DomainReply::AllSets(Wire::decode(dec)?)),
            tag => Err(WireError::InvalidTag {
                type_name: "DomainReply",
                tag: u64::from(tag),
            }),
        }
    }
}

impl ObjectType for DomainObject {
    type State = Vec<Vec<i32>>;
    type Op = DomainOp;
    type Reply = DomainReply;

    const TYPE_NAME: &'static str = "apps.AcpDomain";

    fn kind(op: &Self::Op) -> OpKind {
        match op {
            DomainOp::RemoveValue { .. } => OpKind::Write,
            DomainOp::GetSet(_) | DomainOp::SizeOf(_) | DomainOp::AllSets => OpKind::Read,
        }
    }

    fn apply(state: &mut Self::State, op: &Self::Op) -> OpOutcome<Self::Reply> {
        match op {
            DomainOp::RemoveValue { var, value } => {
                let set = &mut state[*var as usize];
                set.retain(|v| v != value);
                OpOutcome::Done(DomainReply::Size(set.len() as u64))
            }
            DomainOp::GetSet(var) => {
                OpOutcome::Done(DomainReply::Set(state[*var as usize].clone()))
            }
            DomainOp::SizeOf(var) => {
                OpOutcome::Done(DomainReply::Size(state[*var as usize].len() as u64))
            }
            DomainOp::AllSets => OpOutcome::Done(DomainReply::AllSets(state.clone())),
        }
    }
}

/// Result of an ACP solve: the arc-consistent value sets (empty vector means
/// "no solution") plus the number of constraint revisions performed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AcpSolution {
    /// Final value set of every variable.
    pub domains: Vec<Vec<i32>>,
    /// True if some variable ended with an empty set.
    pub no_solution: bool,
    /// Constraint revisions performed (the work metric).
    pub revisions: u64,
}

/// One revision step: remove from `var`'s set every value that has no
/// support in `other`'s set under `constraint`. Returns the removed values.
fn revise(
    constraint: &Constraint,
    var: u32,
    var_set: &[i32],
    other: u32,
    other_set: &[i32],
) -> Vec<i32> {
    let (a, b) = constraint.variables();
    var_set
        .iter()
        .copied()
        .filter(|&value| {
            let supported = other_set.iter().copied().any(|other_value| {
                if var == a && other == b {
                    constraint.satisfied(value, other_value)
                } else {
                    constraint.satisfied(other_value, value)
                }
            });
            !supported
        })
        .collect()
}

/// Sequential AC fixpoint (the straightforward algorithm of the paper).
pub fn solve_sequential(instance: &AcpInstance) -> AcpSolution {
    let mut domains: Vec<Vec<i32>> = (0..instance.variables)
        .map(|_| (0..instance.domain_size).collect())
        .collect();
    let mut work: Vec<bool> = vec![true; instance.variables];
    let mut revisions = 0u64;
    while let Some(var) = work.iter().position(|w| *w) {
        work[var] = false;
        let var = var as u32;
        for constraint in instance.constraints_of(var) {
            let (a, b) = constraint.variables();
            let other = if a == var { b } else { a };
            revisions += 1;
            let removed = revise(
                &constraint,
                var,
                &domains[var as usize],
                other,
                &domains[other as usize],
            );
            if removed.is_empty() {
                continue;
            }
            domains[var as usize].retain(|v| !removed.contains(v));
            if domains[var as usize].is_empty() {
                return AcpSolution {
                    domains,
                    no_solution: true,
                    revisions,
                };
            }
            // Every neighbour of `var` must be rechecked.
            for neighbour in instance.neighbours(var) {
                work[neighbour as usize] = true;
            }
            work[var as usize] = true;
        }
    }
    AcpSolution {
        domains,
        no_solution: false,
        revisions,
    }
}

/// Parallel ACP with the paper's object decomposition. Variables are
/// statically partitioned over `workers` worker processes.
pub fn solve_parallel(
    runtime: &OrcaRuntime,
    instance: &AcpInstance,
    workers: usize,
) -> (AcpSolution, ParallelRunReport) {
    let main = runtime.main();
    let initial_domains: Vec<Vec<i32>> = (0..instance.variables)
        .map(|_| (0..instance.domain_size).collect())
        .collect();
    let domain: ObjectHandle<DomainObject> = main
        .create::<DomainObject>(&initial_domains)
        .expect("domain object");
    let work = BoolArray::create(main, instance.variables, true).expect("work object");
    let quit = BoolFlag::create(main, false).expect("quit object");
    let result = BoolArray::create(main, workers, false).expect("result object");

    let instance_clone = instance.clone();
    let reports = replicated_workers(runtime, workers, move |worker, ctx| {
        let instance = instance_clone.clone();
        let mut stats = WorkerWork::default();
        // Static partition of the variables over the workers, as in the
        // hypercube program the paper compares against.
        let mine: Vec<u32> = (0..instance.variables as u32)
            .filter(|v| (*v as usize) % workers == worker)
            .collect();
        let mut announced_idle = false;
        loop {
            if quit.get(&ctx).expect("quit flag") {
                break;
            }
            let mut did_work = false;
            for &var in &mine {
                if !work.get(&ctx, var).expect("work flag") {
                    continue;
                }
                if announced_idle {
                    result.set(&ctx, worker as u32, false).expect("busy again");
                    announced_idle = false;
                }
                work.set(&ctx, var, false).expect("clear work flag");
                did_work = true;
                stats.jobs += 1;
                let reduced = recheck_variable(&ctx, &instance, domain, var, &mut stats);
                match reduced {
                    RecheckOutcome::Empty => {
                        quit.set(&ctx, true).expect("set quit");
                        break;
                    }
                    RecheckOutcome::Reduced => {
                        let neighbours = instance.neighbours(var);
                        work.set_all_of(&ctx, neighbours).expect("mark neighbours");
                        // The variable itself must also be rechecked against
                        // its other constraints after a reduction.
                        work.set(&ctx, var, true).expect("remark var");
                    }
                    RecheckOutcome::Unchanged => {}
                }
            }
            if did_work {
                continue;
            }
            // Willing to terminate: publish the claim and test the global
            // termination condition. Reading `result` before `work` is what
            // makes the test safe: any work created before the last worker
            // announced idleness is guaranteed to be visible.
            if !announced_idle {
                result.set(&ctx, worker as u32, true).expect("result entry");
                announced_idle = true;
            }
            let all_idle = result.all_true(&ctx).expect("result all true");
            let no_work = work.all_false(&ctx).expect("work all false");
            if quit.get(&ctx).expect("quit") || (all_idle && no_work) {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        stats
    });

    // The AllSets read below is local to main's replica, which can lag
    // behind the final worker writes. Barrier on the *domain object itself*:
    // removing a value that can never be present (domains only ever hold
    // 0..domain_size) is a no-op write, sequenced after every worker write
    // to the object, that completes only once main's replica has applied
    // them all. A stale `quit` read is harmless: `quit` is only ever set
    // after the RemoveValue that emptied a set, so the domains check below
    // catches the no-solution case on its own.
    main.invoke(domain, &DomainOp::RemoveValue { var: 0, value: -1 })
        .expect("sync barrier");
    let final_domains = match main
        .invoke(domain, &DomainOp::AllSets)
        .expect("final domains")
    {
        DomainReply::AllSets(sets) => sets,
        _ => Vec::new(),
    };
    let no_solution = quit.get(main).expect("quit flag") || final_domains.iter().any(Vec::is_empty);
    let report = ParallelRunReport::new(reports);
    let solution = AcpSolution {
        domains: final_domains,
        no_solution,
        revisions: report.total_units(),
    };
    (solution, report)
}

/// Outcome of rechecking one variable.
enum RecheckOutcome {
    Unchanged,
    Reduced,
    Empty,
}

fn recheck_variable(
    ctx: &OrcaNode,
    instance: &AcpInstance,
    domain: ObjectHandle<DomainObject>,
    var: u32,
    stats: &mut WorkerWork,
) -> RecheckOutcome {
    let mut outcome = RecheckOutcome::Unchanged;
    for constraint in instance.constraints_of(var) {
        let (a, b) = constraint.variables();
        let other = if a == var { b } else { a };
        stats.units += 1;
        let var_set = match ctx.invoke(domain, &DomainOp::GetSet(var)).expect("get set") {
            DomainReply::Set(values) => values,
            _ => continue,
        };
        let other_set = match ctx
            .invoke(domain, &DomainOp::GetSet(other))
            .expect("get other set")
        {
            DomainReply::Set(values) => values,
            _ => continue,
        };
        let removed = revise(&constraint, var, &var_set, other, &other_set);
        for value in removed {
            let size = match ctx
                .invoke(domain, &DomainOp::RemoveValue { var, value })
                .expect("remove value")
            {
                DomainReply::Size(size) => size,
                _ => 1,
            };
            outcome = RecheckOutcome::Reduced;
            if size == 0 {
                return RecheckOutcome::Empty;
            }
        }
    }
    outcome
}

/// Register the application object types used by ACP on top of the standard
/// registry.
pub fn registry() -> orca_object::ObjectRegistry {
    let mut registry = orca_core::standard_registry();
    registry.register::<DomainObject>();
    registry
}

/// Build a runtime suitable for running parallel ACP.
pub fn runtime(processors: usize) -> OrcaRuntime {
    OrcaRuntime::start(orca_core::OrcaConfig::broadcast(processors), registry())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_fixpoint_is_arc_consistent() {
        let instance = AcpInstance::random(12, 8, 24, 3);
        let solution = solve_sequential(&instance);
        if !solution.no_solution {
            for constraint in &instance.constraints {
                let (a, b) = constraint.variables();
                for &va in &solution.domains[a as usize] {
                    assert!(
                        solution.domains[b as usize]
                            .iter()
                            .any(|&vb| constraint.satisfied(va, vb)),
                        "value {va} of V{a} unsupported"
                    );
                }
            }
        }
        assert!(solution.revisions > 0);
    }

    #[test]
    fn chain_of_less_constraints_prunes_as_expected() {
        // V0 < V1 < V2 over 0..3 forces V0 in {0}, V1 in {1}, V2 in {2}.
        let instance = AcpInstance {
            variables: 3,
            domain_size: 3,
            constraints: vec![
                Constraint::Less {
                    a: 0,
                    b: 1,
                    offset: 0,
                },
                Constraint::Less {
                    a: 1,
                    b: 2,
                    offset: 0,
                },
            ],
        };
        let solution = solve_sequential(&instance);
        assert!(!solution.no_solution);
        assert_eq!(solution.domains[0], vec![0]);
        assert_eq!(solution.domains[1], vec![1]);
        assert_eq!(solution.domains[2], vec![2]);
    }

    #[test]
    fn unsatisfiable_instance_is_detected() {
        // V0 < V1 and V1 < V0 over a domain of size 2 has no solution.
        let instance = AcpInstance {
            variables: 2,
            domain_size: 2,
            constraints: vec![
                Constraint::Less {
                    a: 0,
                    b: 1,
                    offset: 0,
                },
                Constraint::Less {
                    a: 1,
                    b: 0,
                    offset: 0,
                },
            ],
        };
        let solution = solve_sequential(&instance);
        assert!(solution.no_solution);
    }

    #[test]
    fn parallel_fixpoint_matches_sequential() {
        let instance = AcpInstance::random(16, 6, 30, 5);
        let sequential = solve_sequential(&instance);
        let runtime = runtime(3);
        let (parallel, report) = solve_parallel(&runtime, &instance, 3);
        assert_eq!(parallel.no_solution, sequential.no_solution);
        if !parallel.no_solution {
            assert_eq!(parallel.domains, sequential.domains);
        }
        assert_eq!(report.workers(), 3);
    }

    #[test]
    fn codec_round_trips() {
        let instance = AcpInstance::random(4, 3, 6, 1);
        for c in &instance.constraints {
            assert_eq!(Constraint::from_bytes(&c.to_bytes()).unwrap(), *c);
        }
        for op in [
            DomainOp::RemoveValue { var: 1, value: 2 },
            DomainOp::GetSet(0),
            DomainOp::SizeOf(3),
            DomainOp::AllSets,
        ] {
            assert_eq!(DomainOp::from_bytes(&op.to_bytes()).unwrap(), op);
        }
        for reply in [
            DomainReply::Size(2),
            DomainReply::Set(vec![1, 2]),
            DomainReply::AllSets(vec![vec![0], vec![]]),
        ] {
            assert_eq!(DomainReply::from_bytes(&reply.to_bytes()).unwrap(), reply);
        }
    }
}
