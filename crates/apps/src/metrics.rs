//! Work accounting shared by all parallel applications.

/// Work performed by one worker process during a parallel run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerWork {
    /// Application-level work units (TSP nodes expanded, ACP constraint
    /// revisions, chess nodes searched, ATPG backtrack steps, ...).
    pub units: u64,
    /// Jobs (or partitions) the worker processed.
    pub jobs: u64,
}

/// Result of a parallel application run: what each worker did, plus the
/// total, so the performance model can compute the makespan of the slowest
/// worker and the parallel search overhead.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParallelRunReport {
    /// Per-worker work, indexed by worker id.
    pub per_worker: Vec<WorkerWork>,
}

impl ParallelRunReport {
    /// Build a report from per-worker work.
    pub fn new(per_worker: Vec<WorkerWork>) -> Self {
        ParallelRunReport { per_worker }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.per_worker.len()
    }

    /// Total work units across all workers.
    pub fn total_units(&self) -> u64 {
        self.per_worker.iter().map(|w| w.units).sum()
    }

    /// Work units of the busiest worker (the makespan driver).
    pub fn max_units(&self) -> u64 {
        self.per_worker.iter().map(|w| w.units).max().unwrap_or(0)
    }

    /// Total jobs processed.
    pub fn total_jobs(&self) -> u64 {
        self.per_worker.iter().map(|w| w.jobs).sum()
    }

    /// Load imbalance: busiest worker divided by the mean (1.0 = perfect).
    pub fn imbalance(&self) -> f64 {
        if self.per_worker.is_empty() || self.total_units() == 0 {
            return 1.0;
        }
        let mean = self.total_units() as f64 / self.per_worker.len() as f64;
        self.max_units() as f64 / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates() {
        let report = ParallelRunReport::new(vec![
            WorkerWork { units: 10, jobs: 2 },
            WorkerWork { units: 30, jobs: 3 },
        ]);
        assert_eq!(report.workers(), 2);
        assert_eq!(report.total_units(), 40);
        assert_eq!(report.max_units(), 30);
        assert_eq!(report.total_jobs(), 5);
        assert!((report.imbalance() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn empty_report_is_balanced() {
        let report = ParallelRunReport::default();
        assert_eq!(report.imbalance(), 1.0);
        assert_eq!(report.total_units(), 0);
    }
}
