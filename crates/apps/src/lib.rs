//! The applications evaluated in the paper, in sequential and Orca-parallel
//! form.
//!
//! §4 of the paper discusses four applications and the shared objects each
//! uses; this crate re-implements all four against the Orca-style API of
//! `orca-core`:
//!
//! * [`tsp`] — the Traveling Salesman Problem, a replicated-worker
//!   branch-and-bound search sharing a job queue and a global bound
//!   (Fig. 2 of the paper).
//! * [`acp`] — the Arc Consistency Problem, sharing a `domain` object, a
//!   `work` array, a `quit` flag and a `result` array, with the distributed
//!   termination test described in the paper (Fig. 3).
//! * [`chess`] — Oracol, an alpha-beta chess problem solver with killer and
//!   transposition tables that can be kept local or shared (§4.3).
//! * [`atpg`] — Automatic Test Pattern Generation using the PODEM algorithm
//!   with an optional shared fault-simulation object (§4.4).
//!
//! Every application provides a deterministic workload generator (the paper's
//! concrete inputs — 14-city tours, 64-variable constraint networks,
//! tactical chess positions, combinational circuits — are not archived, so
//! seeded synthetic instances of the same sizes are used instead), a
//! sequential solver, and a parallel solver returning per-worker work counts
//! that the performance model in `orca-perf` converts into the paper's
//! speedup figures.

pub mod acp;
pub mod atpg;
pub mod chess;
pub mod metrics;
pub mod tsp;

pub use metrics::{ParallelRunReport, WorkerWork};
