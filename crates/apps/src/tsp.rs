//! The Traveling Salesman Problem (§4.1, Fig. 2).
//!
//! "Our favorite example for Orca, since it greatly benefits from object
//! replication." The parallel program is a replicated-worker branch-and-bound
//! search:
//!
//! * a manager process expands the first [`JOB_PREFIX_DEPTH`] levels of the
//!   search tree into jobs (partial routes) and stores them in a shared
//!   [`JobQueue`];
//! * each worker repeatedly takes a job and searches all completions of its
//!   partial route;
//! * the best tour length found so far is kept in a shared integer whose
//!   `MinAssign` operation is indivisible; workers read it constantly to
//!   prune (a read : write ratio in the millions) and write it only when
//!   they find a better tour.

use orca_core::objects::{JobQueue, SharedInt};
use orca_core::{replicated_workers, OrcaRuntime};
use orca_wire::{Decoder, Encoder, Wire, WireResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::metrics::{ParallelRunReport, WorkerWork};

/// Depth (number of fixed cities after the start city) to which the manager
/// pre-expands the search tree when generating jobs. Two levels of a 14-city
/// problem give 13 × 12 = 156 jobs, plenty for 16 workers.
pub const JOB_PREFIX_DEPTH: usize = 2;

/// A TSP instance: a symmetric distance matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TspInstance {
    /// Number of cities.
    pub cities: usize,
    /// Flattened `cities × cities` distance matrix.
    pub dist: Vec<i64>,
}

impl TspInstance {
    /// Distance between two cities.
    #[inline]
    pub fn distance(&self, a: usize, b: usize) -> i64 {
        self.dist[a * self.cities + b]
    }

    /// Generate a random Euclidean-ish instance (symmetric, triangle
    /// inequality approximately satisfied) with `cities` cities.
    ///
    /// The paper uses a 14-city problem; the exact instance is not archived,
    /// so a seeded random instance of the same size stands in for it.
    pub fn random(cities: usize, seed: u64) -> Self {
        assert!(cities >= 2, "need at least two cities");
        let mut rng = StdRng::seed_from_u64(seed);
        let points: Vec<(f64, f64)> = (0..cities)
            .map(|_| (rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
            .collect();
        let mut dist = vec![0i64; cities * cities];
        for i in 0..cities {
            for j in 0..cities {
                let dx = points[i].0 - points[j].0;
                let dy = points[i].1 - points[j].1;
                dist[i * cities + j] = ((dx * dx + dy * dy).sqrt()) as i64;
            }
        }
        TspInstance { cities, dist }
    }

    /// Length of a complete tour (returning to the start city).
    pub fn tour_length(&self, tour: &[usize]) -> i64 {
        assert_eq!(tour.len(), self.cities);
        let mut total = 0;
        for i in 0..tour.len() {
            total += self.distance(tour[i], tour[(i + 1) % tour.len()]);
        }
        total
    }

    /// Greedy nearest-neighbour tour, used as the initial bound.
    pub fn nearest_neighbour_bound(&self) -> i64 {
        let mut visited = vec![false; self.cities];
        let mut current = 0usize;
        visited[0] = true;
        let mut total = 0;
        for _ in 1..self.cities {
            let next = (0..self.cities)
                .filter(|&c| !visited[c])
                .min_by_key(|&c| self.distance(current, c))
                .expect("unvisited city exists");
            total += self.distance(current, next);
            visited[next] = true;
            current = next;
        }
        total + self.distance(current, 0)
    }
}

impl Wire for TspInstance {
    fn encode(&self, enc: &mut Encoder) {
        self.cities.encode(enc);
        self.dist.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(TspInstance {
            cities: Wire::decode(dec)?,
            dist: Wire::decode(dec)?,
        })
    }
}

/// A branch-and-bound job: a partial route starting at city 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TspJob {
    /// Cities fixed so far, starting with 0.
    pub prefix: Vec<u16>,
    /// Length of the fixed part.
    pub prefix_len: i64,
}

impl Wire for TspJob {
    fn encode(&self, enc: &mut Encoder) {
        self.prefix.encode(enc);
        self.prefix_len.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(TspJob {
            prefix: Wire::decode(dec)?,
            prefix_len: Wire::decode(dec)?,
        })
    }
}

/// Result of a TSP solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TspSolution {
    /// Length of the best tour found.
    pub best_length: i64,
    /// The best tour (starts at city 0).
    pub best_tour: Vec<usize>,
    /// Number of search-tree nodes expanded.
    pub nodes_expanded: u64,
}

/// The best tour found so far: `(length, tour)`.
type Best = (i64, Vec<usize>);

/// Pruning bound consulted before descending (the parallel version reads
/// the shared bound here).
type BoundFn<'a> = dyn FnMut(&mut Best) -> i64 + 'a;

/// Called whenever a better complete tour is found (the parallel version
/// publishes it to the shared bound here). Deliberately returns nothing:
/// the shared bound's post-update value may be another worker's tour
/// length, and feeding it back into `best` would corrupt the
/// (length, tour) pair.
type ImprovedFn<'a> = dyn FnMut(i64, &[usize]) + 'a;

/// Exhaustive branch-and-bound over completions of `prefix`, updating
/// `best` in place. Returns the number of nodes expanded.
#[allow(clippy::too_many_arguments)] // recursion state; a struct would just rename the args
fn search_from(
    instance: &TspInstance,
    prefix: &mut Vec<usize>,
    prefix_len: i64,
    visited: &mut Vec<bool>,
    best: &mut Best,
    nodes: &mut u64,
    bound: &mut BoundFn<'_>,
    improved: &mut ImprovedFn<'_>,
) {
    *nodes += 1;
    let n = instance.cities;
    if prefix.len() == n {
        let total = prefix_len + instance.distance(*prefix.last().unwrap(), prefix[0]);
        if total < best.0 {
            // `best` must stay a consistent (length, tour) pair: `improved`
            // may return an even lower *global* bound (another worker's
            // tour), which would pair a foreign length with this tour and
            // let a corrupted pair win the final aggregation. Pruning
            // against the global bound happens through `bound` instead.
            best.0 = total;
            best.1 = prefix.clone();
            improved(total, prefix);
        }
        return;
    }
    let current_bound = bound(best);
    if prefix_len >= current_bound {
        return; // this partial route can no longer beat the best tour
    }
    let last = *prefix.last().unwrap();
    for city in 1..n {
        if visited[city] {
            continue;
        }
        let step = instance.distance(last, city);
        if prefix_len + step >= current_bound {
            continue;
        }
        visited[city] = true;
        prefix.push(city);
        search_from(
            instance,
            prefix,
            prefix_len + step,
            visited,
            best,
            nodes,
            bound,
            improved,
        );
        prefix.pop();
        visited[city] = false;
    }
}

/// Solve an instance sequentially with branch and bound.
pub fn solve_sequential(instance: &TspInstance) -> TspSolution {
    let initial = instance.nearest_neighbour_bound();
    let mut best = (initial + 1, Vec::new());
    let mut nodes = 0;
    let mut prefix = vec![0usize];
    let mut visited = vec![false; instance.cities];
    visited[0] = true;
    search_from(
        instance,
        &mut prefix,
        0,
        &mut visited,
        &mut best,
        &mut nodes,
        &mut |best| best.0,
        &mut |_, _| {},
    );
    let (best_length, mut best_tour) = best;
    if best_tour.is_empty() {
        best_tour = (0..instance.cities).collect();
    }
    TspSolution {
        best_length,
        best_tour,
        nodes_expanded: nodes,
    }
}

/// Generate the branch-and-bound jobs (partial routes of length
/// `1 + JOB_PREFIX_DEPTH`).
pub fn generate_jobs(instance: &TspInstance) -> Vec<TspJob> {
    let mut jobs = Vec::new();
    let n = instance.cities;
    let depth = JOB_PREFIX_DEPTH.min(n - 1);
    let mut stack = vec![(vec![0u16], 0i64)];
    while let Some((prefix, len)) = stack.pop() {
        if prefix.len() == depth + 1 {
            jobs.push(TspJob {
                prefix,
                prefix_len: len,
            });
            continue;
        }
        let last = *prefix.last().unwrap() as usize;
        for city in 1..n {
            if prefix.iter().any(|&c| c as usize == city) {
                continue;
            }
            let mut next = prefix.clone();
            next.push(city as u16);
            stack.push((next, len + instance.distance(last, city)));
        }
    }
    jobs
}

/// Solve an instance with the replicated-worker Orca program on `runtime`.
///
/// Returns the solution (identical optimum to the sequential solver) and the
/// per-worker work report used by the performance model.
pub fn solve_parallel(
    runtime: &OrcaRuntime,
    instance: &TspInstance,
    workers: usize,
) -> (TspSolution, ParallelRunReport) {
    let main = runtime.main();
    // Shared objects: the job queue and the global bound.
    let queue: JobQueue<TspJob> = JobQueue::create(main).expect("create job queue");
    let bound = SharedInt::create(main, instance.nearest_neighbour_bound() + 1).expect("bound");
    // Manager: generate and enqueue the jobs, then close the queue.
    let jobs = generate_jobs(instance);
    queue.add_all(main, &jobs).expect("enqueue jobs");
    queue.close(main).expect("close queue");

    let instance_clone = instance.clone();
    let results = replicated_workers(runtime, workers, move |_worker, ctx| {
        let instance = instance_clone.clone();
        let mut work = WorkerWork::default();
        let mut local_best: (i64, Vec<usize>) = (i64::MAX, Vec::new());
        while let Some(job) = queue.get(&ctx).expect("dequeue job") {
            work.jobs += 1;
            let mut prefix: Vec<usize> = job.prefix.iter().map(|&c| c as usize).collect();
            let mut visited = vec![false; instance.cities];
            for &city in &prefix {
                visited[city] = true;
            }
            let mut nodes = 0u64;
            // Start from this worker's own best pair (not the shared global
            // bound, whose tour lives on another worker); the shared bound
            // still prunes through the closures below.
            let mut best = local_best.clone();
            let prefix_len = job.prefix_len;
            search_from(
                &instance,
                &mut prefix,
                prefix_len,
                &mut visited,
                &mut best,
                &mut nodes,
                &mut |best| bound.value(&ctx).expect("read bound").min(best.0),
                &mut |total, _| {
                    bound.min_assign(&ctx, total).expect("update bound");
                },
            );
            if best.0 < local_best.0 && !best.1.is_empty() {
                local_best = best;
            }
            work.units += nodes;
        }
        (work, local_best)
    });

    let mut per_worker = Vec::with_capacity(results.len());
    let mut best: (i64, Vec<usize>) = (i64::MAX, Vec::new());
    for (work, local_best) in results {
        per_worker.push(work);
        if local_best.0 < best.0 {
            best = local_best;
        }
    }
    let global_bound = bound.value(runtime.main()).expect("final bound");
    let report = ParallelRunReport::new(per_worker);
    let solution = TspSolution {
        best_length: global_bound.min(best.0),
        best_tour: best.1,
        nodes_expanded: report.total_units(),
    };
    (solution, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force(instance: &TspInstance) -> i64 {
        // Only for tiny instances in tests.
        fn permute(
            instance: &TspInstance,
            tour: &mut Vec<usize>,
            used: &mut Vec<bool>,
            best: &mut i64,
        ) {
            if tour.len() == instance.cities {
                *best = (*best).min(instance.tour_length(tour));
                return;
            }
            for city in 1..instance.cities {
                if used[city] {
                    continue;
                }
                used[city] = true;
                tour.push(city);
                permute(instance, tour, used, best);
                tour.pop();
                used[city] = false;
            }
        }
        let mut best = i64::MAX;
        let mut used = vec![false; instance.cities];
        used[0] = true;
        permute(instance, &mut vec![0], &mut used, &mut best);
        best
    }

    #[test]
    fn sequential_matches_brute_force_on_small_instances() {
        for seed in [1, 2, 3] {
            let instance = TspInstance::random(8, seed);
            let solution = solve_sequential(&instance);
            assert_eq!(solution.best_length, brute_force(&instance), "seed {seed}");
            assert_eq!(
                instance.tour_length(&solution.best_tour),
                solution.best_length
            );
        }
    }

    #[test]
    fn nearest_neighbour_is_an_upper_bound() {
        let instance = TspInstance::random(10, 7);
        let solution = solve_sequential(&instance);
        assert!(instance.nearest_neighbour_bound() >= solution.best_length);
    }

    #[test]
    fn job_generation_covers_the_whole_tree() {
        let instance = TspInstance::random(7, 9);
        let jobs = generate_jobs(&instance);
        assert_eq!(jobs.len(), 6 * 5); // (n-1)(n-2) prefixes of depth 2
        for job in &jobs {
            assert_eq!(job.prefix.len(), JOB_PREFIX_DEPTH + 1);
            assert_eq!(job.prefix[0], 0);
        }
    }

    #[test]
    fn parallel_finds_the_same_optimum_as_sequential() {
        let instance = TspInstance::random(9, 11);
        let sequential = solve_sequential(&instance);
        let runtime = OrcaRuntime::standard(3);
        let (parallel, report) = solve_parallel(&runtime, &instance, 3);
        assert_eq!(parallel.best_length, sequential.best_length);
        assert_eq!(report.workers(), 3);
        assert!(report.total_jobs() > 0);
        assert!(report.total_units() > 0);
    }

    #[test]
    fn instance_and_job_codec_round_trip() {
        let instance = TspInstance::random(5, 4);
        assert_eq!(
            TspInstance::from_bytes(&instance.to_bytes()).unwrap(),
            instance
        );
        let job = TspJob {
            prefix: vec![0, 3, 1],
            prefix_len: 42,
        };
        assert_eq!(TspJob::from_bytes(&job.to_bytes()).unwrap(), job);
    }
}
