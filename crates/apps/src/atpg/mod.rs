//! Automatic Test Pattern Generation (§4.4).
//!
//! The Orca ATPG program statically partitions the fault list over the
//! processors; each processor runs PODEM on its share. The optional
//! *fault simulation* optimization shares one object containing the faults
//! already covered: whenever a process generates a pattern it simulates that
//! pattern against the remaining faults and adds everything it detects to
//! the shared set, so other processes can skip those faults. The paper
//! reports that the optimization makes the program about 3× faster in
//! absolute terms but hurts speedup (communication plus load imbalance).

pub mod circuit;
pub mod podem;

pub use circuit::{Circuit, Fault, Gate, GateKind, Val};
pub use podem::{podem, PodemOutcome, PodemStats, DEFAULT_BACKTRACK_LIMIT};

use orca_core::objects::SharedSet;
use orca_core::{replicated_workers, OrcaRuntime};

use crate::metrics::{ParallelRunReport, WorkerWork};

/// Result of an ATPG run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtpgResult {
    /// Test patterns generated.
    pub patterns: Vec<Vec<bool>>,
    /// Faults covered (detected by some generated pattern).
    pub detected: u64,
    /// Faults proven untestable.
    pub untestable: u64,
    /// Faults aborted (backtrack limit).
    pub aborted: u64,
    /// Total faults considered.
    pub total_faults: u64,
    /// Total PODEM work (simulations + backtracks).
    pub work: u64,
}

impl AtpgResult {
    /// Fault coverage as a fraction of all faults.
    pub fn coverage(&self) -> f64 {
        if self.total_faults == 0 {
            return 1.0;
        }
        self.detected as f64 / self.total_faults as f64
    }
}

/// Sequential ATPG over every fault of the circuit.
///
/// With `fault_simulation` enabled, each generated pattern is simulated
/// against the remaining faults and everything it detects is dropped from
/// the work list (usually a ~3× reduction in PODEM invocations).
pub fn solve_sequential(circuit: &Circuit, fault_simulation: bool) -> AtpgResult {
    let faults = circuit.all_faults();
    let mut covered: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut result = AtpgResult {
        patterns: Vec::new(),
        detected: 0,
        untestable: 0,
        aborted: 0,
        total_faults: faults.len() as u64,
        work: 0,
    };
    for fault in &faults {
        if covered.contains(&fault.id()) {
            continue;
        }
        let (outcome, stats) = podem(circuit, *fault, DEFAULT_BACKTRACK_LIMIT);
        result.work += stats.simulations + stats.backtracks;
        match outcome {
            PodemOutcome::Test(pattern) => {
                covered.insert(fault.id());
                result.detected += 1;
                if fault_simulation {
                    for other in &faults {
                        if !covered.contains(&other.id()) && circuit.detects(&pattern, *other) {
                            covered.insert(other.id());
                            result.detected += 1;
                        }
                    }
                }
                result.patterns.push(pattern);
            }
            PodemOutcome::Untestable => result.untestable += 1,
            PodemOutcome::Aborted => result.aborted += 1,
        }
    }
    result
}

/// Parallel ATPG: the fault list is statically partitioned over `workers`
/// worker processes. With `fault_simulation` enabled the covered faults are
/// kept in a shared set that every worker consults and extends.
pub fn solve_parallel(
    runtime: &OrcaRuntime,
    circuit: &Circuit,
    workers: usize,
    fault_simulation: bool,
) -> (AtpgResult, ParallelRunReport) {
    let main = runtime.main();
    let detected_set = SharedSet::create(main).expect("detected-fault set");
    let faults = circuit.all_faults();
    let total_faults = faults.len() as u64;

    let circuit_clone = circuit.clone();
    let outputs = replicated_workers(runtime, workers, move |worker, ctx| {
        let circuit = circuit_clone.clone();
        let faults = circuit.all_faults();
        let mut work = WorkerWork::default();
        let mut patterns = Vec::new();
        let mut untestable = 0u64;
        let mut aborted = 0u64;
        let mut detected = 0u64;
        // Static partition of the fault list.
        let mine: Vec<Fault> = faults
            .iter()
            .copied()
            .enumerate()
            .filter(|(i, _)| i % workers == worker)
            .map(|(_, f)| f)
            .collect();
        for fault in mine {
            if fault_simulation && detected_set.contains(&ctx, fault.id()).unwrap_or(false) {
                continue; // somebody else already covered it
            }
            work.jobs += 1;
            let (outcome, stats) = podem(&circuit, fault, DEFAULT_BACKTRACK_LIMIT);
            work.units += stats.simulations + stats.backtracks;
            match outcome {
                PodemOutcome::Test(pattern) => {
                    detected += 1;
                    if fault_simulation {
                        // Fault-simulate the new pattern against every fault
                        // and publish everything it detects.
                        let newly_detected: Vec<u64> = faults
                            .iter()
                            .filter(|f| circuit.detects(&pattern, **f))
                            .map(Fault::id)
                            .collect();
                        detected_set
                            .add_all(&ctx, newly_detected)
                            .expect("publish detected faults");
                    } else {
                        detected_set
                            .add(&ctx, fault.id())
                            .expect("publish detected fault");
                    }
                    patterns.push(pattern);
                }
                PodemOutcome::Untestable => untestable += 1,
                PodemOutcome::Aborted => aborted += 1,
            }
        }
        (work, patterns, detected, untestable, aborted)
    });

    let mut per_worker = Vec::new();
    let mut result = AtpgResult {
        patterns: Vec::new(),
        detected: 0,
        untestable: 0,
        aborted: 0,
        total_faults,
        work: 0,
    };
    for (work, patterns, _detected, untestable, aborted) in outputs {
        per_worker.push(work);
        result.patterns.extend(patterns);
        result.untestable += untestable;
        result.aborted += aborted;
        result.work += work.units;
    }
    // Global coverage comes from the shared set (it also counts faults that
    // were covered by another worker's pattern through fault simulation).
    // `len` is a local read of main's replica, which can lag behind the
    // final worker writes; the empty `add_all` is a write barrier — it is
    // sequenced after every worker write and completes only once main's
    // replica has applied them all.
    let main = runtime.main();
    detected_set
        .add_all(main, Vec::new())
        .expect("sync barrier");
    result.detected = detected_set.len(main).expect("detected count");
    let report = ParallelRunReport::new(per_worker);
    (result, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_atpg_covers_c17() {
        let circuit = Circuit::c17();
        let result = solve_sequential(&circuit, false);
        assert!(result.coverage() > 0.7, "coverage {}", result.coverage());
        // Every emitted pattern has the right width.
        for pattern in &result.patterns {
            assert_eq!(pattern.len(), circuit.inputs);
        }
    }

    #[test]
    fn fault_simulation_reduces_podem_invocations() {
        let circuit = Circuit::random(10, 50, 7);
        let plain = solve_sequential(&circuit, false);
        let with_sim = solve_sequential(&circuit, true);
        assert!(with_sim.patterns.len() <= plain.patterns.len());
        assert!(with_sim.work <= plain.work);
        // Coverage must not get worse.
        assert!(with_sim.detected >= plain.detected * 9 / 10);
    }

    #[test]
    fn parallel_atpg_matches_sequential_coverage() {
        let circuit = Circuit::random(8, 30, 11);
        let sequential = solve_sequential(&circuit, false);
        let runtime = OrcaRuntime::standard(3);
        let (parallel, report) = solve_parallel(&runtime, &circuit, 3, false);
        assert_eq!(parallel.total_faults, sequential.total_faults);
        // Without fault simulation each fault is tried independently, so the
        // set of detected faults is identical.
        assert_eq!(parallel.detected, sequential.detected);
        assert_eq!(report.workers(), 3);
        assert!(report.total_jobs() > 0);
    }

    #[test]
    fn parallel_fault_simulation_keeps_coverage_and_saves_work() {
        let circuit = Circuit::random(8, 30, 13);
        let runtime = OrcaRuntime::standard(3);
        let (plain, _) = solve_parallel(&runtime, &circuit, 3, false);
        let runtime2 = OrcaRuntime::standard(3);
        let (with_sim, _) = solve_parallel(&runtime2, &circuit, 3, true);
        assert!(with_sim.detected >= plain.detected);
        assert!(with_sim.work <= plain.work);
    }
}
