//! PODEM test-pattern generation (Goel's implicit enumeration algorithm).
//!
//! PODEM searches over primary-input assignments only: at every step it
//! chooses an *objective* (activate the fault, or propagate the fault effect
//! one gate further), *backtraces* the objective to an unassigned primary
//! input, assigns it, and re-simulates. When the fault effect reaches a
//! primary output the accumulated assignment is a test pattern; when an
//! assignment can be shown not to lead to a test the algorithm backtracks
//! and tries the opposite value.

use super::circuit::{Circuit, Fault, GateKind, Val};

/// Outcome of PODEM for one fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PodemOutcome {
    /// A test pattern was found (one bool per primary input).
    Test(Vec<bool>),
    /// The fault is untestable (search space exhausted).
    Untestable,
    /// The backtrack limit was hit before a decision was reached.
    Aborted,
}

/// Statistics of one PODEM run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PodemStats {
    /// Number of backtracks performed.
    pub backtracks: u64,
    /// Number of five-valued simulations performed.
    pub simulations: u64,
}

/// Maximum number of backtracks before a fault is declared aborted ("in
/// practice an ATPG program tries to cover as many gates as possible within
/// the time limit imposed on it").
pub const DEFAULT_BACKTRACK_LIMIT: u64 = 2_000;

/// Three-valued simulation of the good or faulty circuit.
fn simulate3(circuit: &Circuit, pins: &[Option<bool>], fault: Option<Fault>) -> Vec<Option<bool>> {
    let mut values: Vec<Option<bool>> = vec![None; circuit.gates.len()];
    for (i, gate) in circuit.gates.iter().enumerate() {
        let mut value = if gate.kind == GateKind::Input {
            pins[i]
        } else {
            let ins: Vec<Option<bool>> = gate.fanin.iter().map(|&f| values[f]).collect();
            eval3(gate.kind, &ins)
        };
        if let Some(fault) = fault {
            if i == fault.gate {
                value = Some(fault.stuck_at_one);
            }
        }
        values[i] = value;
    }
    values
}

fn eval3(kind: GateKind, ins: &[Option<bool>]) -> Option<bool> {
    match kind {
        GateKind::Input => None,
        GateKind::And | GateKind::Nand => {
            let base = if ins.contains(&Some(false)) {
                Some(false)
            } else if ins.iter().all(|v| *v == Some(true)) {
                Some(true)
            } else {
                None
            };
            if kind == GateKind::Nand {
                base.map(|b| !b)
            } else {
                base
            }
        }
        GateKind::Or | GateKind::Nor => {
            let base = if ins.contains(&Some(true)) {
                Some(true)
            } else if ins.iter().all(|v| *v == Some(false)) {
                Some(false)
            } else {
                None
            };
            if kind == GateKind::Nor {
                base.map(|b| !b)
            } else {
                base
            }
        }
        GateKind::Xor => match (ins[0], ins[1]) {
            (Some(a), Some(b)) => Some(a ^ b),
            _ => None,
        },
        GateKind::Not => ins[0].map(|b| !b),
        GateKind::Buf => ins[0],
    }
}

/// Five-valued circuit state for one fault and one partial input assignment.
fn simulate5(circuit: &Circuit, pins: &[Option<bool>], fault: Fault) -> Vec<Val> {
    let good = simulate3(circuit, pins, None);
    let faulty = simulate3(circuit, pins, Some(fault));
    good.iter()
        .zip(faulty.iter())
        .map(|(&g, &f)| Val::from_pair(g, f))
        .collect()
}

/// True if a fault effect (D or D') has reached a primary output.
fn fault_at_output(circuit: &Circuit, values: &[Val]) -> bool {
    circuit
        .outputs
        .iter()
        .any(|&o| matches!(values[o], Val::D | Val::DBar))
}

/// The D-frontier: gates whose output is X but which have a D/D' on an input.
fn d_frontier(circuit: &Circuit, values: &[Val]) -> Vec<usize> {
    circuit
        .gates
        .iter()
        .enumerate()
        .filter(|(i, gate)| {
            values[*i] == Val::X
                && gate
                    .fanin
                    .iter()
                    .any(|&f| matches!(values[f], Val::D | Val::DBar))
        })
        .map(|(i, _)| i)
        .collect()
}

/// Non-controlling value of a gate kind (the value that lets other inputs
/// decide the output).
fn non_controlling(kind: GateKind) -> bool {
    matches!(kind, GateKind::And | GateKind::Nand)
}

/// Backtrace an objective `(gate, value)` to an unassigned primary input,
/// flipping the desired value through inverting gates. Returns the input and
/// the value to assign.
fn backtrace(
    circuit: &Circuit,
    values: &[Val],
    mut gate: usize,
    mut value: bool,
) -> Option<(usize, bool)> {
    loop {
        let g = &circuit.gates[gate];
        if g.kind == GateKind::Input {
            return if values[gate] == Val::X {
                Some((gate, value))
            } else {
                None
            };
        }
        if matches!(g.kind, GateKind::Nand | GateKind::Nor | GateKind::Not) {
            value = !value;
        }
        // Follow an X-valued fan-in (prefer the first).
        let next = g.fanin.iter().copied().find(|&f| values[f] == Val::X)?;
        gate = next;
    }
}

/// Choose the next objective: activate the fault if it is not yet excited,
/// otherwise advance the D-frontier.
fn objective(circuit: &Circuit, values: &[Val], fault: Fault) -> Option<(usize, bool)> {
    if values[fault.gate] == Val::X {
        // Excite the fault: drive the fault site to the opposite of the
        // stuck-at value.
        return Some((fault.gate, !fault.stuck_at_one));
    }
    let frontier = d_frontier(circuit, values);
    let &gate = frontier.first()?;
    let kind = circuit.gates[gate].kind;
    // Set one X input of the frontier gate to the non-controlling value.
    let input = circuit.gates[gate]
        .fanin
        .iter()
        .copied()
        .find(|&f| values[f] == Val::X)?;
    Some((input, non_controlling(kind)))
}

/// Run PODEM for one fault.
pub fn podem(circuit: &Circuit, fault: Fault, backtrack_limit: u64) -> (PodemOutcome, PodemStats) {
    let mut pins: Vec<Option<bool>> = vec![None; circuit.inputs];
    let mut stats = PodemStats::default();
    let outcome = podem_recurse(circuit, fault, &mut pins, &mut stats, backtrack_limit);
    (outcome, stats)
}

fn podem_recurse(
    circuit: &Circuit,
    fault: Fault,
    pins: &mut Vec<Option<bool>>,
    stats: &mut PodemStats,
    backtrack_limit: u64,
) -> PodemOutcome {
    stats.simulations += 1;
    let mut full_pins = vec![None; circuit.gates.len()];
    full_pins[..circuit.inputs].copy_from_slice(pins);
    let values = simulate5(circuit, &full_pins, fault);
    if fault_at_output(circuit, &values) {
        let pattern: Vec<bool> = pins.iter().map(|p| p.unwrap_or(false)).collect();
        return PodemOutcome::Test(pattern);
    }
    // The fault is unexcitable if the fault site has settled to the stuck
    // value in the good circuit, or there is no path left to propagate on.
    if values[fault.gate] != Val::X && !matches!(values[fault.gate], Val::D | Val::DBar) {
        return PodemOutcome::Untestable;
    }
    if matches!(values[fault.gate], Val::D | Val::DBar) && d_frontier(circuit, &values).is_empty() {
        return PodemOutcome::Untestable;
    }
    let Some((goal_gate, goal_value)) = objective(circuit, &values, fault) else {
        return PodemOutcome::Untestable;
    };
    let Some((pi, pi_value)) = backtrace(circuit, &values, goal_gate, goal_value) else {
        return PodemOutcome::Untestable;
    };
    debug_assert!(pi < circuit.inputs);
    for value in [pi_value, !pi_value] {
        pins[pi] = Some(value);
        match podem_recurse(circuit, fault, pins, stats, backtrack_limit) {
            PodemOutcome::Test(pattern) => return PodemOutcome::Test(pattern),
            PodemOutcome::Aborted => {
                pins[pi] = None;
                return PodemOutcome::Aborted;
            }
            PodemOutcome::Untestable => {
                stats.backtracks += 1;
                if stats.backtracks > backtrack_limit {
                    pins[pi] = None;
                    return PodemOutcome::Aborted;
                }
            }
        }
    }
    pins[pi] = None;
    PodemOutcome::Untestable
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn podem_patterns_really_detect_their_faults_on_c17() {
        let circuit = Circuit::c17();
        let mut found = 0;
        for fault in circuit.all_faults() {
            let (outcome, _) = podem(&circuit, fault, DEFAULT_BACKTRACK_LIMIT);
            if let PodemOutcome::Test(pattern) = outcome {
                assert!(
                    circuit.detects(&pattern, fault),
                    "pattern {pattern:?} does not detect {fault:?}"
                );
                found += 1;
            }
        }
        // c17 is fully testable except for a handful of redundant internal
        // polarities; PODEM must find tests for the large majority.
        assert!(found >= 16, "only {found} faults covered");
    }

    #[test]
    fn podem_agrees_with_exhaustive_testability_on_c17() {
        let circuit = Circuit::c17();
        for fault in circuit.all_faults() {
            let exhaustive_testable = (0..32u32).any(|bits| {
                let pattern: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
                circuit.detects(&pattern, fault)
            });
            let (outcome, _) = podem(&circuit, fault, DEFAULT_BACKTRACK_LIMIT);
            match outcome {
                PodemOutcome::Test(_) => assert!(exhaustive_testable, "{fault:?}"),
                PodemOutcome::Untestable => {
                    assert!(
                        !exhaustive_testable,
                        "{fault:?} is testable but PODEM gave up"
                    )
                }
                PodemOutcome::Aborted => {}
            }
        }
    }

    #[test]
    fn podem_works_on_random_circuits() {
        let circuit = Circuit::random(10, 60, 42);
        let mut tested = 0;
        let mut covered = 0;
        for fault in circuit.all_faults().into_iter().take(60) {
            let (outcome, stats) = podem(&circuit, fault, DEFAULT_BACKTRACK_LIMIT);
            tested += 1;
            if let PodemOutcome::Test(pattern) = outcome {
                assert!(circuit.detects(&pattern, fault));
                covered += 1;
            }
            assert!(stats.simulations > 0);
        }
        assert!(covered > tested / 4, "coverage {covered}/{tested}");
    }

    #[test]
    fn three_valued_evaluation_handles_unknowns() {
        assert_eq!(eval3(GateKind::And, &[Some(false), None]), Some(false));
        assert_eq!(eval3(GateKind::And, &[Some(true), None]), None);
        assert_eq!(eval3(GateKind::Or, &[Some(true), None]), Some(true));
        assert_eq!(
            eval3(GateKind::Nor, &[Some(false), Some(false)]),
            Some(true)
        );
        assert_eq!(eval3(GateKind::Xor, &[Some(true), None]), None);
        assert_eq!(eval3(GateKind::Not, &[None]), None);
    }
}
