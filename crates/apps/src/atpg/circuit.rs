//! Combinational circuits and five-valued logic for ATPG.
//!
//! A circuit is a DAG of gates over primary inputs; faults are single
//! stuck-at faults on gate outputs. The PODEM implementation uses the
//! classic five-valued algebra {0, 1, X, D, D'} where D means "1 in the good
//! circuit, 0 in the faulty circuit" and D' the opposite.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Five-valued signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Val {
    /// Logic 0 in both good and faulty circuit.
    Zero,
    /// Logic 1 in both good and faulty circuit.
    One,
    /// Unassigned.
    X,
    /// 1 in the good circuit, 0 in the faulty circuit.
    D,
    /// 0 in the good circuit, 1 in the faulty circuit.
    DBar,
}

impl Val {
    /// Value in the good circuit (`None` for X).
    pub fn good(self) -> Option<bool> {
        match self {
            Val::Zero => Some(false),
            Val::One => Some(true),
            Val::X => None,
            Val::D => Some(true),
            Val::DBar => Some(false),
        }
    }

    /// Value in the faulty circuit (`None` for X).
    pub fn faulty(self) -> Option<bool> {
        match self {
            Val::Zero => Some(false),
            Val::One => Some(true),
            Val::X => None,
            Val::D => Some(false),
            Val::DBar => Some(true),
        }
    }

    /// Combine good/faulty booleans back into a five-valued signal.
    pub fn from_pair(good: Option<bool>, faulty: Option<bool>) -> Val {
        match (good, faulty) {
            (Some(true), Some(true)) => Val::One,
            (Some(false), Some(false)) => Val::Zero,
            (Some(true), Some(false)) => Val::D,
            (Some(false), Some(true)) => Val::DBar,
            _ => Val::X,
        }
    }

    /// Logical negation. (A method rather than `impl std::ops::Not` so the
    /// five-valued algebra keeps all of its operations in one inherent
    /// block.)
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Val {
        Val::from_pair(self.good().map(|b| !b), self.faulty().map(|b| !b))
    }
}

/// Gate kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateKind {
    /// Primary input (no fan-in).
    Input,
    /// Logical AND of all fan-ins.
    And,
    /// Logical OR.
    Or,
    /// Negated AND.
    Nand,
    /// Negated OR.
    Nor,
    /// Exclusive or (exactly two fan-ins).
    Xor,
    /// Inverter (one fan-in).
    Not,
    /// Buffer (one fan-in).
    Buf,
}

/// One gate of the circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    /// Kind of gate.
    pub kind: GateKind,
    /// Indices of the gates feeding this one (empty for inputs).
    pub fanin: Vec<usize>,
}

/// A single stuck-at fault on a gate output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fault {
    /// Gate whose output is faulty.
    pub gate: usize,
    /// True for stuck-at-1, false for stuck-at-0.
    pub stuck_at_one: bool,
}

impl Fault {
    /// Stable numeric id used for the shared detected-fault set.
    pub fn id(&self) -> u64 {
        (self.gate as u64) * 2 + u64::from(self.stuck_at_one)
    }
}

/// A combinational circuit in topological order (fan-ins always precede a
/// gate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Circuit {
    /// Gates in topological order; the first `inputs` entries are inputs.
    pub gates: Vec<Gate>,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Indices of the primary outputs.
    pub outputs: Vec<usize>,
}

impl Circuit {
    /// Evaluate one gate from its fan-in values (two-valued).
    fn eval_gate(kind: GateKind, inputs: &[bool]) -> bool {
        match kind {
            GateKind::Input => unreachable!("inputs have no fan-in evaluation"),
            GateKind::And => inputs.iter().all(|&b| b),
            GateKind::Or => inputs.iter().any(|&b| b),
            GateKind::Nand => !inputs.iter().all(|&b| b),
            GateKind::Nor => !inputs.iter().any(|&b| b),
            GateKind::Xor => inputs.iter().filter(|&&b| b).count() % 2 == 1,
            GateKind::Not => !inputs[0],
            GateKind::Buf => inputs[0],
        }
    }

    /// Simulate the good circuit for a fully specified input pattern,
    /// returning the value of every gate.
    pub fn simulate(&self, pattern: &[bool]) -> Vec<bool> {
        assert_eq!(pattern.len(), self.inputs);
        let mut values = vec![false; self.gates.len()];
        for (i, gate) in self.gates.iter().enumerate() {
            values[i] = if gate.kind == GateKind::Input {
                pattern[i]
            } else {
                let ins: Vec<bool> = gate.fanin.iter().map(|&f| values[f]).collect();
                Self::eval_gate(gate.kind, &ins)
            };
        }
        values
    }

    /// Simulate the circuit with `fault` injected, returning every gate value.
    pub fn simulate_with_fault(&self, pattern: &[bool], fault: Fault) -> Vec<bool> {
        let mut values = vec![false; self.gates.len()];
        for (i, gate) in self.gates.iter().enumerate() {
            let mut value = if gate.kind == GateKind::Input {
                pattern[i]
            } else {
                let ins: Vec<bool> = gate.fanin.iter().map(|&f| values[f]).collect();
                Self::eval_gate(gate.kind, &ins)
            };
            if i == fault.gate {
                value = fault.stuck_at_one;
            }
            values[i] = value;
        }
        values
    }

    /// True if `pattern` detects `fault` (some primary output differs between
    /// the good and the faulty circuit).
    pub fn detects(&self, pattern: &[bool], fault: Fault) -> bool {
        let good = self.simulate(pattern);
        let bad = self.simulate_with_fault(pattern, fault);
        self.outputs.iter().any(|&o| good[o] != bad[o])
    }

    /// Every single stuck-at fault of the circuit (both polarities on every
    /// gate output).
    pub fn all_faults(&self) -> Vec<Fault> {
        (0..self.gates.len())
            .flat_map(|gate| {
                [
                    Fault {
                        gate,
                        stuck_at_one: false,
                    },
                    Fault {
                        gate,
                        stuck_at_one: true,
                    },
                ]
            })
            .collect()
    }

    /// Gates that `gate` feeds into.
    pub fn fanout(&self, gate: usize) -> Vec<usize> {
        self.gates
            .iter()
            .enumerate()
            .filter(|(_, g)| g.fanin.contains(&gate))
            .map(|(i, _)| i)
            .collect()
    }

    /// The ISCAS-85 c17 benchmark circuit (5 inputs, 6 NAND gates,
    /// 2 outputs) — small, classic, and handy for exact tests.
    pub fn c17() -> Circuit {
        // Inputs: 0..=4  (N1, N2, N3, N6, N7 in the ISCAS numbering)
        let gates = vec![
            Gate {
                kind: GateKind::Input,
                fanin: vec![],
            },
            Gate {
                kind: GateKind::Input,
                fanin: vec![],
            },
            Gate {
                kind: GateKind::Input,
                fanin: vec![],
            },
            Gate {
                kind: GateKind::Input,
                fanin: vec![],
            },
            Gate {
                kind: GateKind::Input,
                fanin: vec![],
            },
            Gate {
                kind: GateKind::Nand,
                fanin: vec![0, 2],
            }, // 5: N10
            Gate {
                kind: GateKind::Nand,
                fanin: vec![2, 3],
            }, // 6: N11
            Gate {
                kind: GateKind::Nand,
                fanin: vec![1, 6],
            }, // 7: N16
            Gate {
                kind: GateKind::Nand,
                fanin: vec![6, 4],
            }, // 8: N19
            Gate {
                kind: GateKind::Nand,
                fanin: vec![5, 7],
            }, // 9: N22 (output)
            Gate {
                kind: GateKind::Nand,
                fanin: vec![7, 8],
            }, // 10: N23 (output)
        ];
        Circuit {
            gates,
            inputs: 5,
            outputs: vec![9, 10],
        }
    }

    /// Generate a random layered combinational circuit with `inputs` primary
    /// inputs and `gate_count` internal gates.
    pub fn random(inputs: usize, gate_count: usize, seed: u64) -> Circuit {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gates: Vec<Gate> = (0..inputs)
            .map(|_| Gate {
                kind: GateKind::Input,
                fanin: vec![],
            })
            .collect();
        for _ in 0..gate_count {
            let kind = match rng.gen_range(0..6) {
                0 => GateKind::And,
                1 => GateKind::Or,
                2 => GateKind::Nand,
                3 => GateKind::Nor,
                4 => GateKind::Xor,
                _ => GateKind::Not,
            };
            let arity = match kind {
                GateKind::Not | GateKind::Buf => 1,
                GateKind::Xor => 2,
                _ => rng.gen_range(2..4),
            };
            let fanin: Vec<usize> = (0..arity).map(|_| rng.gen_range(0..gates.len())).collect();
            gates.push(Gate { kind, fanin });
        }
        // Outputs: gates nobody consumes (plus the last gate as a fallback).
        let consumed: std::collections::HashSet<usize> =
            gates.iter().flat_map(|g| g.fanin.iter().copied()).collect();
        let mut outputs: Vec<usize> = (inputs..gates.len())
            .filter(|i| !consumed.contains(i))
            .collect();
        if outputs.is_empty() {
            outputs.push(gates.len() - 1);
        }
        Circuit {
            gates,
            inputs,
            outputs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_valued_algebra() {
        assert_eq!(Val::D.good(), Some(true));
        assert_eq!(Val::D.faulty(), Some(false));
        assert_eq!(Val::D.not(), Val::DBar);
        assert_eq!(Val::from_pair(Some(true), Some(true)), Val::One);
        assert_eq!(Val::from_pair(None, Some(true)), Val::X);
    }

    #[test]
    fn c17_simulation_matches_nand_logic() {
        let c17 = Circuit::c17();
        let pattern = [true, true, false, true, false];
        let values = c17.simulate(&pattern);
        // N10 = NAND(N1, N3) = NAND(1,0) = 1
        assert!(values[5]);
        // N11 = NAND(N3, N6) = NAND(0,1) = 1
        assert!(values[6]);
        // N16 = NAND(N2, N11) = NAND(1,1) = 0
        assert!(!values[7]);
        // N22 = NAND(N10, N16) = NAND(1,0) = 1
        assert!(values[9]);
    }

    #[test]
    fn fault_detection_on_c17() {
        let c17 = Circuit::c17();
        // Output gate stuck-at-1: any pattern that drives it to 0 detects it.
        let fault = Fault {
            gate: 9,
            stuck_at_one: true,
        };
        let mut detected = false;
        for bits in 0..32u32 {
            let pattern: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
            if c17.detects(&pattern, fault) {
                detected = true;
                break;
            }
        }
        assert!(detected);
    }

    #[test]
    fn all_faults_enumerates_both_polarities() {
        let c17 = Circuit::c17();
        let faults = c17.all_faults();
        assert_eq!(faults.len(), 2 * c17.gates.len());
        let ids: std::collections::HashSet<u64> = faults.iter().map(Fault::id).collect();
        assert_eq!(ids.len(), faults.len());
    }

    #[test]
    fn random_circuit_is_topologically_ordered() {
        let circuit = Circuit::random(8, 40, 3);
        for (i, gate) in circuit.gates.iter().enumerate() {
            for &f in &gate.fanin {
                assert!(f < i, "gate {i} depends on later gate {f}");
            }
        }
        assert!(!circuit.outputs.is_empty());
        // Simulation must not panic and must be deterministic.
        let pattern = vec![true; circuit.inputs];
        assert_eq!(circuit.simulate(&pattern), circuit.simulate(&pattern));
    }

    #[test]
    fn fanout_is_inverse_of_fanin() {
        let c17 = Circuit::c17();
        assert_eq!(c17.fanout(6), vec![7, 8]);
        assert_eq!(c17.fanout(9), Vec::<usize>::new());
    }
}
