//! Smoke tests for all four paper applications on tiny inputs: the
//! Orca-parallel solver must agree with the sequential reference.
//!
//! These run on small instances so the whole file stays in the one-second
//! range; the speedup-sized instances live in `orca_bench`.

use orca_apps::{acp, atpg, chess, tsp};
use orca_core::OrcaRuntime;

#[test]
fn tsp_parallel_equals_sequential_on_tiny_instance() {
    let instance = tsp::TspInstance::random(7, 41);
    let sequential = tsp::solve_sequential(&instance);
    for workers in [1usize, 2] {
        let runtime = OrcaRuntime::standard(workers);
        let (parallel, report) = tsp::solve_parallel(&runtime, &instance, workers);
        assert_eq!(
            parallel.best_length, sequential.best_length,
            "workers={workers}"
        );
        assert_eq!(
            instance.tour_length(&parallel.best_tour),
            parallel.best_length
        );
        assert_eq!(report.workers(), workers);
        runtime.shutdown();
    }
}

#[test]
fn acp_parallel_equals_sequential_on_tiny_instance() {
    let instance = acp::AcpInstance::random(8, 4, 12, 17);
    let sequential = acp::solve_sequential(&instance);
    let runtime = acp::runtime(2);
    let (parallel, _report) = acp::solve_parallel(&runtime, &instance, 2);
    assert_eq!(parallel.no_solution, sequential.no_solution);
    if !parallel.no_solution {
        assert_eq!(parallel.domains, sequential.domains);
    }
    runtime.shutdown();
}

#[test]
fn chess_parallel_finds_the_same_tactic_as_sequential() {
    let position = &chess::tactical_positions()[0]; // back-rank mate in one
    let mut tables = chess::LocalTables::new();
    let sequential = chess::search_position(&position.board, 2, &mut tables);
    let runtime = OrcaRuntime::standard(2);
    let (parallel, _report) =
        chess::solve_parallel(&runtime, &position.board, 2, 2, chess::TableMode::Local);
    assert!(chess::is_mate_score(sequential.score, 2));
    assert!(chess::is_mate_score(parallel.score, 2));
    assert_eq!(
        parallel.best_move.map(|m| m.to),
        sequential.best_move.map(|m| m.to)
    );
    runtime.shutdown();
}

#[test]
fn atpg_parallel_equals_sequential_on_tiny_circuit() {
    let circuit = atpg::Circuit::random(6, 24, 5);
    let sequential = atpg::solve_sequential(&circuit, false);
    let runtime = OrcaRuntime::standard(2);
    let (parallel, report) = atpg::solve_parallel(&runtime, &circuit, 2, false);
    // Without fault simulation each fault is attacked independently, so the
    // per-fault outcomes (and hence all counts) must match exactly; only
    // the pattern order may differ between the static partitions.
    assert_eq!(parallel.detected, sequential.detected);
    assert_eq!(parallel.untestable, sequential.untestable);
    assert_eq!(parallel.aborted, sequential.aborted);
    assert_eq!(parallel.total_faults, sequential.total_faults);
    assert_eq!(parallel.patterns.len(), sequential.patterns.len());
    assert!(report.total_jobs() > 0);
    runtime.shutdown();
}

#[test]
fn atpg_fault_simulation_keeps_coverage_in_parallel() {
    let circuit = atpg::Circuit::random(6, 24, 5);
    let sequential = atpg::solve_sequential(&circuit, false);
    let runtime = OrcaRuntime::standard(2);
    let (with_sim, _) = atpg::solve_parallel(&runtime, &circuit, 2, true);
    // Shared fault simulation prunes redundant PODEM runs but must not
    // lose coverage.
    assert!(with_sim.detected >= sequential.detected * 9 / 10);
    assert!(with_sim.work <= sequential.work * 2);
    runtime.shutdown();
}
