//! Registry of object types known to a node.
//!
//! When a "create object" or "install copy" message arrives over the network
//! it carries only the object's *type name* and encoded state; the receiving
//! runtime system looks the name up here to construct a concrete replica.
//! Every node of an application registers the same set of types (in Orca this
//! is guaranteed by compiling one program that runs everywhere).

use std::collections::HashMap;
use std::sync::Arc;

use crate::replica::{AnyReplica, Replica};
use crate::shard::{ShardAdapter, ShardLogic, ShardableType};
use crate::{ObjectError, ObjectType};

type Factory = Arc<dyn Fn(&[u8]) -> Result<Box<dyn AnyReplica>, ObjectError> + Send + Sync>;

/// Maps registered type names to replica factories and, for shardable
/// types, their partitioning logic.
#[derive(Clone, Default)]
pub struct ObjectRegistry {
    factories: HashMap<&'static str, Factory>,
    shard_logic: HashMap<&'static str, Arc<dyn ShardLogic>>,
}

impl std::fmt::Debug for ObjectRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObjectRegistry")
            .field("types", &self.factories.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl ObjectRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        ObjectRegistry::default()
    }

    /// Register an object type. Registering the same type twice is harmless.
    pub fn register<T: ObjectType>(&mut self) -> &mut Self {
        self.factories.insert(
            T::TYPE_NAME,
            Arc::new(|bytes: &[u8]| {
                Ok(Box::new(Replica::<T>::from_state_bytes(bytes)?) as Box<dyn AnyReplica>)
            }),
        );
        self
    }

    /// Register a shardable object type: the replica factory plus the
    /// partitioning logic the sharded runtime system needs. Types registered
    /// with plain [`ObjectRegistry::register`] fall back to primary-copy
    /// semantics under the sharded runtime system.
    pub fn register_sharded<T: ShardableType>(&mut self) -> &mut Self {
        self.register::<T>();
        self.shard_logic
            .insert(T::TYPE_NAME, ShardAdapter::<T>::shared());
        self
    }

    /// True if `type_name` has been registered.
    pub fn contains(&self, type_name: &str) -> bool {
        self.factories.contains_key(type_name)
    }

    /// Partitioning logic of `type_name`, if it was registered as shardable.
    pub fn shard_logic(&self, type_name: &str) -> Option<Arc<dyn ShardLogic>> {
        self.shard_logic.get(type_name).cloned()
    }

    /// Names of all registered types (unordered).
    pub fn type_names(&self) -> Vec<&'static str> {
        self.factories.keys().copied().collect()
    }

    /// Instantiate a replica of `type_name` from an encoded state.
    pub fn instantiate(
        &self,
        type_name: &str,
        state: &[u8],
    ) -> Result<Box<dyn AnyReplica>, ObjectError> {
        let factory = self
            .factories
            .get(type_name)
            .ok_or_else(|| ObjectError::UnknownType(type_name.to_string()))?;
        factory(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{Accumulator, AccumulatorOp};
    use orca_wire::Wire;

    #[test]
    fn register_and_instantiate() {
        let mut registry = ObjectRegistry::new();
        registry.register::<Accumulator>();
        assert!(registry.contains(Accumulator::TYPE_NAME));
        assert_eq!(registry.type_names(), vec![Accumulator::TYPE_NAME]);

        let state = 5i64.to_bytes();
        let mut replica = registry
            .instantiate(Accumulator::TYPE_NAME, &state)
            .unwrap();
        assert_eq!(replica.type_name(), Accumulator::TYPE_NAME);
        let reply = replica
            .apply_encoded(&AccumulatorOp::Read.to_bytes())
            .unwrap();
        match reply {
            crate::AppliedOutcome::Done(bytes) => {
                assert_eq!(i64::from_bytes(&bytes).unwrap(), 5)
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_type_is_an_error() {
        let registry = ObjectRegistry::new();
        assert!(matches!(
            registry.instantiate("Nope", &[]),
            Err(ObjectError::UnknownType(_))
        ));
    }

    #[test]
    fn bad_state_is_a_codec_error() {
        let mut registry = ObjectRegistry::new();
        registry.register::<Accumulator>();
        assert!(matches!(
            registry.instantiate(Accumulator::TYPE_NAME, &[0xff, 0xff, 0xff, 0xff, 0xff]),
            Err(ObjectError::Codec(_))
        ));
    }

    #[test]
    fn double_registration_is_harmless() {
        let mut registry = ObjectRegistry::new();
        registry.register::<Accumulator>().register::<Accumulator>();
        assert_eq!(registry.type_names().len(), 1);
    }

    #[test]
    fn sharded_registration_exposes_logic() {
        use crate::testing::{Bank, BankOp};
        use crate::ShardRoute;
        use orca_wire::Wire;
        let mut registry = ObjectRegistry::new();
        registry
            .register::<Accumulator>()
            .register_sharded::<Bank>();
        assert!(registry.shard_logic(Accumulator::TYPE_NAME).is_none());
        let logic = registry.shard_logic(Bank::TYPE_NAME).expect("bank shards");
        assert_eq!(
            logic.route(&BankOp::Sum.to_bytes(), 4).unwrap(),
            ShardRoute::All
        );
        // The factory is registered too.
        let state = <Bank as crate::ObjectType>::State::new().to_bytes();
        assert!(registry.instantiate(Bank::TYPE_NAME, &state).is_ok());
    }
}
