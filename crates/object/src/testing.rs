//! Small object types used by tests throughout the workspace.
//!
//! They are kept in the library (not behind `cfg(test)`) because the runtime
//! system crates and the integration tests need shared, well-understood
//! object types to exercise replication with.

use orca_wire::{Decoder, Encoder, Wire, WireError, WireResult};

use crate::{ObjectType, OpKind, OpOutcome};

/// A shared integer accumulator with a guard-based wait operation.
///
/// * `Read` returns the current value (read).
/// * `Add(n)` adds `n` and returns the new value (write).
/// * `Set(n)` overwrites the value (write).
/// * `AwaitAtLeast(n)` blocks until the value is at least `n`, then returns
///   it (read with a guard — demonstrates Orca's blocking operations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Accumulator;

/// Operations of [`Accumulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccumulatorOp {
    /// Return the current value.
    Read,
    /// Add to the value, returning the new value.
    Add(i64),
    /// Overwrite the value.
    Set(i64),
    /// Block until the value is at least the operand, then return it.
    AwaitAtLeast(i64),
}

impl Wire for AccumulatorOp {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            AccumulatorOp::Read => enc.put_u8(0),
            AccumulatorOp::Add(n) => {
                enc.put_u8(1);
                n.encode(enc);
            }
            AccumulatorOp::Set(n) => {
                enc.put_u8(2);
                n.encode(enc);
            }
            AccumulatorOp::AwaitAtLeast(n) => {
                enc.put_u8(3);
                n.encode(enc);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        match dec.get_u8()? {
            0 => Ok(AccumulatorOp::Read),
            1 => Ok(AccumulatorOp::Add(Wire::decode(dec)?)),
            2 => Ok(AccumulatorOp::Set(Wire::decode(dec)?)),
            3 => Ok(AccumulatorOp::AwaitAtLeast(Wire::decode(dec)?)),
            tag => Err(WireError::InvalidTag {
                type_name: "AccumulatorOp",
                tag: u64::from(tag),
            }),
        }
    }
}

impl ObjectType for Accumulator {
    type State = i64;
    type Op = AccumulatorOp;
    type Reply = i64;

    const TYPE_NAME: &'static str = "test.Accumulator";

    fn kind(op: &Self::Op) -> OpKind {
        match op {
            AccumulatorOp::Read | AccumulatorOp::AwaitAtLeast(_) => OpKind::Read,
            AccumulatorOp::Add(_) | AccumulatorOp::Set(_) => OpKind::Write,
        }
    }

    fn apply(state: &mut Self::State, op: &Self::Op) -> OpOutcome<Self::Reply> {
        match op {
            AccumulatorOp::Read => OpOutcome::Done(*state),
            AccumulatorOp::Add(n) => {
                *state += n;
                OpOutcome::Done(*state)
            }
            AccumulatorOp::Set(n) => {
                *state = *n;
                OpOutcome::Done(*state)
            }
            AccumulatorOp::AwaitAtLeast(n) => {
                if *state >= *n {
                    OpOutcome::Done(*state)
                } else {
                    OpOutcome::Blocked
                }
            }
        }
    }
}

/// An append-only log of small integers; useful for checking that all
/// replicas observe writes in exactly the same order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventLog;

/// Operations of [`EventLog`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventLogOp {
    /// Append a value (write); returns the new length.
    Append(u32),
    /// Return the whole log (read).
    Snapshot,
    /// Return the length of the log (read).
    Len,
}

impl Wire for EventLogOp {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            EventLogOp::Append(v) => {
                enc.put_u8(0);
                v.encode(enc);
            }
            EventLogOp::Snapshot => enc.put_u8(1),
            EventLogOp::Len => enc.put_u8(2),
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        match dec.get_u8()? {
            0 => Ok(EventLogOp::Append(Wire::decode(dec)?)),
            1 => Ok(EventLogOp::Snapshot),
            2 => Ok(EventLogOp::Len),
            tag => Err(WireError::InvalidTag {
                type_name: "EventLogOp",
                tag: u64::from(tag),
            }),
        }
    }
}

/// Reply type of [`EventLog`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventLogReply {
    /// New length after an append, or current length.
    Len(u64),
    /// Full contents of the log.
    Contents(Vec<u32>),
}

impl Wire for EventLogReply {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            EventLogReply::Len(n) => {
                enc.put_u8(0);
                n.encode(enc);
            }
            EventLogReply::Contents(v) => {
                enc.put_u8(1);
                v.encode(enc);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        match dec.get_u8()? {
            0 => Ok(EventLogReply::Len(Wire::decode(dec)?)),
            1 => Ok(EventLogReply::Contents(Wire::decode(dec)?)),
            tag => Err(WireError::InvalidTag {
                type_name: "EventLogReply",
                tag: u64::from(tag),
            }),
        }
    }
}

impl ObjectType for EventLog {
    type State = Vec<u32>;
    type Op = EventLogOp;
    type Reply = EventLogReply;

    const TYPE_NAME: &'static str = "test.EventLog";

    fn kind(op: &Self::Op) -> OpKind {
        match op {
            EventLogOp::Append(_) => OpKind::Write,
            EventLogOp::Snapshot | EventLogOp::Len => OpKind::Read,
        }
    }

    fn apply(state: &mut Self::State, op: &Self::Op) -> OpOutcome<Self::Reply> {
        match op {
            EventLogOp::Append(v) => {
                state.push(*v);
                OpOutcome::Done(EventLogReply::Len(state.len() as u64))
            }
            EventLogOp::Snapshot => OpOutcome::Done(EventLogReply::Contents(state.clone())),
            EventLogOp::Len => OpOutcome::Done(EventLogReply::Len(state.len() as u64)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_semantics() {
        let mut state = 0i64;
        assert_eq!(
            Accumulator::apply(&mut state, &AccumulatorOp::Add(3)),
            OpOutcome::Done(3)
        );
        assert_eq!(
            Accumulator::apply(&mut state, &AccumulatorOp::AwaitAtLeast(5)),
            OpOutcome::Blocked
        );
        assert_eq!(
            Accumulator::apply(&mut state, &AccumulatorOp::Set(10)),
            OpOutcome::Done(10)
        );
        assert_eq!(
            Accumulator::apply(&mut state, &AccumulatorOp::AwaitAtLeast(5)),
            OpOutcome::Done(10)
        );
        assert_eq!(Accumulator::kind(&AccumulatorOp::Read), OpKind::Read);
        assert_eq!(Accumulator::kind(&AccumulatorOp::Add(1)), OpKind::Write);
    }

    #[test]
    fn event_log_semantics_and_codec() {
        let mut state: Vec<u32> = vec![];
        assert_eq!(
            EventLog::apply(&mut state, &EventLogOp::Append(7)),
            OpOutcome::Done(EventLogReply::Len(1))
        );
        assert_eq!(
            EventLog::apply(&mut state, &EventLogOp::Snapshot),
            OpOutcome::Done(EventLogReply::Contents(vec![7]))
        );
        for op in [EventLogOp::Append(3), EventLogOp::Snapshot, EventLogOp::Len] {
            assert_eq!(EventLogOp::from_bytes(&op.to_bytes()).unwrap(), op);
        }
        let reply = EventLogReply::Contents(vec![1, 2, 3]);
        assert_eq!(EventLogReply::from_bytes(&reply.to_bytes()).unwrap(), reply);
    }

    #[test]
    fn accumulator_op_codec_round_trip() {
        for op in [
            AccumulatorOp::Read,
            AccumulatorOp::Add(-5),
            AccumulatorOp::Set(9),
            AccumulatorOp::AwaitAtLeast(2),
        ] {
            assert_eq!(AccumulatorOp::from_bytes(&op.to_bytes()).unwrap(), op);
        }
    }
}

/// A shardable bank of keyed counters, used to exercise partitioning logic
/// and the sharded runtime system without pulling in the standard object
/// library of `orca-core` (which sits above this crate).
///
/// * `Deposit { key, amount }` adds to one account (write, one partition).
/// * `Get(key)` reads one account (read, one partition).
/// * `Sum` totals every account (read, all partitions).
/// * `Clear` empties the bank (write, all partitions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bank;

/// Operations of [`Bank`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankOp {
    /// Add `amount` to account `key`, returning the new balance (write).
    Deposit {
        /// Account key.
        key: u64,
        /// Amount to add.
        amount: i64,
    },
    /// Return the balance of account `key`, 0 if absent (read).
    Get(u64),
    /// Return the total over all accounts (read).
    Sum,
    /// Remove every account (write); returns 0.
    Clear,
}

impl Wire for BankOp {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            BankOp::Deposit { key, amount } => {
                enc.put_u8(0);
                key.encode(enc);
                amount.encode(enc);
            }
            BankOp::Get(key) => {
                enc.put_u8(1);
                key.encode(enc);
            }
            BankOp::Sum => enc.put_u8(2),
            BankOp::Clear => enc.put_u8(3),
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        match dec.get_u8()? {
            0 => Ok(BankOp::Deposit {
                key: Wire::decode(dec)?,
                amount: Wire::decode(dec)?,
            }),
            1 => Ok(BankOp::Get(Wire::decode(dec)?)),
            2 => Ok(BankOp::Sum),
            3 => Ok(BankOp::Clear),
            tag => Err(WireError::InvalidTag {
                type_name: "BankOp",
                tag: u64::from(tag),
            }),
        }
    }
}

/// Reply type of [`Bank`] operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankReply {
    /// A balance or a sum.
    Value(i64),
}

impl Wire for BankReply {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            BankReply::Value(v) => {
                enc.put_u8(0);
                v.encode(enc);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        match dec.get_u8()? {
            0 => Ok(BankReply::Value(Wire::decode(dec)?)),
            tag => Err(WireError::InvalidTag {
                type_name: "BankReply",
                tag: u64::from(tag),
            }),
        }
    }
}

impl ObjectType for Bank {
    type State = std::collections::BTreeMap<u64, i64>;
    type Op = BankOp;
    type Reply = BankReply;

    const TYPE_NAME: &'static str = "test.Bank";

    fn kind(op: &Self::Op) -> OpKind {
        match op {
            BankOp::Deposit { .. } | BankOp::Clear => OpKind::Write,
            BankOp::Get(_) | BankOp::Sum => OpKind::Read,
        }
    }

    fn apply(state: &mut Self::State, op: &Self::Op) -> OpOutcome<Self::Reply> {
        match op {
            BankOp::Deposit { key, amount } => {
                let balance = state.entry(*key).or_insert(0);
                *balance += amount;
                OpOutcome::Done(BankReply::Value(*balance))
            }
            BankOp::Get(key) => {
                OpOutcome::Done(BankReply::Value(state.get(key).copied().unwrap_or(0)))
            }
            BankOp::Sum => OpOutcome::Done(BankReply::Value(state.values().sum())),
            BankOp::Clear => {
                state.clear();
                OpOutcome::Done(BankReply::Value(0))
            }
        }
    }
}

impl crate::shard::ShardableType for Bank {
    fn split_state(state: &Self::State, parts: u32) -> Vec<Self::State> {
        let mut split = vec![Self::State::new(); parts.max(1) as usize];
        for (&key, &balance) in state {
            split[crate::shard::shard_of_u64(key, parts) as usize].insert(key, balance);
        }
        split
    }

    fn merge_states(parts: Vec<Self::State>) -> Self::State {
        // Partitions hold disjoint key sets, so a plain union recombines.
        parts.into_iter().flatten().collect()
    }

    fn route(op: &Self::Op, parts: u32) -> crate::shard::ShardRoute {
        use crate::shard::{shard_of_u64, ShardRoute};
        match op {
            BankOp::Deposit { key, .. } => ShardRoute::One(shard_of_u64(*key, parts)),
            BankOp::Get(key) => ShardRoute::One(shard_of_u64(*key, parts)),
            BankOp::Sum | BankOp::Clear => ShardRoute::All,
        }
    }

    fn combine(op: &Self::Op, replies: Vec<Self::Reply>) -> Self::Reply {
        match op {
            BankOp::Sum => BankReply::Value(replies.iter().map(|BankReply::Value(v)| v).sum()),
            // Deposit/Get are single-partition; Clear replies 0 everywhere.
            _ => replies.into_iter().next().unwrap_or(BankReply::Value(0)),
        }
    }
}
