//! The shared data-object model.
//!
//! A *shared data-object* is an instance of an abstract data type: some
//! encapsulated state plus a set of operations. Processes never touch the
//! state directly — every access goes through an operation, which is what
//! lets the runtime system interpose, keep replicas consistent and ship
//! operations across the network (§2 of the paper).
//!
//! This crate defines the model only; the runtime systems that replicate
//! objects live in `orca-rts` and the user-facing typed API in `orca-core`.
//!
//! * [`ObjectType`] — the trait an abstract data type implements: a state
//!   type, an operation type, a reply type, a read/write classification and
//!   a deterministic `apply` function. Operations may *block* (Orca's guard
//!   mechanism): `apply` returns [`OpOutcome::Blocked`] without changing the
//!   state, and the runtime retries the operation when the object changes.
//! * [`Replica`] / [`AnyReplica`] — a concrete copy of an object's state on
//!   one node, usable through a type-erased interface so the runtime can
//!   manage objects of many types uniformly and ship encoded operations.
//! * [`ObjectRegistry`] — maps type names to replica factories so that a
//!   node can instantiate a replica from a network message (type name +
//!   encoded state).
//! * [`shard`] — partitioning logic for shardable types: how a state splits
//!   into partitions, how operations route to them, and how per-partition
//!   replies combine. Used by the sharded runtime system of `orca-rts`.

pub mod id;
pub mod registry;
pub mod replica;
pub mod shard;
pub mod testing;

pub use id::{ObjectDescriptor, ObjectId};
pub use registry::ObjectRegistry;
pub use replica::{AnyReplica, AppliedOutcome, Replica};
pub use shard::{ShardAdapter, ShardLogic, ShardRoute, ShardableType};

use orca_wire::Wire;

/// Classification of an operation.
///
/// Reads never modify the object and may therefore be executed on any local
/// replica without communication; writes must be ordered by the runtime
/// system and applied at every replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Operation that does not change the state of its object.
    Read,
    /// Operation that (potentially) changes the state of its object.
    Write,
}

/// Result of applying an operation to a replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpOutcome<R> {
    /// The operation executed; the reply is returned to the invoker.
    Done(R),
    /// The operation's guard was false: nothing happened, and the invoker
    /// must retry after the object has been modified (Orca blocks the
    /// calling process until then).
    Blocked,
}

impl<R> OpOutcome<R> {
    /// True if the operation completed.
    pub fn is_done(&self) -> bool {
        matches!(self, OpOutcome::Done(_))
    }

    /// Unwrap the reply, panicking on [`OpOutcome::Blocked`].
    pub fn unwrap(self) -> R {
        match self {
            OpOutcome::Done(reply) => reply,
            OpOutcome::Blocked => panic!("operation blocked"),
        }
    }
}

/// Errors of the object layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObjectError {
    /// An encoded operation or state could not be decoded.
    Codec(String),
    /// The requested object type is not registered on this node.
    UnknownType(String),
    /// The requested object does not exist.
    NoSuchObject(ObjectId),
    /// A read-classified operation attempted to modify state (programming
    /// error in an `ObjectType` implementation, caught in debug assertions).
    ReadModifiedState,
}

impl std::fmt::Display for ObjectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObjectError::Codec(msg) => write!(f, "codec error: {msg}"),
            ObjectError::UnknownType(name) => write!(f, "unknown object type: {name}"),
            ObjectError::NoSuchObject(id) => write!(f, "no such object: {id:?}"),
            ObjectError::ReadModifiedState => {
                write!(f, "read-classified operation modified object state")
            }
        }
    }
}

impl std::error::Error for ObjectError {}

/// An abstract data type usable as a shared data-object.
///
/// Implementations must satisfy two semantic requirements that the runtime
/// relies on:
///
/// 1. **Determinism.** `apply` must be a pure function of `(state, op)`: the
///    broadcast runtime system applies the same operation independently on
///    every replica and the replicas must stay identical.
/// 2. **Honest classification.** Operations classified [`OpKind::Read`] must
///    not modify the state; the runtime executes them locally without any
///    ordering.
pub trait ObjectType: Send + Sync + 'static {
    /// The encapsulated state of the object.
    type State: Clone + Send + Sync + Wire + 'static;
    /// The operations of the abstract data type (usually an enum).
    type Op: Clone + Send + Sync + Wire + 'static;
    /// The value returned to the invoker of an operation.
    type Reply: Clone + Send + Sync + Wire + 'static;

    /// Globally unique name of the type, used by the [`ObjectRegistry`].
    const TYPE_NAME: &'static str;

    /// Classify an operation.
    fn kind(op: &Self::Op) -> OpKind;

    /// Apply an operation to the state, returning a reply or blocking.
    fn apply(state: &mut Self::State, op: &Self::Op) -> OpOutcome<Self::Reply>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_helpers() {
        let done: OpOutcome<u32> = OpOutcome::Done(7);
        assert!(done.is_done());
        assert_eq!(done.unwrap(), 7);
        let blocked: OpOutcome<u32> = OpOutcome::Blocked;
        assert!(!blocked.is_done());
    }

    #[test]
    #[should_panic(expected = "operation blocked")]
    fn unwrap_blocked_panics() {
        let blocked: OpOutcome<u32> = OpOutcome::Blocked;
        let _ = blocked.unwrap();
    }

    #[test]
    fn error_display() {
        assert!(ObjectError::UnknownType("Foo".into())
            .to_string()
            .contains("Foo"));
        assert!(ObjectError::NoSuchObject(ObjectId(4))
            .to_string()
            .contains('4'));
    }
}
