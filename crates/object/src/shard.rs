//! Partitioning logic for shardable object types.
//!
//! The sharded runtime system (`orca-rts`) splits one logical shared object
//! into `N` partitions, each owned by a single node, so that writes to
//! different partitions proceed in parallel. Whether — and how — a type can
//! be split is a property of the abstract data type itself, so the logic
//! lives here in the object layer:
//!
//! * [`ShardableType`] is the typed trait an [`ObjectType`] implements to
//!   opt into sharding: how to split an initial state, how an operation maps
//!   onto partitions ([`ShardRoute`]), how to rewrite an operation for one
//!   partition, and how to combine per-partition replies.
//! * [`ShardLogic`] is the type-erased counterpart the runtime system uses
//!   (it only ever sees encoded states, operations and replies); the blanket
//!   adapter [`ShardAdapter`] derives it from any [`ShardableType`].
//! * [`ObjectRegistry::register_sharded`](crate::ObjectRegistry::register_sharded)
//!   records the logic next to the replica factory, so a runtime system can
//!   ask "does this type shard?" by name.
//!
//! The hash helpers at the bottom are deliberately seed-free and stable
//! across runs and platforms: partition placement must be deterministic so
//! that every node routes an operation to the same owner without
//! coordination, and so that simulation runs are reproducible.

use std::marker::PhantomData;
use std::sync::Arc;

use orca_wire::Wire;

use crate::{ObjectError, ObjectType, OpOutcome};

/// How an operation maps onto the partitions of a sharded object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardRoute {
    /// The operation addresses exactly one partition (key-addressed reads
    /// and writes). It executes at that partition's owner only.
    One(u32),
    /// The operation must run on every partition (possibly rewritten per
    /// partition with [`ShardableType::op_for`]); the per-partition replies
    /// are merged with [`ShardableType::combine`].
    All,
    /// The operation is tried on partitions one at a time until one
    /// *accepts* it ([`ShardableType::accepts`]) — the work-stealing scan
    /// used by blocking dequeue-style operations. It blocks only while no
    /// partition accepts and at least one partition's guard is false.
    Any,
}

/// An abstract data type that can be split into independently-synchronized
/// partitions.
///
/// Implementations must preserve the type's sequential semantics in the
/// degenerate single-partition case: with `parts == 1`, `split_state` must
/// return the original state, every route must resolve to partition 0, and
/// `combine` over a single reply must be the identity. The conformance suite
/// relies on this to prove the sharded runtime system equivalent to the
/// primary-copy one.
pub trait ShardableType: ObjectType {
    /// Split an initial state into `parts` partition states. Must return
    /// exactly `parts` elements whose union is the original state.
    fn split_state(state: &Self::State, parts: u32) -> Vec<Self::State>;

    /// Recombine partition states (given in partition order) into one
    /// whole-object state — the inverse of [`ShardableType::split_state`]:
    /// `merge_states(split_state(s, n))` must be semantically equal to `s`.
    /// Used when a runtime system collapses a sharded object back into a
    /// single replica (e.g. an adaptive regime switch).
    fn merge_states(parts: Vec<Self::State>) -> Self::State;

    /// Classify an operation's partition routing.
    fn route(op: &Self::Op, parts: u32) -> ShardRoute;

    /// The operation to actually execute on `partition` (identity by
    /// default). Used to narrow batched writes to a partition's share and to
    /// remap global indices to partition-local ones.
    fn op_for(op: &Self::Op, partition: u32, parts: u32) -> Self::Op {
        let _ = (partition, parts);
        op.clone()
    }

    /// Merge the per-partition replies of an [`ShardRoute::All`] operation,
    /// given in partition order.
    fn combine(op: &Self::Op, replies: Vec<Self::Reply>) -> Self::Reply;

    /// For an [`ShardRoute::Any`] operation: did this partition *accept* the
    /// operation (stop the scan), or should the next partition be tried?
    fn accepts(op: &Self::Op, reply: &Self::Reply) -> bool {
        let _ = (op, reply);
        true
    }
}

/// Type-erased partitioning logic, operating on encoded states, operations
/// and replies. This is what the runtime system stores and calls.
pub trait ShardLogic: Send + Sync {
    /// Split an encoded state into `parts` encoded partition states.
    fn split_state(&self, state: &[u8], parts: u32) -> Result<Vec<Vec<u8>>, ObjectError>;

    /// Recombine encoded partition states (partition order) into one
    /// encoded whole-object state.
    fn merge_states(&self, parts: Vec<Vec<u8>>) -> Result<Vec<u8>, ObjectError>;

    /// Route an encoded operation.
    fn route(&self, op: &[u8], parts: u32) -> Result<ShardRoute, ObjectError>;

    /// Rewrite an encoded operation for one partition.
    fn op_for(&self, op: &[u8], partition: u32, parts: u32) -> Result<Vec<u8>, ObjectError>;

    /// Combine encoded per-partition replies (partition order) of an
    /// [`ShardRoute::All`] operation.
    fn combine(&self, op: &[u8], replies: Vec<Vec<u8>>) -> Result<Vec<u8>, ObjectError>;

    /// Whether an encoded reply means the partition accepted an
    /// [`ShardRoute::Any`] operation.
    fn accepts(&self, op: &[u8], reply: &[u8]) -> Result<bool, ObjectError>;

    /// Apply an encoded operation to a *typed* state encoded in `state`,
    /// returning the updated state and outcome. Only used by unit tests to
    /// validate shard logic without a full runtime; runtime systems apply
    /// operations through replicas instead.
    fn apply_to_state(
        &self,
        state: &[u8],
        op: &[u8],
    ) -> Result<(Vec<u8>, Option<Vec<u8>>), ObjectError>;
}

fn codec<T>(err: orca_wire::WireError) -> ObjectError {
    ObjectError::Codec(format!("{}: {err}", std::any::type_name::<T>()))
}

/// Adapter deriving type-erased [`ShardLogic`] from a [`ShardableType`].
pub struct ShardAdapter<T: ShardableType>(PhantomData<fn() -> T>);

impl<T: ShardableType> Default for ShardAdapter<T> {
    fn default() -> Self {
        ShardAdapter(PhantomData)
    }
}

impl<T: ShardableType> ShardAdapter<T> {
    /// Create a shareable instance of the adapter.
    pub fn shared() -> Arc<dyn ShardLogic> {
        Arc::new(ShardAdapter::<T>::default())
    }
}

impl<T: ShardableType> ShardLogic for ShardAdapter<T> {
    fn split_state(&self, state: &[u8], parts: u32) -> Result<Vec<Vec<u8>>, ObjectError> {
        let state = T::State::from_bytes(state).map_err(codec::<T::State>)?;
        let split = T::split_state(&state, parts);
        debug_assert_eq!(split.len(), parts as usize, "split_state arity");
        Ok(split.iter().map(Wire::to_bytes).collect())
    }

    fn merge_states(&self, parts: Vec<Vec<u8>>) -> Result<Vec<u8>, ObjectError> {
        let states = parts
            .iter()
            .map(|bytes| T::State::from_bytes(bytes).map_err(codec::<T::State>))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(T::merge_states(states).to_bytes())
    }

    fn route(&self, op: &[u8], parts: u32) -> Result<ShardRoute, ObjectError> {
        let op = T::Op::from_bytes(op).map_err(codec::<T::Op>)?;
        Ok(T::route(&op, parts))
    }

    fn op_for(&self, op: &[u8], partition: u32, parts: u32) -> Result<Vec<u8>, ObjectError> {
        let op = T::Op::from_bytes(op).map_err(codec::<T::Op>)?;
        Ok(T::op_for(&op, partition, parts).to_bytes())
    }

    fn combine(&self, op: &[u8], replies: Vec<Vec<u8>>) -> Result<Vec<u8>, ObjectError> {
        let op = T::Op::from_bytes(op).map_err(codec::<T::Op>)?;
        let replies = replies
            .iter()
            .map(|bytes| T::Reply::from_bytes(bytes).map_err(codec::<T::Reply>))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(T::combine(&op, replies).to_bytes())
    }

    fn accepts(&self, op: &[u8], reply: &[u8]) -> Result<bool, ObjectError> {
        let op = T::Op::from_bytes(op).map_err(codec::<T::Op>)?;
        let reply = T::Reply::from_bytes(reply).map_err(codec::<T::Reply>)?;
        Ok(T::accepts(&op, &reply))
    }

    fn apply_to_state(
        &self,
        state: &[u8],
        op: &[u8],
    ) -> Result<(Vec<u8>, Option<Vec<u8>>), ObjectError> {
        let mut state = T::State::from_bytes(state).map_err(codec::<T::State>)?;
        let op = T::Op::from_bytes(op).map_err(codec::<T::Op>)?;
        let reply = match T::apply(&mut state, &op) {
            OpOutcome::Done(reply) => Some(reply.to_bytes()),
            OpOutcome::Blocked => None,
        };
        Ok((state.to_bytes(), reply))
    }
}

/// SplitMix64 finalizer: a strong, seed-free 64-bit mix used for partition
/// placement and integer keys. Stable across runs and platforms (unlike
/// `std`'s `RandomState`-seeded hashes), which keeps shard placement
/// deterministic.
pub fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Deterministic hashed-spread placement: the owner node of partition
/// `partition` of the object with raw id `object` on a pool of `nodes`
/// nodes. Consecutive partitions of one object land on distinct nodes and
/// different objects start at different offsets; every node computes the
/// same placement without coordination. Shared by the sharded and
/// adaptive runtime systems so the two always agree.
pub fn spread_owner(object: u64, partition: u32, nodes: usize) -> u16 {
    ((mix64(object) + u64::from(partition)) % nodes.max(1) as u64) as u16
}

/// Partition of an integer key.
pub fn shard_of_u64(key: u64, parts: u32) -> u32 {
    if parts <= 1 {
        return 0;
    }
    (mix64(key) % u64::from(parts)) as u32
}

/// Partition of a byte-string key (FNV-1a folded through [`mix64`]).
pub fn shard_of_bytes(key: &[u8], parts: u32) -> u32 {
    if parts <= 1 {
        return 0;
    }
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in key {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (mix64(hash) % u64::from(parts)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{Bank, BankOp, BankReply};

    #[test]
    fn hashes_are_stable_and_in_range() {
        // Pin a few values so an accidental change to the mix shows up: the
        // placement of existing simulations must not silently change.
        assert_eq!(mix64(0), 0);
        assert_eq!(shard_of_u64(7, 1), 0);
        for parts in [1u32, 2, 4, 8, 13] {
            for key in 0..200u64 {
                assert!(shard_of_u64(key, parts) < parts);
            }
            for len in 0..16usize {
                let bytes: Vec<u8> = (0..len as u8).collect();
                assert!(shard_of_bytes(&bytes, parts) < parts);
            }
        }
        // Distribution sanity: 256 keys over 4 partitions should not
        // collapse onto fewer than 4.
        let mut seen = std::collections::BTreeSet::new();
        for key in 0..256u64 {
            seen.insert(shard_of_u64(key, 4));
        }
        assert_eq!(seen.len(), 4);
        // Placement spreads consecutive partitions over distinct nodes.
        for object in [1u64, 7, 1 << 48] {
            let owners: std::collections::BTreeSet<u16> =
                (0..4).map(|p| spread_owner(object, p, 4)).collect();
            assert_eq!(owners.len(), 4);
            assert!(owners.iter().all(|&o| usize::from(o) < 4));
        }
    }

    #[test]
    fn adapter_round_trips_typed_logic() {
        let logic = ShardAdapter::<Bank>::shared();
        let state: <Bank as ObjectType>::State =
            (0..8u64).map(|k| (k, i64::try_from(k).unwrap())).collect();
        let parts = logic.split_state(&state.to_bytes(), 4).unwrap();
        assert_eq!(parts.len(), 4);

        // merge_states is the inverse of split_state (BTreeMap encoding is
        // canonical, so byte equality holds).
        assert_eq!(logic.merge_states(parts.clone()).unwrap(), state.to_bytes());

        // Every key lands in the partition its routed op targets.
        for key in 0..8u64 {
            let op = BankOp::Get(key).to_bytes();
            let ShardRoute::One(p) = logic.route(&op, 4).unwrap() else {
                panic!("Get must route to one partition");
            };
            let (_, reply) = logic.apply_to_state(&parts[p as usize], &op).unwrap();
            let reply = BankReply::from_bytes(&reply.unwrap()).unwrap();
            assert_eq!(reply, BankReply::Value(i64::try_from(key).unwrap()));
        }

        // Sum routes everywhere and combines to the full total.
        let sum_op = BankOp::Sum.to_bytes();
        assert_eq!(logic.route(&sum_op, 4).unwrap(), ShardRoute::All);
        let replies = parts
            .iter()
            .map(|p| {
                let (_, reply) = logic.apply_to_state(p, &sum_op).unwrap();
                reply.unwrap()
            })
            .collect();
        let combined = logic.combine(&sum_op, replies).unwrap();
        assert_eq!(
            BankReply::from_bytes(&combined).unwrap(),
            BankReply::Value((0..8i64).sum())
        );
    }

    #[test]
    fn single_partition_split_is_identity() {
        let logic = ShardAdapter::<Bank>::shared();
        let state: <Bank as ObjectType>::State = (0..5u64).map(|k| (k, 1i64)).collect();
        let bytes = state.to_bytes();
        let parts = logic.split_state(&bytes, 1).unwrap();
        assert_eq!(parts, vec![bytes]);
        for key in 0..5u64 {
            assert_eq!(
                logic.route(&BankOp::Get(key).to_bytes(), 1).unwrap(),
                ShardRoute::One(0)
            );
        }
    }

    #[test]
    fn malformed_inputs_are_codec_errors() {
        let logic = ShardAdapter::<Bank>::shared();
        assert!(matches!(
            logic.route(&[0xff, 0xff], 2),
            Err(ObjectError::Codec(_))
        ));
        assert!(matches!(
            logic.split_state(&[0xff, 0xff, 0xff], 2),
            Err(ObjectError::Codec(_))
        ));
        assert!(matches!(
            logic.combine(&BankOp::Sum.to_bytes(), vec![vec![0xff, 0xff]]),
            Err(ObjectError::Codec(_))
        ));
    }
}
