//! Object identifiers and descriptors.

use orca_wire::{Decoder, Encoder, Wire, WireResult};

/// Identifier of a shared data-object, unique within one running application.
///
/// Object ids are assigned by the creating node's runtime system; the node id
/// is folded into the upper bits so that objects created concurrently on
/// different nodes never collide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ObjectId(pub u64);

impl ObjectId {
    /// Compose an object id from the creating node and a per-node counter.
    pub fn compose(node_index: u16, counter: u64) -> ObjectId {
        ObjectId((u64::from(node_index) << 48) | (counter & 0xffff_ffff_ffff))
    }

    /// Index of the node that created the object.
    pub fn creator_index(self) -> u16 {
        (self.0 >> 48) as u16
    }

    /// Per-creator counter part of the id.
    pub fn counter(self) -> u64 {
        self.0 & 0xffff_ffff_ffff
    }
}

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "obj{}/{}", self.creator_index(), self.counter())
    }
}

impl Wire for ObjectId {
    fn encode(&self, enc: &mut Encoder) {
        self.0.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(ObjectId(u64::decode(dec)?))
    }
}

/// Everything a node needs to instantiate a replica of an object it has never
/// seen: the id, the registered type name, and the encoded initial state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectDescriptor {
    /// Identifier of the object.
    pub id: ObjectId,
    /// Registered [`crate::ObjectType::TYPE_NAME`].
    pub type_name: String,
    /// Encoded state at creation (or transfer) time.
    pub state: Vec<u8>,
}

impl Wire for ObjectDescriptor {
    fn encode(&self, enc: &mut Encoder) {
        self.id.encode(enc);
        self.type_name.encode(enc);
        enc.put_bytes(&self.state);
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(ObjectDescriptor {
            id: Wire::decode(dec)?,
            type_name: Wire::decode(dec)?,
            state: dec.get_bytes()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compose_and_split() {
        let id = ObjectId::compose(7, 123);
        assert_eq!(id.creator_index(), 7);
        assert_eq!(id.counter(), 123);
        assert_eq!(id.to_string(), "obj7/123");
    }

    #[test]
    fn ids_from_different_creators_do_not_collide() {
        assert_ne!(ObjectId::compose(0, 1), ObjectId::compose(1, 1));
        assert_ne!(ObjectId::compose(0, 1), ObjectId::compose(0, 2));
    }

    #[test]
    fn wire_round_trip() {
        let id = ObjectId::compose(3, 99);
        assert_eq!(ObjectId::from_bytes(&id.to_bytes()).unwrap(), id);
        let desc = ObjectDescriptor {
            id,
            type_name: "IntObject".into(),
            state: vec![1, 2, 3],
        };
        assert_eq!(
            ObjectDescriptor::from_bytes(&desc.to_bytes()).unwrap(),
            desc
        );
    }
}
