//! Replicas: one node's copy of a shared data-object.

use orca_wire::Wire;

use crate::{ObjectError, ObjectType, OpKind, OpOutcome};

/// Outcome of applying an *encoded* operation to a type-erased replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppliedOutcome {
    /// The operation executed; the encoded reply is returned.
    Done(Vec<u8>),
    /// The operation's guard was false; nothing changed.
    Blocked,
}

impl AppliedOutcome {
    /// True if the operation completed.
    pub fn is_done(&self) -> bool {
        matches!(self, AppliedOutcome::Done(_))
    }
}

/// Type-erased interface to a replica, used by the runtime systems so they
/// can manage objects of arbitrary types and ship encoded operations.
pub trait AnyReplica: Send + Sync {
    /// Registered type name of the object.
    fn type_name(&self) -> &'static str;

    /// Classify an encoded operation without applying it.
    fn op_kind(&self, op: &[u8]) -> Result<OpKind, ObjectError>;

    /// Apply an encoded operation, returning the encoded reply.
    ///
    /// Write operations that complete bump the replica's version; blocked
    /// operations and reads leave it unchanged.
    fn apply_encoded(&mut self, op: &[u8]) -> Result<AppliedOutcome, ObjectError>;

    /// Encode the current state (used for copy transfers and invalidation
    /// re-fetches in the primary-copy runtime system).
    fn state_bytes(&self) -> Vec<u8>;

    /// Overwrite the state from an encoded representation (used when
    /// installing a fetched copy).
    fn set_state_bytes(&mut self, bytes: &[u8]) -> Result<(), ObjectError>;

    /// Monotonic counter of completed write operations on this replica.
    fn version(&self) -> u64;
}

/// A concrete replica of an object of type `T`.
#[derive(Debug, Clone)]
pub struct Replica<T: ObjectType> {
    state: T::State,
    version: u64,
}

impl<T: ObjectType> Replica<T> {
    /// Create a replica holding `state`.
    pub fn new(state: T::State) -> Self {
        Replica { state, version: 0 }
    }

    /// Create a replica by decoding an encoded state.
    pub fn from_state_bytes(bytes: &[u8]) -> Result<Self, ObjectError> {
        let state =
            T::State::from_bytes(bytes).map_err(|err| ObjectError::Codec(err.to_string()))?;
        Ok(Replica::new(state))
    }

    /// Borrow the typed state (used by tests and by local reads in the typed
    /// fast path of `orca-core`).
    pub fn state(&self) -> &T::State {
        &self.state
    }

    /// Apply a typed operation directly.
    pub fn apply(&mut self, op: &T::Op) -> OpOutcome<T::Reply> {
        let outcome = T::apply(&mut self.state, op);
        if outcome.is_done() && T::kind(op) == OpKind::Write {
            self.version += 1;
        }
        outcome
    }
}

impl<T: ObjectType> AnyReplica for Replica<T> {
    fn type_name(&self) -> &'static str {
        T::TYPE_NAME
    }

    fn op_kind(&self, op: &[u8]) -> Result<OpKind, ObjectError> {
        let op = T::Op::from_bytes(op).map_err(|err| ObjectError::Codec(err.to_string()))?;
        Ok(T::kind(&op))
    }

    fn apply_encoded(&mut self, op: &[u8]) -> Result<AppliedOutcome, ObjectError> {
        let op = T::Op::from_bytes(op).map_err(|err| ObjectError::Codec(err.to_string()))?;
        match self.apply(&op) {
            OpOutcome::Done(reply) => Ok(AppliedOutcome::Done(reply.to_bytes())),
            OpOutcome::Blocked => Ok(AppliedOutcome::Blocked),
        }
    }

    fn state_bytes(&self) -> Vec<u8> {
        self.state.to_bytes()
    }

    fn set_state_bytes(&mut self, bytes: &[u8]) -> Result<(), ObjectError> {
        self.state =
            T::State::from_bytes(bytes).map_err(|err| ObjectError::Codec(err.to_string()))?;
        self.version += 1;
        Ok(())
    }

    fn version(&self) -> u64 {
        self.version
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{Accumulator, AccumulatorOp};

    #[test]
    fn typed_apply_bumps_version_on_writes_only() {
        let mut replica = Replica::<Accumulator>::new(0);
        assert_eq!(replica.version(), 0);
        assert_eq!(replica.apply(&AccumulatorOp::Read).unwrap(), 0);
        assert_eq!(replica.version(), 0);
        assert_eq!(replica.apply(&AccumulatorOp::Add(5)).unwrap(), 5);
        assert_eq!(replica.version(), 1);
        assert_eq!(*replica.state(), 5);
    }

    #[test]
    fn encoded_apply_round_trips_reply() {
        let mut replica = Replica::<Accumulator>::new(10);
        let op = AccumulatorOp::Add(7).to_bytes();
        assert_eq!(replica.op_kind(&op).unwrap(), OpKind::Write);
        match replica.apply_encoded(&op).unwrap() {
            AppliedOutcome::Done(reply) => assert_eq!(i64::from_bytes(&reply).unwrap(), 17),
            AppliedOutcome::Blocked => panic!("unexpected block"),
        }
    }

    #[test]
    fn blocked_operation_leaves_state_and_version_untouched() {
        let mut replica = Replica::<Accumulator>::new(1);
        let op = AccumulatorOp::AwaitAtLeast(100).to_bytes();
        assert_eq!(replica.apply_encoded(&op).unwrap(), AppliedOutcome::Blocked);
        assert_eq!(replica.version(), 0);
        assert_eq!(*replica.state(), 1);
        // After the guard becomes true the operation completes.
        replica.apply(&AccumulatorOp::Add(200));
        assert!(replica.apply_encoded(&op).unwrap().is_done());
    }

    #[test]
    fn state_transfer_round_trip() {
        let mut source = Replica::<Accumulator>::new(0);
        source.apply(&AccumulatorOp::Add(42));
        let bytes = source.state_bytes();
        let mut target = Replica::<Accumulator>::new(0);
        target.set_state_bytes(&bytes).unwrap();
        assert_eq!(*target.state(), 42);
        assert!(Replica::<Accumulator>::from_state_bytes(&bytes).is_ok());
        assert!(Replica::<Accumulator>::from_state_bytes(&[0xff, 0xff, 0xff]).is_err());
    }

    #[test]
    fn malformed_operation_is_a_codec_error() {
        let mut replica = Replica::<Accumulator>::new(0);
        assert!(matches!(
            replica.apply_encoded(&[0xff, 1, 2]),
            Err(ObjectError::Codec(_))
        ));
        assert!(matches!(
            replica.op_kind(&[0xff]),
            Err(ObjectError::Codec(_))
        ));
    }
}
