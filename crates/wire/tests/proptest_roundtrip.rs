//! Property-based round-trip tests for the wire codec.
//!
//! The build environment has no crates.io access, so instead of `proptest`
//! these properties are driven by a seeded SplitMix64 generator: each test
//! runs a fixed number of random cases and is fully reproducible. On failure
//! the assert message carries the case index, which together with the fixed
//! seed pins down the failing input exactly.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

use orca_wire::{Decoder, Encoder, Wire, WireResult};

const CASES: usize = 512;

/// Minimal deterministic generator, kept local so this test needs no deps.
struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Self {
        Gen {
            state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    fn string(&mut self) -> String {
        let len = self.below(24);
        (0..len)
            .map(|_| {
                // Bias toward ASCII but include multi-byte code points.
                match self.below(8) {
                    0 => char::from_u32(0x00C0 + self.below(0x200) as u32).unwrap_or('é'),
                    1 => '日',
                    _ => (b' ' + self.below(95) as u8) as char,
                }
            })
            .collect()
    }

    fn bytes(&mut self, max_len: usize) -> Vec<u8> {
        let len = self.below(max_len);
        (0..len).map(|_| self.next_u64() as u8).collect()
    }
}

fn assert_roundtrip<T: Wire + PartialEq + std::fmt::Debug>(value: &T, case: usize) {
    let bytes = value.to_bytes();
    assert_eq!(
        bytes.len(),
        value.encoded_len(),
        "case {case}: encoded_len mismatch for {value:?}"
    );
    let back = T::from_bytes(&bytes);
    assert_eq!(
        back.as_ref().ok(),
        Some(value),
        "case {case}: roundtrip failed for {value:?}: {back:?}"
    );
}

#[test]
fn unsigned_ints_round_trip() {
    let mut gen = Gen::new(0xDEC0DE01);
    for case in 0..CASES {
        let raw = gen.next_u64();
        assert_roundtrip(&(raw as u8), case);
        assert_roundtrip(&(raw as u16), case);
        assert_roundtrip(&(raw as u32), case);
        assert_roundtrip(&raw, case);
        assert_roundtrip(&(raw as usize), case);
    }
    for edge in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
        assert_roundtrip(&edge, usize::MAX);
    }
}

#[test]
fn signed_ints_round_trip() {
    let mut gen = Gen::new(0xDEC0DE02);
    for case in 0..CASES {
        let raw = gen.next_u64() as i64;
        assert_roundtrip(&(raw as i8), case);
        assert_roundtrip(&(raw as i16), case);
        assert_roundtrip(&(raw as i32), case);
        assert_roundtrip(&raw, case);
    }
    for edge in [i64::MIN, -1, 0, 1, i64::MAX] {
        assert_roundtrip(&edge, usize::MAX);
    }
}

#[test]
fn floats_round_trip() {
    let mut gen = Gen::new(0xDEC0DE03);
    for case in 0..CASES {
        let v = f64::from_bits(gen.next_u64());
        let back = f64::from_bytes(&v.to_bytes()).unwrap();
        if v.is_nan() {
            assert!(back.is_nan(), "case {case}: NaN did not survive");
        } else {
            assert_eq!(back.to_bits(), v.to_bits(), "case {case}");
        }
        let single = f32::from_bits(gen.next_u64() as u32);
        let back32 = f32::from_bytes(&single.to_bytes()).unwrap();
        if single.is_nan() {
            assert!(back32.is_nan(), "case {case}: NaN f32 did not survive");
        } else {
            assert_eq!(back32.to_bits(), single.to_bits(), "case {case}");
        }
    }
    for edge in [f64::MIN, f64::MAX, f64::INFINITY, f64::NEG_INFINITY, -0.0] {
        // Compare bit patterns: -0.0 == +0.0 under IEEE comparison, so a
        // plain assert_eq! could not detect sign loss for the signed zero.
        let back = f64::from_bytes(&edge.to_bytes()).unwrap();
        assert_eq!(back.to_bits(), edge.to_bits(), "edge {edge:?}");
    }
}

#[test]
fn bool_unit_string_round_trip() {
    let mut gen = Gen::new(0xDEC0DE04);
    assert_roundtrip(&true, 0);
    assert_roundtrip(&false, 0);
    assert_roundtrip(&(), 0);
    for case in 0..CASES {
        assert_roundtrip(&gen.string(), case);
    }
    assert_roundtrip(&String::new(), usize::MAX);
}

#[test]
fn options_and_results_round_trip() {
    let mut gen = Gen::new(0xDEC0DE05);
    for case in 0..CASES {
        let opt = if gen.below(2) == 0 {
            None
        } else {
            Some(gen.next_u64())
        };
        assert_roundtrip(&opt, case);
        let res: Result<u32, String> = if gen.below(2) == 0 {
            Ok(gen.next_u64() as u32)
        } else {
            Err(gen.string())
        };
        assert_roundtrip(&res, case);
        let boxed = Box::new(gen.next_u64() as i32);
        assert_roundtrip(&boxed, case);
    }
}

#[test]
fn sequences_round_trip() {
    let mut gen = Gen::new(0xDEC0DE06);
    for case in 0..CASES {
        let v: Vec<i32> = (0..gen.below(32)).map(|_| gen.next_u64() as i32).collect();
        assert_roundtrip(&v, case);
        let dq: VecDeque<u16> = (0..gen.below(16)).map(|_| gen.next_u64() as u16).collect();
        assert_roundtrip(&dq, case);
        let arr = [
            gen.next_u64() as u16,
            gen.next_u64() as u16,
            gen.next_u64() as u16,
            gen.next_u64() as u16,
        ];
        assert_roundtrip(&arr, case);
        assert_roundtrip(&gen.bytes(64), case);
    }
    assert_roundtrip(&Vec::<u8>::new(), usize::MAX);
}

#[test]
fn maps_and_sets_round_trip() {
    let mut gen = Gen::new(0xDEC0DE07);
    for case in 0..CASES / 4 {
        let btree: BTreeMap<u16, String> = (0..gen.below(8))
            .map(|_| (gen.next_u64() as u16, gen.string()))
            .collect();
        assert_roundtrip(&btree, case);
        let bset: BTreeSet<i32> = (0..gen.below(8)).map(|_| gen.next_u64() as i32).collect();
        assert_roundtrip(&bset, case);

        // Hash containers have nondeterministic iteration order, so
        // roundtrip equality holds but byte-level equality need not;
        // compare decoded values only.
        let hmap: HashMap<u32, u64> = (0..gen.below(8))
            .map(|_| (gen.next_u64() as u32, gen.next_u64()))
            .collect();
        let back = HashMap::<u32, u64>::from_bytes(&hmap.to_bytes()).unwrap();
        assert_eq!(back, hmap, "case {case}");
        let hset: HashSet<String> = (0..gen.below(8)).map(|_| gen.string()).collect();
        let back = HashSet::<String>::from_bytes(&hset.to_bytes()).unwrap();
        assert_eq!(back, hset, "case {case}");
    }
}

#[test]
fn tuples_round_trip() {
    let mut gen = Gen::new(0xDEC0DE08);
    for case in 0..CASES {
        assert_roundtrip(&(gen.next_u64(),), case);
        assert_roundtrip(&(gen.next_u64(), gen.string()), case);
        assert_roundtrip(
            &(gen.next_u64() as i16, gen.below(2) == 0, gen.string()),
            case,
        );
        assert_roundtrip(
            &(
                gen.next_u64() as u8,
                gen.next_u64() as i32,
                gen.string(),
                gen.below(2) == 0,
            ),
            case,
        );
        assert_roundtrip(
            &(
                gen.next_u64(),
                gen.next_u64() as i64,
                gen.next_u64() as u16,
                gen.below(2) == 0,
                gen.string(),
            ),
            case,
        );
    }
}

/// The nested struct exercised by the compound-structure properties below.
#[derive(Debug, Clone, PartialEq)]
struct Nested {
    id: u64,
    name: String,
    values: Vec<i32>,
    flag: Option<bool>,
    table: BTreeMap<u16, String>,
}

impl Wire for Nested {
    fn encode(&self, enc: &mut Encoder) {
        self.id.encode(enc);
        self.name.encode(enc);
        self.values.encode(enc);
        self.flag.encode(enc);
        self.table.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(Nested {
            id: Wire::decode(dec)?,
            name: Wire::decode(dec)?,
            values: Wire::decode(dec)?,
            flag: Wire::decode(dec)?,
            table: Wire::decode(dec)?,
        })
    }
}

fn random_nested(gen: &mut Gen) -> Nested {
    Nested {
        id: gen.next_u64(),
        name: gen.string(),
        values: (0..gen.below(32)).map(|_| gen.next_u64() as i32).collect(),
        flag: match gen.below(3) {
            0 => None,
            1 => Some(false),
            _ => Some(true),
        },
        table: (0..gen.below(8))
            .map(|_| (gen.next_u64() as u16, gen.string()))
            .collect(),
    }
}

#[test]
fn nested_struct_round_trip() {
    let mut gen = Gen::new(0xDEC0DE09);
    for case in 0..CASES {
        let value = random_nested(&mut gen);
        assert_roundtrip(&value, case);
    }
}

#[test]
fn decoding_random_garbage_never_panics() {
    let mut gen = Gen::new(0xDEC0DE0A);
    for _ in 0..2048 {
        let bytes = gen.bytes(64);
        // Any outcome is fine as long as it does not panic.
        let _ = Nested::from_bytes(&bytes);
        let _ = Vec::<String>::from_bytes(&bytes);
        let _ = Option::<u64>::from_bytes(&bytes);
        let _ = BTreeMap::<String, Vec<u8>>::from_bytes(&bytes);
        let _ = String::from_bytes(&bytes);
        let _ = f64::from_bytes(&bytes);
    }
}

#[test]
fn truncated_encodings_never_equal_original() {
    let mut gen = Gen::new(0xDEC0DE0B);
    for case in 0..CASES {
        let value = random_nested(&mut gen);
        let bytes = value.to_bytes();
        if bytes.is_empty() {
            continue;
        }
        let cut = 1 + gen.below(bytes.len());
        let truncated = &bytes[..bytes.len() - cut];
        // Truncation may still decode successfully only if the remaining
        // prefix happens to be a valid encoding of some value, but it must
        // never equal the original when `finish` is enforced.
        if let Ok(decoded) = Nested::from_bytes(truncated) {
            assert_ne!(decoded, value, "case {case}: truncated decode == original");
        }
    }
}

#[test]
fn truncated_scalar_reports_unexpected_eof() {
    let long = u64::MAX.to_bytes();
    assert!(long.len() > 1);
    assert!(u64::from_bytes(&long[..long.len() - 1]).is_err());
    let s = String::from("hello world").to_bytes();
    assert!(String::from_bytes(&s[..s.len() - 3]).is_err());
    assert!(f64::from_bytes(&[0u8; 7]).is_err());
}

fn random_route_table(gen: &mut Gen) -> orca_wire::ShardRouteTable {
    orca_wire::ShardRouteTable {
        object: gen.next_u64(),
        type_name: gen.string(),
        sharded: gen.below(2) == 0,
        version: gen.next_u64(),
        owners: (0..gen.below(16)).map(|_| gen.next_u64() as u16).collect(),
    }
}

#[test]
fn shard_messages_round_trip() {
    use orca_wire::{ShardMsg, ShardPartId, ShardReply};
    let mut gen = Gen::new(0xDEC0DE0C);
    for case in 0..CASES {
        let shard = ShardPartId {
            object: gen.next_u64(),
            partition: gen.next_u64() as u32,
        };
        let msg = match gen.below(11) {
            0 => ShardMsg::Route {
                object: gen.next_u64(),
            },
            9 => ShardMsg::OpBatch {
                ops: (0..gen.below(6))
                    .map(|_| random_batch_op(&mut gen))
                    .collect(),
            },
            10 => ShardMsg::BackupBatch {
                shard,
                ops: (0..gen.below(6)).map(|_| gen.bytes(24)).collect(),
                first_version: gen.next_u64(),
            },
            1 => ShardMsg::Op {
                shard,
                op: gen.bytes(48),
                trace: random_trace(&mut gen),
                stamp: (gen.below(2) == 0).then(|| random_stamp(&mut gen)),
            },
            2 => ShardMsg::Install {
                shard,
                type_name: gen.string(),
                state: gen.bytes(48),
                version: gen.next_u64(),
                dedup: random_dedup(&mut gen),
            },
            3 => ShardMsg::Migrate {
                shard,
                dst: gen.next_u64() as u16,
            },
            4 => ShardMsg::Backup {
                shard,
                op: gen.bytes(48),
                version: gen.next_u64(),
                stamped: (gen.below(2) == 0).then(|| (random_stamp(&mut gen), gen.bytes(16))),
            },
            5 => ShardMsg::InstallBackup {
                shard,
                type_name: gen.string(),
                state: gen.bytes(48),
                version: gen.next_u64(),
                dedup: random_dedup(&mut gen),
            },
            6 => ShardMsg::PromoteBackup { shard },
            7 => ShardMsg::ReportOwned {
                object: gen.next_u64(),
            },
            _ => ShardMsg::HandOff {
                shard,
                dst: gen.next_u64() as u16,
            },
        };
        assert_roundtrip(&msg, case);
        let reply = match gen.below(9) {
            0 => ShardReply::Done(gen.bytes(48)),
            1 => ShardReply::Blocked,
            8 => ShardReply::Batch(
                (0..gen.below(6))
                    .map(|_| match gen.below(4) {
                        0 => orca_wire::BatchOutcome::Done(gen.bytes(24)),
                        1 => orca_wire::BatchOutcome::Blocked,
                        2 => orca_wire::BatchOutcome::Stale,
                        _ => orca_wire::BatchOutcome::Failed(gen.string()),
                    })
                    .collect(),
            ),
            2 => ShardReply::Route(random_route_table(&mut gen)),
            3 => ShardReply::StaleRoute,
            4 => ShardReply::Ack,
            5 => ShardReply::Owned {
                type_name: gen.string(),
                owned: (0..gen.below(6))
                    .map(|_| (gen.next_u64() as u32, gen.next_u64()))
                    .collect(),
                backups: (0..gen.below(6))
                    .map(|_| (gen.next_u64() as u32, gen.next_u64()))
                    .collect(),
            },
            6 => ShardReply::ObjectLost,
            _ => ShardReply::Error(gen.string()),
        };
        assert_roundtrip(&reply, case);
        // Garbage decoding must error out, never panic.
        let bytes = gen.bytes(32);
        let _ = ShardMsg::from_bytes(&bytes);
        let _ = ShardReply::from_bytes(&bytes);
    }
}

fn random_regime_table(gen: &mut Gen) -> orca_wire::RegimeTable {
    use orca_wire::RegimeKind;
    orca_wire::RegimeTable {
        object: gen.next_u64(),
        type_name: gen.string(),
        epoch: gen.next_u64(),
        regime: match gen.below(3) {
            0 => RegimeKind::Replicated,
            1 => RegimeKind::Primary,
            _ => RegimeKind::Sharded,
        },
        owners: (0..gen.below(16)).map(|_| gen.next_u64() as u16).collect(),
    }
}

#[test]
fn regime_messages_round_trip() {
    use orca_wire::{RegimeMsg, RegimeReply};
    let mut gen = Gen::new(0xAD0BE0C5);
    for case in 0..CASES {
        let object = gen.next_u64();
        let epoch = gen.next_u64();
        let msg = match gen.below(14) {
            0 => RegimeMsg::Route { object },
            12 => RegimeMsg::MirrorQuery { object },
            13 => RegimeMsg::OpBatch {
                ops: (0..gen.below(6))
                    .map(|_| random_batch_op(&mut gen))
                    .collect(),
            },
            1 => RegimeMsg::Op {
                object,
                epoch,
                partition: gen.next_u64() as u32,
                op: gen.bytes(48),
                trace: random_trace(&mut gen),
                stamp: (gen.below(2) == 0).then(|| random_stamp(&mut gen)),
            },
            2 => RegimeMsg::OpAll {
                object,
                op: gen.bytes(48),
                trace: random_trace(&mut gen),
            },
            3 => RegimeMsg::Propose { object },
            4 => RegimeMsg::Report {
                object,
                node: gen.next_u64() as u16,
                reads: gen.next_u64(),
                writes: gen.next_u64(),
            },
            5 => RegimeMsg::Drain {
                object,
                epoch,
                partition: gen.next_u64() as u32,
            },
            6 => RegimeMsg::Install {
                object,
                epoch,
                partition: gen.next_u64() as u32,
                type_name: gen.string(),
                state: gen.bytes(48),
                dedup: random_dedup(&mut gen),
            },
            7 => RegimeMsg::Mirror {
                object,
                epoch,
                type_name: gen.string(),
                state: gen.bytes(48),
                seq: gen.next_u64(),
                dedup: random_dedup(&mut gen),
                lease: (gen.below(2) == 0).then(|| random_lease(&mut gen)),
            },
            8 => RegimeMsg::FetchMirror { object, epoch },
            9 => RegimeMsg::DropMirror { object, epoch },
            10 => RegimeMsg::Update {
                object,
                epoch,
                seq: gen.next_u64(),
                op: gen.bytes(48),
                stamped: (gen.below(2) == 0).then(|| (random_stamp(&mut gen), gen.bytes(16))),
            },
            _ => RegimeMsg::Unlock {
                object,
                epoch,
                seq: gen.next_u64(),
                lease: (gen.below(2) == 0).then(|| random_lease(&mut gen)),
            },
        };
        assert_roundtrip(&msg, case);
        let reply = match gen.below(11) {
            10 => RegimeReply::Batch(
                (0..gen.below(6))
                    .map(|_| match gen.below(4) {
                        0 => orca_wire::BatchOutcome::Done(gen.bytes(24)),
                        1 => orca_wire::BatchOutcome::Blocked,
                        2 => orca_wire::BatchOutcome::Stale,
                        _ => orca_wire::BatchOutcome::Failed(gen.string()),
                    })
                    .collect(),
            ),
            0 => RegimeReply::Done(gen.bytes(48)),
            1 => RegimeReply::Blocked,
            2 => RegimeReply::Route(random_regime_table(&mut gen)),
            3 => RegimeReply::StaleRegime,
            4 => RegimeReply::State {
                state: gen.bytes(48),
                dedup: random_dedup(&mut gen),
            },
            5 => RegimeReply::MirrorState {
                state: gen.bytes(48),
                seq: gen.next_u64(),
                dedup: random_dedup(&mut gen),
                lease: (gen.below(2) == 0).then(|| random_lease(&mut gen)),
            },
            6 => RegimeReply::Ack,
            7 => RegimeReply::MirrorReport {
                mirror: if gen.below(2) == 0 {
                    None
                } else {
                    Some((gen.next_u64(), gen.next_u64(), gen.string(), gen.bytes(48)))
                },
                dedup: random_dedup(&mut gen),
            },
            8 => RegimeReply::ObjectLost,
            _ => RegimeReply::Error(gen.string()),
        };
        assert_roundtrip(&reply, case);
        // Garbage decoding must error out, never panic.
        let bytes = gen.bytes(32);
        let _ = RegimeMsg::from_bytes(&bytes);
        let _ = RegimeReply::from_bytes(&bytes);
    }
}

#[test]
fn recovery_messages_round_trip() {
    use orca_wire::{CopyInfo, MembershipView, RecoveryMsg, RecoveryReply};
    let mut gen = Gen::new(0x0EC0_4E11);
    for case in 0..CASES {
        let view = MembershipView {
            epoch: gen.next_u64(),
            alive: (0..gen.below(16)).map(|_| gen.next_u64() as u16).collect(),
        };
        let msg = match gen.below(7) {
            0 => RecoveryMsg::Heartbeat {
                node: gen.next_u64() as u16,
                epoch: gen.next_u64(),
            },
            1 => RecoveryMsg::ViewChange { view },
            2 => RecoveryMsg::CopyQuery {
                epoch: gen.next_u64(),
                dead: (0..gen.below(8)).map(|_| gen.next_u64() as u16).collect(),
            },
            3 => RecoveryMsg::Promote {
                epoch: gen.next_u64(),
                object: gen.next_u64(),
                trace: random_trace(&mut gen),
            },
            4 => RecoveryMsg::StateTransfer {
                object: gen.next_u64(),
                type_name: gen.string(),
                version: gen.next_u64(),
                state: gen.bytes(48),
            },
            5 => RecoveryMsg::ReHome {
                epoch: gen.next_u64(),
                object: gen.next_u64(),
                new_home: gen.next_u64() as u16,
                lost: gen.below(2) == 0,
                trace: random_trace(&mut gen),
            },
            _ => RecoveryMsg::Done {
                epoch: gen.next_u64(),
            },
        };
        assert_roundtrip(&msg, case);
        let reply = match gen.below(3) {
            0 => RecoveryReply::Ack,
            1 => RecoveryReply::Report(
                (0..gen.below(8))
                    .map(|_| CopyInfo {
                        object: gen.next_u64(),
                        version: gen.next_u64(),
                    })
                    .collect(),
            ),
            _ => RecoveryReply::Error(gen.string()),
        };
        assert_roundtrip(&reply, case);
        // Garbage decoding must error out, never panic.
        let bytes = gen.bytes(32);
        let _ = RecoveryMsg::from_bytes(&bytes);
        let _ = RecoveryReply::from_bytes(&bytes);
    }
}

fn random_stamp(gen: &mut Gen) -> orca_wire::OpStamp {
    orca_wire::OpStamp {
        origin: gen.next_u64() as u16,
        seq: gen.next_u64(),
    }
}

fn random_dedup(gen: &mut Gen) -> orca_wire::DedupWindow {
    let mut window = orca_wire::DedupWindow::new();
    for _ in 0..gen.below(8) {
        let stamp = random_stamp(gen);
        let reply = gen.bytes(16);
        window.record(stamp, reply);
    }
    window
}

fn random_lease(gen: &mut Gen) -> orca_wire::LeaseGrant {
    orca_wire::LeaseGrant {
        object: gen.next_u64(),
        epoch: gen.next_u64(),
        seq: gen.next_u64(),
        valid_ms: gen.next_u64(),
    }
}

fn random_trace(gen: &mut Gen) -> orca_wire::TraceId {
    match gen.below(3) {
        0 => orca_wire::TraceId::NONE,
        _ => orca_wire::TraceId::mint(gen.next_u64() as u16, gen.next_u64() & ((1 << 48) - 1)),
    }
}

fn random_batch_op(gen: &mut Gen) -> orca_wire::BatchOp {
    let trace = random_trace(gen);
    orca_wire::BatchOp {
        id: gen.next_u64(),
        object: gen.next_u64(),
        partition: gen.next_u64() as u32,
        epoch: gen.next_u64(),
        op: gen.bytes(48),
        trace,
    }
}

#[test]
fn trace_ids_round_trip_and_survive_garbage() {
    use orca_wire::TraceId;
    let mut gen = Gen::new(0x7 * 0xACE1D);
    for case in 0..CASES {
        let id = random_trace(&mut gen);
        assert_roundtrip(&id, case);
        // Mint/unpack agree with the wire form.
        if let Some(origin) = id.origin() {
            assert_eq!(TraceId::mint(origin, id.seq()), id, "case {case}");
        }
        // Truncated encodings are errors, garbage never panics.
        let bytes = id.to_bytes();
        if bytes.len() > 1 {
            assert!(
                TraceId::from_bytes(&bytes[..bytes.len() - 1]).is_err(),
                "case {case}: truncated trace id decoded"
            );
        }
        let _ = TraceId::from_bytes(&gen.bytes(16));
    }
}

#[test]
fn batch_messages_round_trip() {
    use orca_wire::{BatchOutcome, BatchReply, OpBatch};
    let mut gen = Gen::new(0xBA7C_4ED0);
    for case in 0..CASES {
        let batch = OpBatch {
            batch: gen.next_u64(),
            ops: (0..gen.below(8))
                .map(|_| random_batch_op(&mut gen))
                .collect(),
        };
        assert_roundtrip(&batch, case);
        let reply = BatchReply {
            batch: batch.batch,
            outcomes: batch
                .ops
                .iter()
                .map(|op| {
                    let outcome = match gen.below(4) {
                        0 => BatchOutcome::Done(gen.bytes(32)),
                        1 => BatchOutcome::Blocked,
                        2 => BatchOutcome::Stale,
                        _ => BatchOutcome::Failed(gen.string()),
                    };
                    (op.id, outcome)
                })
                .collect(),
        };
        assert_roundtrip(&reply, case);
        // Truncation is an error, never a silently shortened batch.
        let bytes = batch.to_bytes();
        if bytes.len() > 1 {
            let cut = 1 + gen.below(bytes.len() - 1);
            if let Ok(decoded) = OpBatch::from_bytes(&bytes[..bytes.len() - cut]) {
                assert_ne!(decoded, batch, "case {case}: truncated decode == original");
            }
        }
        // Garbage decoding must error out, never panic.
        let garbage = gen.bytes(32);
        let _ = OpBatch::from_bytes(&garbage);
        let _ = BatchReply::from_bytes(&garbage);
    }
}
