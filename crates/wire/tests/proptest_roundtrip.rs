//! Property-based round-trip tests for the wire codec.

use std::collections::BTreeMap;

use orca_wire::{Decoder, Encoder, Wire, WireResult};
use proptest::prelude::*;

#[derive(Debug, Clone, PartialEq)]
struct Nested {
    id: u64,
    name: String,
    values: Vec<i32>,
    flag: Option<bool>,
    table: BTreeMap<u16, String>,
}

impl Wire for Nested {
    fn encode(&self, enc: &mut Encoder) {
        self.id.encode(enc);
        self.name.encode(enc);
        self.values.encode(enc);
        self.flag.encode(enc);
        self.table.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(Nested {
            id: Wire::decode(dec)?,
            name: Wire::decode(dec)?,
            values: Wire::decode(dec)?,
            flag: Wire::decode(dec)?,
            table: Wire::decode(dec)?,
        })
    }
}

fn nested_strategy() -> impl Strategy<Value = Nested> {
    (
        any::<u64>(),
        ".*",
        prop::collection::vec(any::<i32>(), 0..32),
        any::<Option<bool>>(),
        prop::collection::btree_map(any::<u16>(), ".*", 0..8),
    )
        .prop_map(|(id, name, values, flag, table)| Nested {
            id,
            name,
            values,
            flag,
            table,
        })
}

proptest! {
    #[test]
    fn u64_round_trip(v in any::<u64>()) {
        prop_assert_eq!(u64::from_bytes(&v.to_bytes()).unwrap(), v);
    }

    #[test]
    fn i64_round_trip(v in any::<i64>()) {
        prop_assert_eq!(i64::from_bytes(&v.to_bytes()).unwrap(), v);
    }

    #[test]
    fn f64_round_trip(v in any::<f64>()) {
        let back = f64::from_bytes(&v.to_bytes()).unwrap();
        if v.is_nan() {
            prop_assert!(back.is_nan());
        } else {
            prop_assert_eq!(back, v);
        }
    }

    #[test]
    fn string_round_trip(v in ".*") {
        prop_assert_eq!(String::from_bytes(&v.to_bytes()).unwrap(), v);
    }

    #[test]
    fn vec_bytes_round_trip(v in prop::collection::vec(any::<u8>(), 0..256)) {
        prop_assert_eq!(Vec::<u8>::from_bytes(&v.to_bytes()).unwrap(), v);
    }

    #[test]
    fn nested_struct_round_trip(v in nested_strategy()) {
        prop_assert_eq!(Nested::from_bytes(&v.to_bytes()).unwrap(), v.clone());
        prop_assert_eq!(v.encoded_len(), v.to_bytes().len());
    }

    #[test]
    fn decoding_random_garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        // Any outcome is fine as long as it does not panic.
        let _ = Nested::from_bytes(&bytes);
        let _ = Vec::<String>::from_bytes(&bytes);
        let _ = Option::<u64>::from_bytes(&bytes);
    }

    #[test]
    fn truncated_encodings_error(v in nested_strategy(), cut in 0usize..64) {
        let bytes = v.to_bytes();
        if cut < bytes.len() {
            let truncated = &bytes[..bytes.len() - 1 - cut.min(bytes.len() - 1)];
            // Truncation may still decode successfully only if the remaining
            // prefix happens to be a valid encoding of some value, but it must
            // never equal the original when `finish` is enforced.
            if let Ok(decoded) = Nested::from_bytes(truncated) {
                prop_assert_ne!(decoded, v);
            }
        }
    }
}
