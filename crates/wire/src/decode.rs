//! Decoder half of the wire codec.

use crate::error::{WireError, WireResult};

/// Maximum length accepted for any length prefix (bytes, strings, sequences).
///
/// The simulated network never carries anything near this size; the limit
/// exists so that a corrupted length prefix fails fast instead of attempting
/// an enormous allocation.
pub const MAX_LEN: u64 = 1 << 30;

/// Cursor-based decoder over a byte slice.
#[derive(Debug, Clone)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Create a decoder over `buf` with the cursor at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current cursor position (bytes consumed so far).
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Succeeds only if every byte has been consumed.
    pub fn finish(&self) -> WireResult<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes {
                remaining: self.remaining(),
            })
        }
    }

    fn take(&mut self, n: usize) -> WireResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read a single raw byte.
    pub fn get_u8(&mut self) -> WireResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read `n` raw bytes (no length prefix).
    pub fn get_raw(&mut self, n: usize) -> WireResult<&'a [u8]> {
        self.take(n)
    }

    /// Read a LEB128 varint into a `u64`.
    pub fn get_uvarint(&mut self) -> WireResult<u64> {
        let mut value: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            if shift == 63 && byte > 1 {
                return Err(WireError::VarintOverflow);
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return Err(WireError::VarintOverflow);
            }
        }
    }

    /// Read a zig-zag encoded varint into an `i64`.
    pub fn get_ivarint(&mut self) -> WireResult<i64> {
        let zigzag = self.get_uvarint()?;
        Ok(((zigzag >> 1) as i64) ^ -((zigzag & 1) as i64))
    }

    /// Read an `f64` from 8 little-endian bytes.
    pub fn get_f64(&mut self) -> WireResult<f64> {
        let bytes = self.take(8)?;
        Ok(f64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Read an `f32` from 4 little-endian bytes.
    pub fn get_f32(&mut self) -> WireResult<f32> {
        let bytes = self.take(4)?;
        Ok(f32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    /// Read a boolean byte, accepting only 0 or 1.
    pub fn get_bool(&mut self) -> WireResult<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::InvalidTag {
                type_name: "bool",
                tag: u64::from(tag),
            }),
        }
    }

    /// Read a length prefix, enforcing [`MAX_LEN`].
    pub fn get_len(&mut self) -> WireResult<usize> {
        let len = self.get_uvarint()?;
        if len > MAX_LEN {
            return Err(WireError::LengthTooLarge { len, max: MAX_LEN });
        }
        Ok(len as usize)
    }

    /// Read a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> WireResult<Vec<u8>> {
        let len = self.get_len()?;
        Ok(self.take(len)?.to_vec())
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> WireResult<String> {
        let bytes = self.get_bytes()?;
        String::from_utf8(bytes).map_err(|_| WireError::InvalidUtf8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::Encoder;

    #[test]
    fn zigzag_round_trip() {
        let mut enc = Encoder::new();
        let values = [0i64, -1, 1, -2, 2, i64::MIN, i64::MAX];
        for v in values {
            enc.put_ivarint(v);
        }
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        for v in values {
            assert_eq!(dec.get_ivarint().unwrap(), v);
        }
        dec.finish().unwrap();
    }

    #[test]
    fn eof_detection() {
        let mut dec = Decoder::new(&[0x80]);
        assert!(matches!(
            dec.get_uvarint(),
            Err(WireError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn varint_overflow_detected() {
        // 11 continuation bytes can never fit a u64.
        let bytes = [0xffu8; 11];
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(dec.get_uvarint(), Err(WireError::VarintOverflow)));
    }

    #[test]
    fn bool_rejects_other_tags() {
        let mut dec = Decoder::new(&[7]);
        assert!(matches!(dec.get_bool(), Err(WireError::InvalidTag { .. })));
    }

    #[test]
    fn string_round_trip_and_position() {
        let mut enc = Encoder::new();
        enc.put_str("hé🙂");
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.get_str().unwrap(), "hé🙂");
        assert_eq!(dec.position(), bytes.len());
    }
}
