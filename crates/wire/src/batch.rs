//! Batched-operation vocabulary of the pipelined asynchronous invocation
//! path.
//!
//! Every runtime system accepts *operation batches*: a process that keeps
//! many invocations in flight (`invoke_async` / `invoke_many` in
//! `orca-core`) lets its node's runtime system coalesce the pending
//! operations per destination — one broadcast slot, one RPC to a primary,
//! one RPC per partition owner — instead of paying a full round trip per
//! operation. The shared shapes live here, at the bottom of the stack, so
//! the codecs are property-tested with every other wire type and the byte
//! counts the network statistics accumulate for batch traffic are real.
//!
//! A batch carries its operations **in issue order** and the receiver
//! applies them in exactly that order; the reply echoes one outcome per
//! operation, keyed by the per-operation id, so the origin can resolve each
//! invocation's completion handle individually (reply demultiplexing). A
//! batch that fails as a whole (timeout, dead destination) therefore still
//! reports a *per-operation* outcome at the origin — no operation is
//! silently dropped.

use crate::{Decoder, Encoder, TraceId, Wire, WireError, WireResult};

/// One operation inside an [`OpBatch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchOp {
    /// Origin-unique invocation id, echoed in the matching
    /// [`BatchReply`] outcome.
    pub id: u64,
    /// Raw object id (the `u64` inside `ObjectId`).
    pub object: u64,
    /// Partition the (possibly narrowed) operation addresses. `0` for
    /// unpartitioned runtime systems (broadcast, primary copy).
    pub partition: u32,
    /// Regime epoch the sender believes current (adaptive runtime system);
    /// `0` elsewhere.
    pub epoch: u64,
    /// Encoded operation.
    pub op: Vec<u8>,
    /// Causal identity of the invocation that issued this operation
    /// ([`TraceId::NONE`] when the origin did not trace it).
    pub trace: TraceId,
}

impl Wire for BatchOp {
    fn encode(&self, enc: &mut Encoder) {
        self.id.encode(enc);
        self.object.encode(enc);
        self.partition.encode(enc);
        self.epoch.encode(enc);
        enc.put_bytes(&self.op);
        self.trace.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(BatchOp {
            id: Wire::decode(dec)?,
            object: Wire::decode(dec)?,
            partition: Wire::decode(dec)?,
            epoch: Wire::decode(dec)?,
            op: dec.get_bytes()?,
            trace: Wire::decode(dec)?,
        })
    }
}

/// A batch of operations shipped to one destination in one message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpBatch {
    /// Origin-unique batch id (shares the invocation-id namespace, so the
    /// broadcast runtime system's withdraw protocol covers whole batches).
    pub batch: u64,
    /// The operations, in the exact order they were issued at the origin;
    /// the receiver applies them in this order.
    pub ops: Vec<BatchOp>,
}

impl Wire for OpBatch {
    fn encode(&self, enc: &mut Encoder) {
        self.batch.encode(enc);
        self.ops.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(OpBatch {
            batch: Wire::decode(dec)?,
            ops: Wire::decode(dec)?,
        })
    }
}

/// Outcome of one operation of a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchOutcome {
    /// The operation completed; the encoded reply follows.
    Done(Vec<u8>),
    /// The operation's guard was false; it took no effect and the origin
    /// retries it out of band.
    Blocked,
    /// The receiver no longer serves the addressed replica (migration or
    /// regime switch in flight); the operation took no effect and the
    /// origin re-routes it.
    Stale,
    /// The operation failed; it may not be retried blindly.
    Failed(String),
}

impl Wire for BatchOutcome {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            BatchOutcome::Done(reply) => {
                enc.put_u8(0);
                enc.put_bytes(reply);
            }
            BatchOutcome::Blocked => enc.put_u8(1),
            BatchOutcome::Stale => enc.put_u8(2),
            BatchOutcome::Failed(msg) => {
                enc.put_u8(3);
                msg.encode(enc);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        match dec.get_u8()? {
            0 => Ok(BatchOutcome::Done(dec.get_bytes()?)),
            1 => Ok(BatchOutcome::Blocked),
            2 => Ok(BatchOutcome::Stale),
            3 => Ok(BatchOutcome::Failed(Wire::decode(dec)?)),
            tag => Err(WireError::InvalidTag {
                type_name: "BatchOutcome",
                tag: u64::from(tag),
            }),
        }
    }
}

/// Per-operation outcomes of one [`OpBatch`], in batch order, each keyed by
/// the operation's id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchReply {
    /// Echo of the batch id.
    pub batch: u64,
    /// `(operation id, outcome)` per operation, in batch order.
    pub outcomes: Vec<(u64, BatchOutcome)>,
}

impl Wire for BatchReply {
    fn encode(&self, enc: &mut Encoder) {
        self.batch.encode(enc);
        self.outcomes.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(BatchReply {
            batch: Wire::decode(dec)?,
            outcomes: Wire::decode(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch() -> OpBatch {
        OpBatch {
            batch: 41,
            ops: vec![
                BatchOp {
                    id: 42,
                    object: (3u64 << 48) | 7,
                    partition: 2,
                    epoch: 1,
                    op: vec![1, 2, 3],
                    trace: TraceId::mint(1, 7),
                },
                BatchOp {
                    id: 43,
                    object: 9,
                    partition: 0,
                    epoch: 0,
                    op: vec![],
                    trace: TraceId::NONE,
                },
            ],
        }
    }

    #[test]
    fn batch_round_trips() {
        let b = batch();
        assert_eq!(OpBatch::from_bytes(&b.to_bytes()).unwrap(), b);
        let reply = BatchReply {
            batch: 41,
            outcomes: vec![
                (42, BatchOutcome::Done(vec![9])),
                (43, BatchOutcome::Blocked),
                (44, BatchOutcome::Stale),
                (45, BatchOutcome::Failed("nope".into())),
            ],
        };
        assert_eq!(BatchReply::from_bytes(&reply.to_bytes()).unwrap(), reply);
    }

    #[test]
    fn truncated_batches_are_errors() {
        let bytes = batch().to_bytes();
        assert!(OpBatch::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(BatchOutcome::from_bytes(&[0xee]).is_err());
    }
}
