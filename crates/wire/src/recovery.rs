//! Wire messages of the crash-recovery and membership subsystem.
//!
//! Node failure is detected by heartbeats: every node periodically
//! broadcasts a [`RecoveryMsg::Heartbeat`] on the membership port, and a
//! node that stays silent for a configured number of heartbeat intervals is
//! declared dead by every survivor independently. Because the failure
//! detector's view transitions are a pure function of which nodes fell
//! silent (the model is fail-stop: a dead node never returns), survivors
//! converge on the same epoch'd [`MembershipView`] without any agreement
//! protocol beyond the deterministic election rule of
//! `orca-amoeba::election` (lowest live node id coordinates).
//!
//! On top of the view, the runtime systems run a re-homing protocol for
//! objects whose authoritative copy lived on a dead node:
//!
//! 1. The coordinator (lowest live node) asks every survivor which
//!    secondary copies of orphaned objects it holds ([`RecoveryMsg::CopyQuery`]
//!    → [`RecoveryReply::Report`]).
//! 2. It promotes the freshest copy to primary ([`RecoveryMsg::Promote`]).
//! 3. It publishes the new home to every survivor ([`RecoveryMsg::ReHome`],
//!    with `lost = true` when no copy survived anywhere).
//! 4. It closes the epoch ([`RecoveryMsg::Done`]) so survivors know that
//!    any orphaned object *without* a published new home is lost.
//!
//! [`RecoveryMsg::StateTransfer`] carries full object state when a
//! promotion target needs it shipped (the sharded runtime system's backup
//! promotion path re-uses it).
//!
//! The vocabulary lives here, at the bottom of the stack, so the codecs are
//! property-tested together with every other wire type and the byte counts
//! the network statistics accumulate for recovery traffic are real.

use crate::{Decoder, Encoder, TraceId, Wire, WireError, WireResult};

/// One epoch of the group's membership: which nodes are believed alive.
///
/// The epoch is bumped every time a member is declared dead; because the
/// model is fail-stop (no rejoin), views of a higher epoch always describe
/// a subset of the members of lower epochs, and any two nodes that observed
/// the same set of failures hold the identical view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MembershipView {
    /// Number of membership changes observed so far (0 = initial view).
    pub epoch: u64,
    /// Node indices believed alive, in ascending order.
    pub alive: Vec<u16>,
}

impl MembershipView {
    /// The recovery coordinator of this view: the lowest live node.
    pub fn coordinator(&self) -> Option<u16> {
        self.alive.first().copied()
    }

    /// True if `node` is alive in this view.
    pub fn contains(&self, node: u16) -> bool {
        self.alive.binary_search(&node).is_ok()
    }
}

impl Wire for MembershipView {
    fn encode(&self, enc: &mut Encoder) {
        self.epoch.encode(enc);
        self.alive.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(MembershipView {
            epoch: Wire::decode(dec)?,
            alive: Wire::decode(dec)?,
        })
    }
}

/// One surviving copy of an orphaned object, as reported to the recovery
/// coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopyInfo {
    /// Raw object id (the `u64` inside `ObjectId`).
    pub object: u64,
    /// Version (completed-write count) of the reporter's copy; the
    /// coordinator promotes the highest version it hears of.
    pub version: u64,
}

impl Wire for CopyInfo {
    fn encode(&self, enc: &mut Encoder) {
        self.object.encode(enc);
        self.version.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(CopyInfo {
            object: Wire::decode(dec)?,
            version: Wire::decode(dec)?,
        })
    }
}

/// Requests of the crash-recovery and membership protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryMsg {
    /// Periodic liveness announcement, broadcast on the membership port.
    Heartbeat {
        /// Sending node index.
        node: u16,
        /// The sender's current view epoch (diagnostic; views converge
        /// through silence detection, not through epoch gossip).
        epoch: u64,
    },
    /// A node announces the view it transitioned to (diagnostic traffic;
    /// every survivor detects the same failures independently).
    ViewChange {
        /// The announced view.
        view: MembershipView,
    },
    /// Coordinator → survivor: report your surviving copies of objects
    /// whose home node is in `dead`.
    CopyQuery {
        /// View epoch this recovery round serves.
        epoch: u64,
        /// Node indices declared dead in this view.
        dead: Vec<u16>,
    },
    /// Coordinator → chosen survivor: promote your copy of `object` to the
    /// new authoritative primary.
    Promote {
        /// View epoch this recovery round serves.
        epoch: u64,
        /// Raw object id.
        object: u64,
        /// Causal identity of this recovery round's coordination span
        /// ([`TraceId::NONE`] when untraced).
        trace: TraceId,
    },
    /// Full-state shipment to a promotion target that lacks a local copy.
    StateTransfer {
        /// Raw object id.
        object: u64,
        /// Registered object type name.
        type_name: String,
        /// Version of the shipped state.
        version: u64,
        /// Encoded object state.
        state: Vec<u8>,
    },
    /// Coordinator → every survivor: `object` is now served by `new_home`
    /// (or permanently lost when `lost` is set — no copy survived).
    ReHome {
        /// View epoch this recovery round serves.
        epoch: u64,
        /// Raw object id.
        object: u64,
        /// Node index of the promoted new home.
        new_home: u16,
        /// True when no copy survived anywhere: the object is lost and
        /// operations on it must fail with an object-lost error.
        lost: bool,
        /// Causal identity of this recovery round's coordination span
        /// ([`TraceId::NONE`] when untraced).
        trace: TraceId,
    },
    /// Coordinator → every survivor: recovery for `epoch` is complete.
    /// Orphaned objects without a published re-homing are lost.
    Done {
        /// View epoch whose recovery round finished.
        epoch: u64,
    },
}

impl Wire for RecoveryMsg {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            RecoveryMsg::Heartbeat { node, epoch } => {
                enc.put_u8(0);
                node.encode(enc);
                epoch.encode(enc);
            }
            RecoveryMsg::ViewChange { view } => {
                enc.put_u8(1);
                view.encode(enc);
            }
            RecoveryMsg::CopyQuery { epoch, dead } => {
                enc.put_u8(2);
                epoch.encode(enc);
                dead.encode(enc);
            }
            RecoveryMsg::Promote {
                epoch,
                object,
                trace,
            } => {
                enc.put_u8(3);
                epoch.encode(enc);
                object.encode(enc);
                trace.encode(enc);
            }
            RecoveryMsg::StateTransfer {
                object,
                type_name,
                version,
                state,
            } => {
                enc.put_u8(4);
                object.encode(enc);
                type_name.encode(enc);
                version.encode(enc);
                enc.put_bytes(state);
            }
            RecoveryMsg::ReHome {
                epoch,
                object,
                new_home,
                lost,
                trace,
            } => {
                enc.put_u8(5);
                epoch.encode(enc);
                object.encode(enc);
                new_home.encode(enc);
                lost.encode(enc);
                trace.encode(enc);
            }
            RecoveryMsg::Done { epoch } => {
                enc.put_u8(6);
                epoch.encode(enc);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        match dec.get_u8()? {
            0 => Ok(RecoveryMsg::Heartbeat {
                node: Wire::decode(dec)?,
                epoch: Wire::decode(dec)?,
            }),
            1 => Ok(RecoveryMsg::ViewChange {
                view: Wire::decode(dec)?,
            }),
            2 => Ok(RecoveryMsg::CopyQuery {
                epoch: Wire::decode(dec)?,
                dead: Wire::decode(dec)?,
            }),
            3 => Ok(RecoveryMsg::Promote {
                epoch: Wire::decode(dec)?,
                object: Wire::decode(dec)?,
                trace: Wire::decode(dec)?,
            }),
            4 => Ok(RecoveryMsg::StateTransfer {
                object: Wire::decode(dec)?,
                type_name: Wire::decode(dec)?,
                version: Wire::decode(dec)?,
                state: dec.get_bytes()?,
            }),
            5 => Ok(RecoveryMsg::ReHome {
                epoch: Wire::decode(dec)?,
                object: Wire::decode(dec)?,
                new_home: Wire::decode(dec)?,
                lost: Wire::decode(dec)?,
                trace: Wire::decode(dec)?,
            }),
            6 => Ok(RecoveryMsg::Done {
                epoch: Wire::decode(dec)?,
            }),
            tag => Err(WireError::InvalidTag {
                type_name: "RecoveryMsg",
                tag: u64::from(tag),
            }),
        }
    }
}

/// Replies of the crash-recovery protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryReply {
    /// Acknowledgement with no payload.
    Ack,
    /// Surviving copies held by the replying node (reply to
    /// [`RecoveryMsg::CopyQuery`]).
    Report(Vec<CopyInfo>),
    /// The request failed.
    Error(String),
}

impl Wire for RecoveryReply {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            RecoveryReply::Ack => enc.put_u8(0),
            RecoveryReply::Report(copies) => {
                enc.put_u8(1);
                copies.encode(enc);
            }
            RecoveryReply::Error(msg) => {
                enc.put_u8(2);
                msg.encode(enc);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        match dec.get_u8()? {
            0 => Ok(RecoveryReply::Ack),
            1 => Ok(RecoveryReply::Report(Wire::decode(dec)?)),
            2 => Ok(RecoveryReply::Error(Wire::decode(dec)?)),
            tag => Err(WireError::InvalidTag {
                type_name: "RecoveryReply",
                tag: u64::from(tag),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view() -> MembershipView {
        MembershipView {
            epoch: 3,
            alive: vec![0, 2, 3],
        }
    }

    #[test]
    fn view_coordinator_and_contains() {
        let view = view();
        assert_eq!(view.coordinator(), Some(0));
        assert!(view.contains(2));
        assert!(!view.contains(1));
        let empty = MembershipView {
            epoch: 9,
            alive: vec![],
        };
        assert_eq!(empty.coordinator(), None);
    }

    #[test]
    fn all_requests_round_trip() {
        let msgs = vec![
            RecoveryMsg::Heartbeat { node: 3, epoch: 1 },
            RecoveryMsg::ViewChange { view: view() },
            RecoveryMsg::CopyQuery {
                epoch: 2,
                dead: vec![1, 4],
            },
            RecoveryMsg::Promote {
                epoch: 2,
                object: (5u64 << 48) | 7,
                trace: TraceId::mint(0, 1),
            },
            RecoveryMsg::StateTransfer {
                object: 12,
                type_name: "orca.KvTable".into(),
                version: 44,
                state: vec![1, 2, 3],
            },
            RecoveryMsg::ReHome {
                epoch: 2,
                object: 12,
                new_home: 2,
                lost: false,
                trace: TraceId::NONE,
            },
            RecoveryMsg::Done { epoch: 2 },
        ];
        for msg in msgs {
            assert_eq!(RecoveryMsg::from_bytes(&msg.to_bytes()).unwrap(), msg);
        }
    }

    #[test]
    fn all_replies_round_trip() {
        let replies = vec![
            RecoveryReply::Ack,
            RecoveryReply::Report(vec![
                CopyInfo {
                    object: 7,
                    version: 3,
                },
                CopyInfo {
                    object: 9,
                    version: 0,
                },
            ]),
            RecoveryReply::Error("nope".into()),
        ];
        for reply in replies {
            assert_eq!(RecoveryReply::from_bytes(&reply.to_bytes()).unwrap(), reply);
        }
    }

    #[test]
    fn truncated_messages_are_errors() {
        let bytes = RecoveryMsg::ViewChange { view: view() }.to_bytes();
        assert!(RecoveryMsg::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(RecoveryReply::from_bytes(&[0xff]).is_err());
    }
}
