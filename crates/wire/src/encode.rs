//! Encoder half of the wire codec.

/// Streaming encoder that appends wire-format bytes to an internal buffer.
///
/// The encoder never fails; all fallibility lives on the decoding side.
#[derive(Debug, Default, Clone)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Create an empty encoder.
    pub fn new() -> Self {
        Encoder { buf: Vec::new() }
    }

    /// Create an encoder with a pre-allocated capacity (useful for messages
    /// whose approximate size is known, e.g. bulk state transfers).
    pub fn with_capacity(capacity: usize) -> Self {
        Encoder {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Wrap an existing buffer, appending to whatever it already holds.
    ///
    /// Together with [`Encoder::into_bytes`] this lets hot paths recycle
    /// one scratch buffer across many messages (see `Wire::encode_into`)
    /// instead of allocating per message.
    pub fn from_vec(buf: Vec<u8>) -> Self {
        Encoder { buf }
    }

    /// Forget everything written so far, keeping the allocation.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the encoder, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Append a single raw byte.
    pub fn put_u8(&mut self, value: u8) {
        self.buf.push(value);
    }

    /// Append raw bytes verbatim (no length prefix).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append an unsigned integer as a LEB128 varint.
    pub fn put_uvarint(&mut self, mut value: u64) {
        loop {
            let byte = (value & 0x7f) as u8;
            value >>= 7;
            if value == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Append a signed integer as a zig-zag encoded varint.
    pub fn put_ivarint(&mut self, value: i64) {
        let zigzag = ((value << 1) ^ (value >> 63)) as u64;
        self.put_uvarint(zigzag);
    }

    /// Append an `f64` as 8 little-endian bytes.
    pub fn put_f64(&mut self, value: f64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Append an `f32` as 4 little-endian bytes.
    pub fn put_f32(&mut self, value: f32) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Append a boolean as a single byte (0 or 1).
    pub fn put_bool(&mut self, value: bool) {
        self.buf.push(u8::from(value));
    }

    /// Append a length-prefixed byte string.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_uvarint(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, value: &str) {
        self.put_bytes(value.as_bytes());
    }

    /// Append a sequence length prefix. The caller then encodes each element.
    pub fn put_len(&mut self, len: usize) {
        self.put_uvarint(len as u64);
    }
}

/// Number of bytes a value occupies when encoded as an unsigned varint.
pub fn uvarint_len(mut value: u64) -> usize {
    let mut len = 1;
    while value >= 0x80 {
        value >>= 7;
        len += 1;
    }
    len
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_boundaries() {
        let mut enc = Encoder::new();
        enc.put_uvarint(0);
        enc.put_uvarint(127);
        enc.put_uvarint(128);
        enc.put_uvarint(16_383);
        enc.put_uvarint(16_384);
        assert_eq!(enc.as_slice().len(), 1 + 1 + 2 + 2 + 3);
    }

    #[test]
    fn uvarint_len_matches_encoding() {
        for v in [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX] {
            let mut enc = Encoder::new();
            enc.put_uvarint(v);
            assert_eq!(uvarint_len(v), enc.len(), "value {v}");
        }
    }

    #[test]
    fn with_capacity_and_raw() {
        let mut enc = Encoder::with_capacity(16);
        assert!(enc.is_empty());
        enc.put_raw(&[1, 2, 3]);
        enc.put_u8(4);
        assert_eq!(enc.into_bytes(), vec![1, 2, 3, 4]);
    }
}
