//! Error type for the wire codec.

use std::fmt;

/// Result alias used throughout the codec.
pub type WireResult<T> = Result<T, WireError>;

/// Errors produced while decoding a wire-format buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value was fully decoded.
    UnexpectedEof {
        /// How many more bytes were needed.
        needed: usize,
        /// How many bytes remained.
        remaining: usize,
    },
    /// A varint used more than the maximum number of bytes for its width.
    VarintOverflow,
    /// A length prefix exceeded the sanity limit.
    LengthTooLarge {
        /// The decoded length.
        len: u64,
        /// The maximum allowed length.
        max: u64,
    },
    /// A byte string declared as UTF-8 was not valid UTF-8.
    InvalidUtf8,
    /// An enum/option tag had an unexpected value.
    InvalidTag {
        /// Name of the type being decoded.
        type_name: &'static str,
        /// The offending tag value.
        tag: u64,
    },
    /// `Decoder::finish` found unconsumed bytes.
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
    /// Application-level decode failure (e.g. unknown object type name).
    Custom(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof { needed, remaining } => write!(
                f,
                "unexpected end of buffer: needed {needed} more bytes, {remaining} remaining"
            ),
            WireError::VarintOverflow => write!(f, "varint overflowed its integer width"),
            WireError::LengthTooLarge { len, max } => {
                write!(f, "length prefix {len} exceeds limit {max}")
            }
            WireError::InvalidUtf8 => write!(f, "byte string is not valid UTF-8"),
            WireError::InvalidTag { type_name, tag } => {
                write!(f, "invalid tag {tag} while decoding {type_name}")
            }
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after decoding value")
            }
            WireError::Custom(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for WireError {}

impl WireError {
    /// Construct a custom, application-level decode error.
    pub fn custom(msg: impl Into<String>) -> Self {
        WireError::Custom(msg.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = WireError::UnexpectedEof {
            needed: 4,
            remaining: 1,
        };
        let text = err.to_string();
        assert!(text.contains("needed 4"));
        assert!(text.contains("1 remaining"));
        assert!(WireError::custom("boom").to_string().contains("boom"));
    }
}
