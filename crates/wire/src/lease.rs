//! Read-lease vocabulary and exactly-once operation stamps.
//!
//! Two related protocol families live here, both threaded through the
//! point-to-point runtime systems in `orca-rts`:
//!
//! * **Read leases** — a primary (or the adaptive replicated-regime home)
//!   grants a time-bounded, epoch-stamped [`LeaseGrant`] to every node it
//!   pushes a copy to. While the lease is valid the holder serves reads from
//!   its local copy with *zero messages*; a write must renew, revoke or wait
//!   out every outstanding grant before its effect becomes visible, so
//!   leased reads stay linearizable. Validity is tied to the failure
//!   detector's membership epoch: any membership change invalidates every
//!   lease granted under the old epoch, so a crashed holder's lease dies
//!   with the view and a re-homed primary only has to wait out the
//!   wall-clock bound recovery already assumes.
//!
//! * **Operation stamps** — every synchronously-invoked write carries an
//!   [`OpStamp`] `(origin, seq)` identity. The executing replica records the
//!   stamp and the reply it produced in a bounded per-origin
//!   [`DedupWindow`] that is carried along in copy/backup state transfer,
//!   so a write retried across a crash-and-promotion is answered from the
//!   window instead of being applied a second time: exactly-once across
//!   recovery, not at-least-once.

use crate::{Decoder, Encoder, Wire, WireError, WireResult};

/// A time-bounded permission to serve reads of one object locally.
///
/// `valid_ms` is relative to receipt: the holder trusts its own clock for
/// the countdown (exactly the wall-clock assumption recovery's rehome wait
/// already makes), while `epoch` pins the membership view the grant was
/// issued under — a holder whose failure-detector view has moved past
/// `epoch` must treat the lease as expired regardless of the clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseGrant {
    /// Raw object id the lease covers.
    pub object: u64,
    /// Failure-detector membership epoch the grant was issued under.
    pub epoch: u64,
    /// Grant sequence number, unique per grantor; a revocation names the
    /// grant it cancels.
    pub seq: u64,
    /// Validity in milliseconds from receipt.
    pub valid_ms: u64,
}

impl Wire for LeaseGrant {
    fn encode(&self, enc: &mut Encoder) {
        self.object.encode(enc);
        self.epoch.encode(enc);
        self.seq.encode(enc);
        self.valid_ms.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(LeaseGrant {
            object: Wire::decode(dec)?,
            epoch: Wire::decode(dec)?,
            seq: Wire::decode(dec)?,
            valid_ms: Wire::decode(dec)?,
        })
    }
}

/// The lease sub-protocol messages.
///
/// Grants and renewals normally piggyback on the copy/update push traffic
/// (a fetched copy arrives with a `Grant`, an unlock after a write carries
/// a `Renew`), so the standalone messages only appear when a push failed
/// and the writer needs an explicit `Revoke` before it may proceed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseMsg {
    /// Grantor → holder: a fresh lease, issued alongside a new copy.
    Grant(LeaseGrant),
    /// Grantor → holder: replace the current lease (issued alongside an
    /// update push; the holder's copy is current again).
    Renew(LeaseGrant),
    /// Grantor → holder: stop serving local reads under grant `seq` now.
    Revoke {
        /// Raw object id.
        object: u64,
        /// Sequence number of the grant being cancelled.
        seq: u64,
    },
    /// Holder → grantor: grant `seq` is dead; the writer may proceed.
    RevokeAck {
        /// Raw object id.
        object: u64,
        /// Sequence number of the cancelled grant.
        seq: u64,
    },
}

impl Wire for LeaseMsg {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            LeaseMsg::Grant(grant) => {
                enc.put_u8(0);
                grant.encode(enc);
            }
            LeaseMsg::Renew(grant) => {
                enc.put_u8(1);
                grant.encode(enc);
            }
            LeaseMsg::Revoke { object, seq } => {
                enc.put_u8(2);
                object.encode(enc);
                seq.encode(enc);
            }
            LeaseMsg::RevokeAck { object, seq } => {
                enc.put_u8(3);
                object.encode(enc);
                seq.encode(enc);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        match dec.get_u8()? {
            0 => Ok(LeaseMsg::Grant(Wire::decode(dec)?)),
            1 => Ok(LeaseMsg::Renew(Wire::decode(dec)?)),
            2 => Ok(LeaseMsg::Revoke {
                object: Wire::decode(dec)?,
                seq: Wire::decode(dec)?,
            }),
            3 => Ok(LeaseMsg::RevokeAck {
                object: Wire::decode(dec)?,
                seq: Wire::decode(dec)?,
            }),
            tag => Err(WireError::InvalidTag {
                type_name: "LeaseMsg",
                tag: u64::from(tag),
            }),
        }
    }
}

/// Identity of one synchronously-invoked write: issuing node plus a
/// per-node monotonically increasing sequence number. A client retry (after
/// a timeout or a `NodeDown` during re-homing) re-sends the *same* stamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpStamp {
    /// Node index of the issuing process.
    pub origin: u16,
    /// Per-origin sequence number.
    pub seq: u64,
}

impl Wire for OpStamp {
    fn encode(&self, enc: &mut Encoder) {
        self.origin.encode(enc);
        self.seq.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(OpStamp {
            origin: Wire::decode(dec)?,
            seq: Wire::decode(dec)?,
        })
    }
}

/// How many `(stamp, reply)` pairs a [`DedupWindow`] keeps per origin.
///
/// A retry can only chase the origin's most recent in-flight writes (the
/// synchronous path has one outstanding write per process), so a small
/// window is enough; it just has to survive the retry horizon of one
/// crash-and-promotion.
pub const DEDUP_WINDOW_PER_ORIGIN: usize = 32;

/// Bounded per-origin memory of recently applied stamped writes and the
/// replies they produced.
///
/// The window is part of the replicated object state: it rides update
/// pushes, copy fetches and backup shipping, and is carried into the
/// promoted replica during recovery — which is exactly what turns a
/// retried-across-promotion write from at-least-once into exactly-once.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DedupWindow {
    /// `(origin, seq, reply)` triples in arrival order per origin.
    entries: Vec<(u16, u64, Vec<u8>)>,
}

impl DedupWindow {
    /// An empty window.
    pub fn new() -> Self {
        DedupWindow::default()
    }

    /// The recorded reply of `stamp`, if this replica (or any replica whose
    /// state was merged into it) already applied the write.
    pub fn lookup(&self, stamp: OpStamp) -> Option<&[u8]> {
        self.entries
            .iter()
            .find(|(origin, seq, _)| *origin == stamp.origin && *seq == stamp.seq)
            .map(|(_, _, reply)| reply.as_slice())
    }

    /// Record that `stamp` was applied and produced `reply`, evicting the
    /// origin's oldest entry beyond [`DEDUP_WINDOW_PER_ORIGIN`].
    pub fn record(&mut self, stamp: OpStamp, reply: Vec<u8>) {
        if self.lookup(stamp).is_some() {
            return;
        }
        let of_origin = self
            .entries
            .iter()
            .filter(|(origin, _, _)| *origin == stamp.origin)
            .count();
        if of_origin >= DEDUP_WINDOW_PER_ORIGIN {
            if let Some(pos) = self
                .entries
                .iter()
                .position(|(origin, _, _)| *origin == stamp.origin)
            {
                self.entries.remove(pos);
            }
        }
        self.entries.push((stamp.origin, stamp.seq, reply));
    }

    /// Fold another replica's window in (used when recovery merges state
    /// from several survivors). Existing entries win.
    pub fn merge(&mut self, other: &DedupWindow) {
        for (origin, seq, reply) in &other.entries {
            let stamp = OpStamp {
                origin: *origin,
                seq: *seq,
            };
            if self.lookup(stamp).is_none() {
                self.record(stamp, reply.clone());
            }
        }
    }

    /// Number of remembered writes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Wire for DedupWindow {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_len(self.entries.len());
        for (origin, seq, reply) in &self.entries {
            origin.encode(enc);
            seq.encode(enc);
            enc.put_bytes(reply);
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        let len = dec.get_len()?;
        let mut entries = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            entries.push((Wire::decode(dec)?, Wire::decode(dec)?, dec.get_bytes()?));
        }
        Ok(DedupWindow { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SplitMix64: tiny deterministic generator for the property tests (the
    /// wire crate is dependency-free by design, so no `rand` here).
    struct Gen(u64);

    impl Gen {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    fn random_grant(gen: &mut Gen) -> LeaseGrant {
        LeaseGrant {
            object: gen.next(),
            epoch: gen.next() % 1000,
            seq: gen.next(),
            valid_ms: gen.next() % 100_000,
        }
    }

    #[test]
    fn grant_round_trips_under_random_fields() {
        let mut gen = Gen(7);
        for _ in 0..500 {
            let grant = random_grant(&mut gen);
            assert_eq!(LeaseGrant::from_bytes(&grant.to_bytes()).unwrap(), grant);
        }
    }

    #[test]
    fn all_lease_messages_round_trip() {
        let mut gen = Gen(11);
        for _ in 0..200 {
            let msgs = [
                LeaseMsg::Grant(random_grant(&mut gen)),
                LeaseMsg::Renew(random_grant(&mut gen)),
                LeaseMsg::Revoke {
                    object: gen.next(),
                    seq: gen.next(),
                },
                LeaseMsg::RevokeAck {
                    object: gen.next(),
                    seq: gen.next(),
                },
            ];
            for msg in msgs {
                assert_eq!(LeaseMsg::from_bytes(&msg.to_bytes()).unwrap(), msg);
            }
        }
        assert!(LeaseMsg::from_bytes(&[42]).is_err());
    }

    #[test]
    fn truncated_lease_messages_are_errors() {
        let bytes = LeaseMsg::Grant(LeaseGrant {
            object: 300,
            epoch: 2,
            seq: 9,
            valid_ms: 50,
        })
        .to_bytes();
        for cut in 0..bytes.len() {
            assert!(LeaseMsg::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn stamp_round_trips() {
        let mut gen = Gen(3);
        for _ in 0..200 {
            let stamp = OpStamp {
                origin: gen.next() as u16,
                seq: gen.next(),
            };
            assert_eq!(OpStamp::from_bytes(&stamp.to_bytes()).unwrap(), stamp);
        }
    }

    #[test]
    fn dedup_window_remembers_and_round_trips() {
        let mut window = DedupWindow::new();
        let stamp = OpStamp { origin: 3, seq: 17 };
        assert!(window.lookup(stamp).is_none());
        window.record(stamp, vec![9, 9]);
        assert_eq!(window.lookup(stamp), Some(&[9u8, 9][..]));
        // Re-recording the same stamp is idempotent.
        window.record(stamp, vec![1]);
        assert_eq!(window.lookup(stamp), Some(&[9u8, 9][..]));
        assert_eq!(window.len(), 1);
        let decoded = DedupWindow::from_bytes(&window.to_bytes()).unwrap();
        assert_eq!(decoded, window);
    }

    #[test]
    fn dedup_window_evicts_per_origin() {
        let mut window = DedupWindow::new();
        for seq in 0..(DEDUP_WINDOW_PER_ORIGIN as u64 + 10) {
            window.record(OpStamp { origin: 1, seq }, vec![seq as u8]);
        }
        // A second origin is unaffected by origin 1's churn.
        window.record(OpStamp { origin: 2, seq: 0 }, vec![b'x']);
        assert_eq!(window.len(), DEDUP_WINDOW_PER_ORIGIN + 1);
        assert!(window.lookup(OpStamp { origin: 1, seq: 0 }).is_none());
        assert!(window
            .lookup(OpStamp {
                origin: 1,
                seq: DEDUP_WINDOW_PER_ORIGIN as u64 + 9
            })
            .is_some());
        assert!(window.lookup(OpStamp { origin: 2, seq: 0 }).is_some());
    }

    #[test]
    fn dedup_window_merge_prefers_existing() {
        let mut a = DedupWindow::new();
        a.record(OpStamp { origin: 0, seq: 1 }, vec![1]);
        let mut b = DedupWindow::new();
        b.record(OpStamp { origin: 0, seq: 1 }, vec![2]);
        b.record(OpStamp { origin: 4, seq: 7 }, vec![3]);
        a.merge(&b);
        assert_eq!(a.lookup(OpStamp { origin: 0, seq: 1 }), Some(&[1u8][..]));
        assert_eq!(a.lookup(OpStamp { origin: 4, seq: 7 }), Some(&[3u8][..]));
    }

    #[test]
    fn random_windows_round_trip() {
        let mut gen = Gen(23);
        for _ in 0..100 {
            let mut window = DedupWindow::new();
            for _ in 0..(gen.next() % 40) {
                let stamp = OpStamp {
                    origin: (gen.next() % 5) as u16,
                    seq: gen.next() % 64,
                };
                let reply: Vec<u8> = (0..(gen.next() % 8)).map(|i| i as u8).collect();
                window.record(stamp, reply);
            }
            assert_eq!(DedupWindow::from_bytes(&window.to_bytes()).unwrap(), window);
        }
    }
}
