//! Causal trace identities carried by the wire vocabulary.
//!
//! A [`TraceId`] names one application-level invocation. It is minted at
//! the `invoke`/`invoke_async` entry point of the runtime layer and rides
//! every message the invocation causes — the RPC envelope, batched
//! operations, regime/shard operations, recovery coordination — so the
//! telemetry layer can stitch the per-node flight-recorder events of one
//! operation back into a single causal span tree: origin → sequencer /
//! primary / owner → secondaries / backups / mirrors.
//!
//! The id is a single `u64`: the high 16 bits hold `origin node + 1`, the
//! low 48 bits a per-origin counter. Zero is reserved for *untraced*
//! traffic (background protocol work such as heartbeats), which keeps the
//! encoding one byte on every message that does not belong to an
//! invocation.

use crate::{Decoder, Encoder, Wire, WireResult};

/// Compact causal identity of one invocation (0 = untraced).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The untraced identity carried by background protocol traffic.
    pub const NONE: TraceId = TraceId(0);

    /// Build the id of invocation `seq` minted at `origin`.
    ///
    /// `origin + 1` occupies the high 16 bits so ids from different nodes
    /// can never collide and node 0's ids are still distinguishable from
    /// [`TraceId::NONE`].
    pub fn mint(origin: u16, seq: u64) -> TraceId {
        TraceId((u64::from(origin) + 1) << 48 | (seq & ((1 << 48) - 1)))
    }

    /// True when this id names a real invocation.
    pub fn is_traced(self) -> bool {
        self.0 != 0
    }

    /// The node that minted this id (`None` for [`TraceId::NONE`]).
    pub fn origin(self) -> Option<u16> {
        if self.0 == 0 {
            None
        } else {
            Some(((self.0 >> 48) - 1) as u16)
        }
    }

    /// The per-origin invocation counter.
    pub fn seq(self) -> u64 {
        self.0 & ((1 << 48) - 1)
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.origin() {
            None => write!(f, "-"),
            Some(origin) => write!(f, "t{}.{}", origin, self.seq()),
        }
    }
}

impl Wire for TraceId {
    fn encode(&self, enc: &mut Encoder) {
        self.0.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(TraceId(Wire::decode(dec)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mint_and_unpack() {
        let id = TraceId::mint(3, 41);
        assert!(id.is_traced());
        assert_eq!(id.origin(), Some(3));
        assert_eq!(id.seq(), 41);
        assert_eq!(id.to_string(), "t3.41");
        assert_eq!(TraceId::NONE.origin(), None);
        assert_eq!(TraceId::NONE.to_string(), "-");
        assert!(!TraceId::NONE.is_traced());
        // Node 0's first id is distinct from NONE.
        assert!(TraceId::mint(0, 0).is_traced());
    }

    #[test]
    fn round_trips_and_stays_compact() {
        for id in [
            TraceId::NONE,
            TraceId::mint(0, 0),
            TraceId::mint(65535, (1 << 48) - 1),
        ] {
            assert_eq!(TraceId::from_bytes(&id.to_bytes()).unwrap(), id);
        }
        // Untraced costs one byte on the wire.
        assert_eq!(TraceId::NONE.encoded_len(), 1);
    }
}
