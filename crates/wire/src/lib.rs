//! Compact binary wire codec for the simulated Orca/Amoeba network.
//!
//! Every message that crosses the simulated network is encoded with this
//! codec, so the byte counts accumulated by the network statistics layer
//! (and used by the performance model to regenerate the paper's figures)
//! correspond to a real serialized representation rather than to in-memory
//! object graphs.
//!
//! The format is deliberately simple:
//!
//! * unsigned integers are LEB128 varints,
//! * signed integers are zig-zag encoded varints,
//! * floats are little-endian IEEE-754,
//! * byte strings and UTF-8 strings are length-prefixed,
//! * sequences and maps are length-prefixed element lists,
//! * `Option<T>` is a one-byte tag followed by the payload.
//!
//! The [`Wire`] trait plays the role serde would normally play; it is kept
//! dependency-free so the whole workspace only needs the crates allowed for
//! this reproduction.
//!
//! # Example
//!
//! ```
//! use orca_wire::{Decoder, Encoder, Wire};
//!
//! #[derive(Debug, PartialEq)]
//! struct Job { id: u64, route: Vec<u16>, bound: i64 }
//!
//! impl Wire for Job {
//!     fn encode(&self, enc: &mut Encoder) {
//!         self.id.encode(enc);
//!         self.route.encode(enc);
//!         self.bound.encode(enc);
//!     }
//!     fn decode(dec: &mut Decoder<'_>) -> orca_wire::WireResult<Self> {
//!         Ok(Job { id: Wire::decode(dec)?, route: Wire::decode(dec)?, bound: Wire::decode(dec)? })
//!     }
//! }
//!
//! let job = Job { id: 7, route: vec![1, 2, 3], bound: -42 };
//! let bytes = job.to_bytes();
//! assert_eq!(Job::from_bytes(&bytes).unwrap(), job);
//! ```

#![warn(missing_docs)]

pub mod batch;
mod decode;
mod encode;
mod error;
mod impls;
pub mod lease;
pub mod recovery;
pub mod regime;
pub mod shard;
pub mod trace;

pub use batch::{BatchOp, BatchOutcome, BatchReply, OpBatch};
pub use decode::{Decoder, MAX_LEN};
pub use encode::{uvarint_len, Encoder};
pub use error::{WireError, WireResult};
pub use lease::{DedupWindow, LeaseGrant, LeaseMsg, OpStamp, DEDUP_WINDOW_PER_ORIGIN};
pub use recovery::{CopyInfo, MembershipView, RecoveryMsg, RecoveryReply};
pub use regime::{RegimeKind, RegimeMsg, RegimeReply, RegimeTable};
pub use shard::{ShardMsg, ShardPartId, ShardReply, ShardRouteTable};
pub use trace::TraceId;

/// A type that can be serialized to and deserialized from the wire format.
///
/// All messages exchanged through the simulated network, all shipped
/// operations, and all replicated object states implement this trait.
pub trait Wire: Sized {
    /// Append the encoding of `self` to the encoder.
    fn encode(&self, enc: &mut Encoder);

    /// Decode a value of this type from the decoder, advancing its cursor.
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self>;

    /// Encode `self` into a fresh byte vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        enc.into_bytes()
    }

    /// Append the encoding of `self` to `buf`, reusing its capacity.
    ///
    /// This is the allocation-free seam of the hot send paths: a caller
    /// that fans one message out to many destinations (or encodes a stream
    /// of batches) clears and re-fills one scratch buffer instead of
    /// allocating a fresh `Vec` per message.
    fn encode_into(&self, buf: &mut Vec<u8>) {
        let mut enc = Encoder::from_vec(std::mem::take(buf));
        self.encode(&mut enc);
        *buf = enc.into_bytes();
    }

    /// Decode a value from a byte slice, requiring that the whole slice is
    /// consumed.
    fn from_bytes(bytes: &[u8]) -> WireResult<Self> {
        let mut dec = Decoder::new(bytes);
        let value = Self::decode(&mut dec)?;
        dec.finish()?;
        Ok(value)
    }

    /// Number of bytes the encoding of `self` occupies.
    fn encoded_len(&self) -> usize {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        enc.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_various_scalars() {
        for v in [0u64, 1, 127, 128, 300, u64::MAX] {
            assert_eq!(u64::from_bytes(&v.to_bytes()).unwrap(), v);
        }
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -300] {
            assert_eq!(i64::from_bytes(&v.to_bytes()).unwrap(), v);
        }
        for v in [f64::MIN, -0.0, 0.5, 1e300] {
            assert_eq!(f64::from_bytes(&v.to_bytes()).unwrap(), v);
        }
        assert!(bool::from_bytes(&true.to_bytes()).unwrap());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = 5u64.to_bytes();
        bytes.push(0);
        assert!(matches!(
            u64::from_bytes(&bytes),
            Err(WireError::TrailingBytes { .. })
        ));
    }

    #[test]
    fn encoded_len_matches_to_bytes() {
        let v = vec![String::from("hello"), String::from("world")];
        assert_eq!(v.encoded_len(), v.to_bytes().len());
    }
}
