//! Wire messages of the adaptive runtime system's regime protocol.
//!
//! The adaptive RTS (see `orca-rts`) serves every shared object in one of
//! three *regimes* — full replication with ordered updates, primary copy at
//! the home node, or hash-partitioned sharding — and changes an object's
//! regime at runtime from its observed read/write mix. The object's home
//! node (its creator, recoverable from the object id) owns the authoritative
//! [`RegimeTable`]; every other node caches it with a lease and is told
//! [`RegimeReply::StaleRegime`] when it acts on an outdated epoch.
//!
//! The message vocabulary lives here, at the bottom of the stack, so the
//! codecs are property-tested together with every other wire type and so the
//! byte counts the network statistics accumulate for regime traffic are
//! real. Object identifiers are carried as their raw `u64` representation
//! (exactly the encoding `ObjectId` in `orca-object` uses on the wire).

use crate::lease::{DedupWindow, LeaseGrant, OpStamp};
use crate::{Decoder, Encoder, TraceId, Wire, WireError, WireResult};

/// Which synchronization regime currently serves an object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegimeKind {
    /// One authoritative copy at the home node plus a read mirror on every
    /// node; writes execute at home, which pushes sequence-numbered updates
    /// to the mirrors. Reads are local. Best for read-dominated objects.
    Replicated,
    /// A single copy at the home node; all remote operations are shipped by
    /// RPC. Best for mixed or low-traffic objects.
    Primary,
    /// The object is split into hash-partitioned slices, each owned by one
    /// node; operations ship point-to-point to the partition owner. Best
    /// for write-hot shardable objects.
    Sharded,
}

impl RegimeKind {
    /// Human-readable name used in logs and benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            RegimeKind::Replicated => "replicated",
            RegimeKind::Primary => "primary",
            RegimeKind::Sharded => "sharded",
        }
    }
}

impl Wire for RegimeKind {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(match self {
            RegimeKind::Replicated => 0,
            RegimeKind::Primary => 1,
            RegimeKind::Sharded => 2,
        });
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        match dec.get_u8()? {
            0 => Ok(RegimeKind::Replicated),
            1 => Ok(RegimeKind::Primary),
            2 => Ok(RegimeKind::Sharded),
            tag => Err(WireError::InvalidTag {
                type_name: "RegimeKind",
                tag: u64::from(tag),
            }),
        }
    }
}

/// The authoritative description of how one object is currently served.
///
/// Held by the object's home node; cached read-through (with a lease) by
/// every other node. `epoch` is bumped by every regime switch — a server
/// receiving an operation stamped with an outdated epoch answers
/// [`RegimeReply::StaleRegime`] and the client re-fetches the table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegimeTable {
    /// Raw object id.
    pub object: u64,
    /// Registered object type name (immutable metadata).
    pub type_name: String,
    /// Bumped by every regime switch.
    pub epoch: u64,
    /// The regime currently serving the object.
    pub regime: RegimeKind,
    /// Owner node index per partition. For [`RegimeKind::Primary`] and
    /// [`RegimeKind::Replicated`] this is a single entry (the home node);
    /// for [`RegimeKind::Sharded`] one entry per partition.
    pub owners: Vec<u16>,
}

impl RegimeTable {
    /// Number of authoritative partitions of the object under this regime.
    pub fn partitions(&self) -> u32 {
        self.owners.len() as u32
    }
}

impl Wire for RegimeTable {
    fn encode(&self, enc: &mut Encoder) {
        self.object.encode(enc);
        self.type_name.encode(enc);
        self.epoch.encode(enc);
        self.regime.encode(enc);
        self.owners.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(RegimeTable {
            object: Wire::decode(dec)?,
            type_name: Wire::decode(dec)?,
            epoch: Wire::decode(dec)?,
            regime: Wire::decode(dec)?,
            owners: Wire::decode(dec)?,
        })
    }
}

/// Requests of the adaptive runtime-system service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegimeMsg {
    /// Client → home node: return the current [`RegimeTable`] of `object`.
    Route {
        /// Raw object id.
        object: u64,
    },
    /// Client → authoritative owner: execute an encoded operation on one
    /// partition (partition 0 under the primary/replicated regimes). The
    /// epoch pins the regime the client routed under; a mismatch is
    /// answered [`RegimeReply::StaleRegime`].
    Op {
        /// Raw object id.
        object: u64,
        /// Epoch of the regime table the client routed under.
        epoch: u64,
        /// Target partition.
        partition: u32,
        /// Encoded (already partition-narrowed) operation.
        op: Vec<u8>,
        /// Causal identity of the originating invocation
        /// ([`TraceId::NONE`] when untraced).
        trace: TraceId,
        /// Exactly-once identity of a synchronously invoked write, reused
        /// verbatim across client retries so a slot that already applied
        /// the op answers its recorded reply instead of applying again.
        /// `None` for reads and for the batched asynchronous path.
        stamp: Option<OpStamp>,
    },
    /// Client → home node: execute an all-partition operation indivisibly.
    /// The home fans the operation out under its switch lock, so a regime
    /// change can never interleave with the per-partition shares (which
    /// would re-apply non-idempotent shares on retry).
    OpAll {
        /// Raw object id.
        object: u64,
        /// Encoded whole-object operation.
        op: Vec<u8>,
        /// Causal identity of the originating invocation
        /// ([`TraceId::NONE`] when untraced).
        trace: TraceId,
    },
    /// Any node → home node: re-evaluate the object's regime now from the
    /// usage evidence accumulated so far (a regime-change *proposal*). The
    /// reply carries the — possibly freshly switched — routing table.
    Propose {
        /// Raw object id.
        object: u64,
    },
    /// Client → home node: report this node's read/write counts for the
    /// object since its previous report. Feeds the decayed per-node usage
    /// aggregate that drives regime decisions.
    Report {
        /// Raw object id.
        object: u64,
        /// Reporting node index.
        node: u16,
        /// Reads performed since the last report.
        reads: u64,
        /// Writes performed since the last report.
        writes: u64,
    },
    /// Home → authoritative owner (regime switch, phase 1): withdraw the
    /// partition and return its serialized state. In-flight operations that
    /// raced the withdrawal are answered `StaleRegime` and retried by their
    /// caller under the new regime — no write is lost or double-applied.
    Drain {
        /// Raw object id.
        object: u64,
        /// Epoch being drained (guards against duplicate/late drains).
        epoch: u64,
        /// Partition to withdraw.
        partition: u32,
    },
    /// Home → new owner (regime switch, phase 2): install an authoritative
    /// partition replica under the new epoch.
    Install {
        /// Raw object id.
        object: u64,
        /// Epoch of the new regime.
        epoch: u64,
        /// Partition index under the new regime.
        partition: u32,
        /// Registered object type name.
        type_name: String,
        /// Encoded partition state.
        state: Vec<u8>,
        /// Recently applied stamped writes of the installed state, so
        /// exactly-once dedup survives the regime switch with the state it
        /// describes.
        dedup: DedupWindow,
    },
    /// Home → every node (switch into the replicated regime): install a
    /// read mirror primed with the given state and update sequence number.
    Mirror {
        /// Raw object id.
        object: u64,
        /// Epoch of the replicated regime.
        epoch: u64,
        /// Registered object type name.
        type_name: String,
        /// Encoded full-object state.
        state: Vec<u8>,
        /// Update sequence number the state corresponds to.
        seq: u64,
        /// Dedup window paired with `state` (rides along so a mirror
        /// promoted by home adoption can answer retried writes).
        dedup: DedupWindow,
        /// Read lease over the installed mirror, when the home grants
        /// leases.
        lease: Option<LeaseGrant>,
    },
    /// Client → home node: fetch a fresh mirror state (lazy re-sync after a
    /// lost update or a missed mirror install).
    FetchMirror {
        /// Raw object id.
        object: u64,
        /// Epoch the client believes is current.
        epoch: u64,
    },
    /// Home → every node (switch out of the replicated regime): discard the
    /// read mirror so no node keeps serving pre-switch state.
    DropMirror {
        /// Raw object id.
        object: u64,
        /// Epoch being retired.
        epoch: u64,
    },
    /// Home → mirror holder: apply one sequence-numbered update (a write
    /// that executed at home) and keep the mirror locked until the matching
    /// [`RegimeMsg::Unlock`] arrives (two-phase, for sequential
    /// consistency).
    Update {
        /// Raw object id.
        object: u64,
        /// Epoch of the replicated regime.
        epoch: u64,
        /// Update sequence number (the home replica's write version).
        seq: u64,
        /// Encoded write operation.
        op: Vec<u8>,
        /// When the pushed write was stamped, its exactly-once identity and
        /// recorded reply, so the mirror's dedup window stays as fresh as
        /// its copy.
        stamped: Option<(OpStamp, Vec<u8>)>,
    },
    /// Home → mirror holder: release the mirror locked by `seq`.
    Unlock {
        /// Raw object id.
        object: u64,
        /// Epoch of the replicated regime.
        epoch: u64,
        /// Update sequence number being released.
        seq: u64,
        /// Renewed read lease over the (now current again) mirror, when
        /// the home grants leases.
        lease: Option<LeaseGrant>,
    },
    /// Recovering home → survivor: report the freshest mirror state of
    /// `object` you hold, so a node adopting the home role of a dead
    /// creator can regenerate the object from a surviving mirror.
    MirrorQuery {
        /// Raw object id.
        object: u64,
    },
    /// Client → slot server: execute a *batch* of operations, in order —
    /// the pipelined asynchronous path. Each op carries the epoch its
    /// sender believed current and the partition it addresses
    /// ([`crate::batch::BatchOp`]); an op whose epoch is stale answers
    /// `Stale` in its outcome without affecting the rest of the batch.
    OpBatch {
        /// The operations, in issue order.
        ops: Vec<crate::batch::BatchOp>,
    },
}

impl Wire for RegimeMsg {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            RegimeMsg::Route { object } => {
                enc.put_u8(0);
                object.encode(enc);
            }
            RegimeMsg::Op {
                object,
                epoch,
                partition,
                op,
                trace,
                stamp,
            } => {
                enc.put_u8(1);
                object.encode(enc);
                epoch.encode(enc);
                partition.encode(enc);
                enc.put_bytes(op);
                trace.encode(enc);
                stamp.encode(enc);
            }
            RegimeMsg::OpAll { object, op, trace } => {
                enc.put_u8(2);
                object.encode(enc);
                enc.put_bytes(op);
                trace.encode(enc);
            }
            RegimeMsg::Propose { object } => {
                enc.put_u8(3);
                object.encode(enc);
            }
            RegimeMsg::Report {
                object,
                node,
                reads,
                writes,
            } => {
                enc.put_u8(4);
                object.encode(enc);
                node.encode(enc);
                reads.encode(enc);
                writes.encode(enc);
            }
            RegimeMsg::Drain {
                object,
                epoch,
                partition,
            } => {
                enc.put_u8(5);
                object.encode(enc);
                epoch.encode(enc);
                partition.encode(enc);
            }
            RegimeMsg::Install {
                object,
                epoch,
                partition,
                type_name,
                state,
                dedup,
            } => {
                enc.put_u8(6);
                object.encode(enc);
                epoch.encode(enc);
                partition.encode(enc);
                type_name.encode(enc);
                enc.put_bytes(state);
                dedup.encode(enc);
            }
            RegimeMsg::Mirror {
                object,
                epoch,
                type_name,
                state,
                seq,
                dedup,
                lease,
            } => {
                enc.put_u8(7);
                object.encode(enc);
                epoch.encode(enc);
                type_name.encode(enc);
                enc.put_bytes(state);
                seq.encode(enc);
                dedup.encode(enc);
                lease.encode(enc);
            }
            RegimeMsg::FetchMirror { object, epoch } => {
                enc.put_u8(8);
                object.encode(enc);
                epoch.encode(enc);
            }
            RegimeMsg::DropMirror { object, epoch } => {
                enc.put_u8(9);
                object.encode(enc);
                epoch.encode(enc);
            }
            RegimeMsg::Update {
                object,
                epoch,
                seq,
                op,
                stamped,
            } => {
                enc.put_u8(10);
                object.encode(enc);
                epoch.encode(enc);
                seq.encode(enc);
                enc.put_bytes(op);
                stamped.encode(enc);
            }
            RegimeMsg::Unlock {
                object,
                epoch,
                seq,
                lease,
            } => {
                enc.put_u8(11);
                object.encode(enc);
                epoch.encode(enc);
                seq.encode(enc);
                lease.encode(enc);
            }
            RegimeMsg::OpBatch { ops } => {
                enc.put_u8(13);
                ops.encode(enc);
            }
            RegimeMsg::MirrorQuery { object } => {
                enc.put_u8(12);
                object.encode(enc);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        match dec.get_u8()? {
            0 => Ok(RegimeMsg::Route {
                object: Wire::decode(dec)?,
            }),
            1 => Ok(RegimeMsg::Op {
                object: Wire::decode(dec)?,
                epoch: Wire::decode(dec)?,
                partition: Wire::decode(dec)?,
                op: dec.get_bytes()?,
                trace: Wire::decode(dec)?,
                stamp: Wire::decode(dec)?,
            }),
            2 => Ok(RegimeMsg::OpAll {
                object: Wire::decode(dec)?,
                op: dec.get_bytes()?,
                trace: Wire::decode(dec)?,
            }),
            3 => Ok(RegimeMsg::Propose {
                object: Wire::decode(dec)?,
            }),
            4 => Ok(RegimeMsg::Report {
                object: Wire::decode(dec)?,
                node: Wire::decode(dec)?,
                reads: Wire::decode(dec)?,
                writes: Wire::decode(dec)?,
            }),
            5 => Ok(RegimeMsg::Drain {
                object: Wire::decode(dec)?,
                epoch: Wire::decode(dec)?,
                partition: Wire::decode(dec)?,
            }),
            6 => Ok(RegimeMsg::Install {
                object: Wire::decode(dec)?,
                epoch: Wire::decode(dec)?,
                partition: Wire::decode(dec)?,
                type_name: Wire::decode(dec)?,
                state: dec.get_bytes()?,
                dedup: Wire::decode(dec)?,
            }),
            7 => Ok(RegimeMsg::Mirror {
                object: Wire::decode(dec)?,
                epoch: Wire::decode(dec)?,
                type_name: Wire::decode(dec)?,
                state: dec.get_bytes()?,
                seq: Wire::decode(dec)?,
                dedup: Wire::decode(dec)?,
                lease: Wire::decode(dec)?,
            }),
            8 => Ok(RegimeMsg::FetchMirror {
                object: Wire::decode(dec)?,
                epoch: Wire::decode(dec)?,
            }),
            9 => Ok(RegimeMsg::DropMirror {
                object: Wire::decode(dec)?,
                epoch: Wire::decode(dec)?,
            }),
            10 => Ok(RegimeMsg::Update {
                object: Wire::decode(dec)?,
                epoch: Wire::decode(dec)?,
                seq: Wire::decode(dec)?,
                op: dec.get_bytes()?,
                stamped: Wire::decode(dec)?,
            }),
            11 => Ok(RegimeMsg::Unlock {
                object: Wire::decode(dec)?,
                epoch: Wire::decode(dec)?,
                seq: Wire::decode(dec)?,
                lease: Wire::decode(dec)?,
            }),
            13 => Ok(RegimeMsg::OpBatch {
                ops: Wire::decode(dec)?,
            }),
            12 => Ok(RegimeMsg::MirrorQuery {
                object: Wire::decode(dec)?,
            }),
            tag => Err(WireError::InvalidTag {
                type_name: "RegimeMsg",
                tag: u64::from(tag),
            }),
        }
    }
}

/// Replies of the adaptive runtime-system service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegimeReply {
    /// Encoded reply of a completed operation.
    Done(Vec<u8>),
    /// The operation's guard was false; the caller should retry later.
    Blocked,
    /// Routing table (reply to [`RegimeMsg::Route`] and
    /// [`RegimeMsg::Propose`]).
    Route(RegimeTable),
    /// The epoch in the request is no longer current (or the receiver does
    /// not hold the addressed partition); the caller must re-fetch the
    /// regime table from the home node.
    StaleRegime,
    /// Serialized partition state (reply to [`RegimeMsg::Drain`]).
    State {
        /// Encoded partition state.
        state: Vec<u8>,
        /// Dedup window paired with `state`, carried through the switch.
        dedup: DedupWindow,
    },
    /// Serialized full state plus update sequence number (reply to
    /// [`RegimeMsg::FetchMirror`]).
    MirrorState {
        /// Encoded full-object state.
        state: Vec<u8>,
        /// Update sequence number the state corresponds to.
        seq: u64,
        /// Dedup window paired with `state`.
        dedup: DedupWindow,
        /// Read lease over the fetched mirror, when the home grants
        /// leases.
        lease: Option<LeaseGrant>,
    },
    /// Acknowledgement with no payload.
    Ack,
    /// The request failed.
    Error(String),
    /// Reply to [`RegimeMsg::MirrorQuery`]: the freshest mirror this node
    /// holds, or `None` when it has no copy of the object.
    MirrorReport {
        /// The mirror's `(epoch, seq, type_name, state)`, if one is held.
        mirror: Option<(u64, u64, String, Vec<u8>)>,
        /// Dedup window paired with the reported state (empty when no
        /// mirror is held), so an adopted home answers retried writes the
        /// dead home already applied.
        dedup: DedupWindow,
    },
    /// The object's state did not survive the failure (no authoritative
    /// copy and no mirror left); operations on it can never succeed.
    ObjectLost,
    /// Per-operation outcomes of a [`RegimeMsg::OpBatch`], in batch order.
    Batch(Vec<crate::batch::BatchOutcome>),
}

impl Wire for RegimeReply {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            RegimeReply::Done(bytes) => {
                enc.put_u8(0);
                enc.put_bytes(bytes);
            }
            RegimeReply::Blocked => enc.put_u8(1),
            RegimeReply::Route(table) => {
                enc.put_u8(2);
                table.encode(enc);
            }
            RegimeReply::StaleRegime => enc.put_u8(3),
            RegimeReply::State { state, dedup } => {
                enc.put_u8(4);
                enc.put_bytes(state);
                dedup.encode(enc);
            }
            RegimeReply::MirrorState {
                state,
                seq,
                dedup,
                lease,
            } => {
                enc.put_u8(5);
                enc.put_bytes(state);
                seq.encode(enc);
                dedup.encode(enc);
                lease.encode(enc);
            }
            RegimeReply::Ack => enc.put_u8(6),
            RegimeReply::Error(msg) => {
                enc.put_u8(7);
                msg.encode(enc);
            }
            RegimeReply::MirrorReport { mirror, dedup } => {
                enc.put_u8(8);
                mirror.encode(enc);
                dedup.encode(enc);
            }
            RegimeReply::ObjectLost => enc.put_u8(9),
            RegimeReply::Batch(outcomes) => {
                enc.put_u8(10);
                outcomes.encode(enc);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        match dec.get_u8()? {
            0 => Ok(RegimeReply::Done(dec.get_bytes()?)),
            1 => Ok(RegimeReply::Blocked),
            2 => Ok(RegimeReply::Route(Wire::decode(dec)?)),
            3 => Ok(RegimeReply::StaleRegime),
            4 => Ok(RegimeReply::State {
                state: dec.get_bytes()?,
                dedup: Wire::decode(dec)?,
            }),
            5 => Ok(RegimeReply::MirrorState {
                state: dec.get_bytes()?,
                seq: Wire::decode(dec)?,
                dedup: Wire::decode(dec)?,
                lease: Wire::decode(dec)?,
            }),
            6 => Ok(RegimeReply::Ack),
            7 => Ok(RegimeReply::Error(Wire::decode(dec)?)),
            8 => Ok(RegimeReply::MirrorReport {
                mirror: Wire::decode(dec)?,
                dedup: Wire::decode(dec)?,
            }),
            9 => Ok(RegimeReply::ObjectLost),
            10 => Ok(RegimeReply::Batch(Wire::decode(dec)?)),
            tag => Err(WireError::InvalidTag {
                type_name: "RegimeReply",
                tag: u64::from(tag),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> RegimeTable {
        RegimeTable {
            object: (3u64 << 48) | 17,
            type_name: "orca.KvTable".into(),
            epoch: 5,
            regime: RegimeKind::Sharded,
            owners: vec![0, 1, 2, 1],
        }
    }

    fn window() -> DedupWindow {
        let mut dedup = DedupWindow::new();
        dedup.record(OpStamp { origin: 3, seq: 11 }, vec![1, 2]);
        dedup
    }

    fn grant() -> LeaseGrant {
        LeaseGrant {
            object: 9,
            epoch: 3,
            seq: 4,
            valid_ms: 150,
        }
    }

    #[test]
    fn all_requests_round_trip() {
        let msgs = vec![
            RegimeMsg::Route { object: 9 },
            RegimeMsg::Op {
                object: 9,
                epoch: 2,
                partition: 3,
                op: vec![1, 2, 3],
                trace: TraceId::mint(0, 3),
                stamp: Some(OpStamp { origin: 2, seq: 40 }),
            },
            RegimeMsg::OpAll {
                object: 9,
                op: vec![4, 5],
                trace: TraceId::NONE,
            },
            RegimeMsg::Propose { object: 9 },
            RegimeMsg::Report {
                object: 9,
                node: 4,
                reads: 100,
                writes: 3,
            },
            RegimeMsg::Drain {
                object: 9,
                epoch: 2,
                partition: 0,
            },
            RegimeMsg::Install {
                object: 9,
                epoch: 3,
                partition: 1,
                type_name: "orca.Set".into(),
                state: vec![0; 8],
                dedup: window(),
            },
            RegimeMsg::Mirror {
                object: 9,
                epoch: 3,
                type_name: "orca.Int".into(),
                state: vec![7],
                seq: 12,
                dedup: DedupWindow::new(),
                lease: Some(grant()),
            },
            RegimeMsg::FetchMirror {
                object: 9,
                epoch: 3,
            },
            RegimeMsg::DropMirror {
                object: 9,
                epoch: 3,
            },
            RegimeMsg::Update {
                object: 9,
                epoch: 3,
                seq: 13,
                op: vec![1],
                stamped: Some((OpStamp { origin: 1, seq: 7 }, vec![0])),
            },
            RegimeMsg::Unlock {
                object: 9,
                epoch: 3,
                seq: 13,
                lease: Some(grant()),
            },
            RegimeMsg::MirrorQuery { object: 9 },
            RegimeMsg::OpBatch {
                ops: vec![crate::batch::BatchOp {
                    id: 4,
                    object: 9,
                    partition: 1,
                    epoch: 3,
                    op: vec![2],
                    trace: TraceId::mint(1, 4),
                }],
            },
        ];
        for msg in msgs {
            assert_eq!(RegimeMsg::from_bytes(&msg.to_bytes()).unwrap(), msg);
        }
    }

    #[test]
    fn all_replies_round_trip() {
        let table = table();
        assert_eq!(table.partitions(), 4);
        let replies = vec![
            RegimeReply::Done(vec![9]),
            RegimeReply::Blocked,
            RegimeReply::Route(table),
            RegimeReply::StaleRegime,
            RegimeReply::State {
                state: vec![1, 2],
                dedup: window(),
            },
            RegimeReply::MirrorState {
                state: vec![3],
                seq: 8,
                dedup: window(),
                lease: Some(grant()),
            },
            RegimeReply::Ack,
            RegimeReply::Error("nope".into()),
            RegimeReply::MirrorReport {
                mirror: None,
                dedup: DedupWindow::new(),
            },
            RegimeReply::MirrorReport {
                mirror: Some((4, 17, "orca.Int".into(), vec![7])),
                dedup: window(),
            },
            RegimeReply::ObjectLost,
            RegimeReply::Batch(vec![
                crate::batch::BatchOutcome::Done(vec![1]),
                crate::batch::BatchOutcome::Stale,
            ]),
        ];
        for reply in replies {
            assert_eq!(RegimeReply::from_bytes(&reply.to_bytes()).unwrap(), reply);
        }
    }

    #[test]
    fn regime_kind_names_and_tags() {
        for kind in [
            RegimeKind::Replicated,
            RegimeKind::Primary,
            RegimeKind::Sharded,
        ] {
            assert_eq!(RegimeKind::from_bytes(&kind.to_bytes()).unwrap(), kind);
            assert!(!kind.name().is_empty());
        }
        assert!(RegimeKind::from_bytes(&[9]).is_err());
    }

    #[test]
    fn truncated_messages_are_errors() {
        let bytes = RegimeMsg::Op {
            object: 1,
            epoch: 1,
            partition: 1,
            op: vec![1, 2, 3],
            trace: TraceId::NONE,
            stamp: None,
        }
        .to_bytes();
        assert!(RegimeMsg::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(RegimeReply::from_bytes(&[0xff]).is_err());
    }
}
