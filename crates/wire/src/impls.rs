//! [`Wire`] implementations for standard-library types.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::hash::Hash;

use crate::{Decoder, Encoder, Wire, WireError, WireResult};

macro_rules! impl_wire_uint {
    ($($ty:ty),*) => {
        $(
            impl Wire for $ty {
                fn encode(&self, enc: &mut Encoder) {
                    enc.put_uvarint(u64::from(*self));
                }
                fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
                    let value = dec.get_uvarint()?;
                    <$ty>::try_from(value).map_err(|_| WireError::LengthTooLarge {
                        len: value,
                        max: u64::from(<$ty>::MAX),
                    })
                }
            }
        )*
    };
}

impl_wire_uint!(u8, u16, u32);

impl Wire for u64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_uvarint(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        dec.get_uvarint()
    }
}

impl Wire for usize {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_uvarint(*self as u64);
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        let value = dec.get_uvarint()?;
        usize::try_from(value).map_err(|_| WireError::LengthTooLarge {
            len: value,
            max: usize::MAX as u64,
        })
    }
}

macro_rules! impl_wire_int {
    ($($ty:ty),*) => {
        $(
            impl Wire for $ty {
                fn encode(&self, enc: &mut Encoder) {
                    enc.put_ivarint(i64::from(*self));
                }
                fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
                    let value = dec.get_ivarint()?;
                    <$ty>::try_from(value).map_err(|_| WireError::custom(concat!(
                        "integer out of range for ", stringify!($ty)
                    )))
                }
            }
        )*
    };
}

impl_wire_int!(i8, i16, i32);

impl Wire for i64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_ivarint(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        dec.get_ivarint()
    }
}

impl Wire for f64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_f64(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        dec.get_f64()
    }
}

impl Wire for f32 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_f32(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        dec.get_f32()
    }
}

impl Wire for bool {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_bool(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        dec.get_bool()
    }
}

impl Wire for String {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(self);
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        dec.get_str()
    }
}

impl Wire for () {
    fn encode(&self, _enc: &mut Encoder) {}
    fn decode(_dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(())
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            None => enc.put_u8(0),
            Some(value) => {
                enc.put_u8(1);
                value.encode(enc);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        match dec.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(dec)?)),
            tag => Err(WireError::InvalidTag {
                type_name: "Option",
                tag: u64::from(tag),
            }),
        }
    }
}

impl<T: Wire, E: Wire> Wire for Result<T, E> {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            Ok(value) => {
                enc.put_u8(0);
                value.encode(enc);
            }
            Err(err) => {
                enc.put_u8(1);
                err.encode(enc);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        match dec.get_u8()? {
            0 => Ok(Ok(T::decode(dec)?)),
            1 => Ok(Err(E::decode(dec)?)),
            tag => Err(WireError::InvalidTag {
                type_name: "Result",
                tag: u64::from(tag),
            }),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_len(self.len());
        for item in self {
            item.encode(enc);
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        let len = dec.get_len()?;
        let mut out = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            out.push(T::decode(dec)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for VecDeque<T> {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_len(self.len());
        for item in self {
            item.encode(enc);
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(Vec::<T>::decode(dec)?.into())
    }
}

impl<T: Wire + Default + Copy, const N: usize> Wire for [T; N] {
    fn encode(&self, enc: &mut Encoder) {
        for item in self {
            item.encode(enc);
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        let mut out = [T::default(); N];
        for slot in out.iter_mut() {
            *slot = T::decode(dec)?;
        }
        Ok(out)
    }
}

impl<K: Wire + Ord, V: Wire> Wire for BTreeMap<K, V> {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_len(self.len());
        for (key, value) in self {
            key.encode(enc);
            value.encode(enc);
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        let len = dec.get_len()?;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let key = K::decode(dec)?;
            let value = V::decode(dec)?;
            out.insert(key, value);
        }
        Ok(out)
    }
}

impl<K: Wire + Eq + Hash, V: Wire> Wire for HashMap<K, V> {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_len(self.len());
        for (key, value) in self {
            key.encode(enc);
            value.encode(enc);
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        let len = dec.get_len()?;
        let mut out = HashMap::with_capacity(len.min(4096));
        for _ in 0..len {
            let key = K::decode(dec)?;
            let value = V::decode(dec)?;
            out.insert(key, value);
        }
        Ok(out)
    }
}

impl<T: Wire + Ord> Wire for BTreeSet<T> {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_len(self.len());
        for item in self {
            item.encode(enc);
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        let len = dec.get_len()?;
        let mut out = BTreeSet::new();
        for _ in 0..len {
            out.insert(T::decode(dec)?);
        }
        Ok(out)
    }
}

impl<T: Wire + Eq + Hash> Wire for HashSet<T> {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_len(self.len());
        for item in self {
            item.encode(enc);
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        let len = dec.get_len()?;
        let mut out = HashSet::with_capacity(len.min(4096));
        for _ in 0..len {
            out.insert(T::decode(dec)?);
        }
        Ok(out)
    }
}

macro_rules! impl_wire_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Wire),+> Wire for ($($name,)+) {
            fn encode(&self, enc: &mut Encoder) {
                $(self.$idx.encode(enc);)+
            }
            fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
                Ok(($($name::decode(dec)?,)+))
            }
        }
    };
}

impl_wire_tuple!(A: 0);
impl_wire_tuple!(A: 0, B: 1);
impl_wire_tuple!(A: 0, B: 1, C: 2);
impl_wire_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_wire_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

impl<T: Wire> Wire for Box<T> {
    fn encode(&self, enc: &mut Encoder) {
        (**self).encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(Box::new(T::decode(dec)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collections_round_trip() {
        let v: Vec<u32> = vec![1, 2, 3, 500_000];
        assert_eq!(Vec::<u32>::from_bytes(&v.to_bytes()).unwrap(), v);

        let mut map = BTreeMap::new();
        map.insert("a".to_string(), vec![1u8, 2]);
        map.insert("b".to_string(), vec![]);
        assert_eq!(
            BTreeMap::<String, Vec<u8>>::from_bytes(&map.to_bytes()).unwrap(),
            map
        );

        let mut hs = HashSet::new();
        hs.insert(42u64);
        hs.insert(7);
        assert_eq!(HashSet::<u64>::from_bytes(&hs.to_bytes()).unwrap(), hs);

        let dq: VecDeque<i32> = vec![-1, 0, 1].into();
        assert_eq!(VecDeque::<i32>::from_bytes(&dq.to_bytes()).unwrap(), dq);
    }

    #[test]
    fn option_and_result_round_trip() {
        let some: Option<String> = Some("x".into());
        let none: Option<String> = None;
        assert_eq!(
            Option::<String>::from_bytes(&some.to_bytes()).unwrap(),
            some
        );
        assert_eq!(
            Option::<String>::from_bytes(&none.to_bytes()).unwrap(),
            none
        );

        let ok: Result<u32, String> = Ok(7);
        let err: Result<u32, String> = Err("bad".into());
        assert_eq!(
            Result::<u32, String>::from_bytes(&ok.to_bytes()).unwrap(),
            ok
        );
        assert_eq!(
            Result::<u32, String>::from_bytes(&err.to_bytes()).unwrap(),
            err
        );
    }

    #[test]
    fn tuples_and_arrays_round_trip() {
        let t = (1u8, -5i32, "hi".to_string(), true);
        assert_eq!(
            <(u8, i32, String, bool)>::from_bytes(&t.to_bytes()).unwrap(),
            t
        );
        let arr = [1u16, 2, 3, 4];
        assert_eq!(<[u16; 4]>::from_bytes(&arr.to_bytes()).unwrap(), arr);
    }

    #[test]
    fn narrowing_decode_fails_cleanly() {
        let big = 300u64;
        assert!(u8::from_bytes(&big.to_bytes()).is_err());
        let neg = -1i64;
        assert!(i8::from_bytes(&(-200i64).to_bytes()).is_err());
        assert_eq!(i64::from_bytes(&neg.to_bytes()).unwrap(), -1);
    }
}
