//! Wire messages of the sharded runtime system.
//!
//! The sharded RTS (see `orca-rts`) splits a shardable object into `N`
//! partitions, each owned by exactly one node, and ships operations
//! point-to-point to the partition owner. The message vocabulary lives here,
//! at the bottom of the stack, so the codecs are property-tested together
//! with every other wire type and so the byte counts the network statistics
//! accumulate for shard traffic are real.
//!
//! This crate sits below the object layer, so object identifiers are carried
//! as their raw `u64` representation (exactly the encoding `ObjectId` in
//! `orca-object` uses on the wire).

use crate::batch::{BatchOp, BatchOutcome};
use crate::lease::{DedupWindow, OpStamp};
use crate::{Decoder, Encoder, TraceId, Wire, WireError, WireResult};

/// Identifies one partition of one sharded object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardPartId {
    /// Raw object id (the `u64` inside `ObjectId`).
    pub object: u64,
    /// Partition index, `0 .. partitions`.
    pub partition: u32,
}

impl Wire for ShardPartId {
    fn encode(&self, enc: &mut Encoder) {
        self.object.encode(enc);
        self.partition.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(ShardPartId {
            object: Wire::decode(dec)?,
            partition: Wire::decode(dec)?,
        })
    }
}

/// The routing table of one object: which node owns each partition.
///
/// The creating node ("home node", recoverable from the object id) holds the
/// authoritative table; every other node caches it read-through. The
/// `type_name` and the partition count are immutable for the lifetime of the
/// object and may be cached forever; `owners` changes on migration, which
/// bumps `version` — a node acting on a stale table is answered with
/// [`ShardReply::StaleRoute`] and re-fetches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRouteTable {
    /// Raw object id.
    pub object: u64,
    /// Registered object type name (immutable metadata).
    pub type_name: String,
    /// True if the object is partitioned; false for the primary-copy
    /// fallback of non-shardable types (a single "partition" at the home
    /// node).
    pub sharded: bool,
    /// Bumped by every migration.
    pub version: u64,
    /// Owner node index per partition; `owners.len()` is the partition
    /// count (immutable metadata).
    pub owners: Vec<u16>,
}

impl ShardRouteTable {
    /// Number of partitions of the object.
    pub fn partitions(&self) -> u32 {
        self.owners.len() as u32
    }
}

impl Wire for ShardRouteTable {
    fn encode(&self, enc: &mut Encoder) {
        self.object.encode(enc);
        self.type_name.encode(enc);
        self.sharded.encode(enc);
        self.version.encode(enc);
        self.owners.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        Ok(ShardRouteTable {
            object: Wire::decode(dec)?,
            type_name: Wire::decode(dec)?,
            sharded: Wire::decode(dec)?,
            version: Wire::decode(dec)?,
            owners: Wire::decode(dec)?,
        })
    }
}

/// Requests of the sharded runtime-system service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardMsg {
    /// Client → home node: return the routing table of `object`.
    Route {
        /// Raw object id.
        object: u64,
    },
    /// Client → partition owner: execute an encoded operation on the
    /// partition. The owner replies [`ShardReply::Done`] or, if the
    /// operation's guard is false, [`ShardReply::Blocked`]; if the owner no
    /// longer holds the partition it replies [`ShardReply::StaleRoute`].
    Op {
        /// Target partition.
        shard: ShardPartId,
        /// Encoded operation.
        op: Vec<u8>,
        /// Causal identity of the originating invocation
        /// ([`TraceId::NONE`] when untraced).
        trace: TraceId,
        /// Dedup stamp of the originating *write* invocation (`None` for
        /// reads). Minted once per invocation and reused verbatim on every
        /// retry, so an owner (or the backup promoted in its place) that
        /// already applied the write answers the recorded reply instead of
        /// applying it twice.
        stamp: Option<OpStamp>,
    },
    /// Creator/old owner → new owner: install a partition replica (initial
    /// placement and the final step of a migration).
    Install {
        /// Target partition.
        shard: ShardPartId,
        /// Registered object type name, so the receiver can instantiate a
        /// replica.
        type_name: String,
        /// Encoded partition state.
        state: Vec<u8>,
        /// Cumulative version (completed-write count over the partition's
        /// whole life) of the shipped state, preserved across migrations
        /// and promotions so recovery can always pick the freshest copy.
        version: u64,
        /// The partition's dedup window, travelling with the state: the new
        /// owner must answer retries of writes the old owner acknowledged.
        dedup: DedupWindow,
    },
    /// Client → home node: migrate a partition to node `dst`. The home node
    /// coordinates the hand-off and updates the authoritative routing table.
    Migrate {
        /// Partition to move.
        shard: ShardPartId,
        /// Destination node index.
        dst: u16,
    },
    /// Home node → current owner: hand your partition replica to `dst`
    /// (migration, phase 1). The owner transfers the state with
    /// [`ShardMsg::Install`] and discards its copy.
    HandOff {
        /// Partition to move.
        shard: ShardPartId,
        /// Destination node index.
        dst: u16,
    },
    /// Owner → backup node: apply one completed write operation to the
    /// backup replica of the partition, keeping it current so it can be
    /// promoted if the owner crashes. Shipped synchronously (under the
    /// owner's replica mutex, before the write is acknowledged), so an
    /// acknowledged write is never lost to a single node failure.
    Backup {
        /// Target partition.
        shard: ShardPartId,
        /// Encoded operation, exactly as applied at the owner.
        op: Vec<u8>,
        /// The owner replica's version *after* applying the operation; a
        /// backup whose version does not line up detects a missed update
        /// and asks for a full reinstall instead of diverging silently.
        version: u64,
        /// Stamp and original reply of the write, when the invocation was
        /// stamped: the backup records it so its dedup window stays exactly
        /// as current as its replica.
        stamped: Option<(OpStamp, Vec<u8>)>,
    },
    /// Owner → backup node: (re)install the full backup state of a
    /// partition (initial placement, migration, promotion, and recovery
    /// from a missed [`ShardMsg::Backup`]).
    InstallBackup {
        /// Target partition.
        shard: ShardPartId,
        /// Registered object type name.
        type_name: String,
        /// Encoded partition state.
        state: Vec<u8>,
        /// Version (completed-write count) of the shipped state.
        version: u64,
        /// The partition's dedup window as of the shipped state.
        dedup: DedupWindow,
    },
    /// Home node → backup holder: the partition's owner died; promote your
    /// backup replica to the authoritative copy.
    PromoteBackup {
        /// Partition to promote.
        shard: ShardPartId,
    },
    /// Recovering home → survivor: report which partitions of `object` you
    /// own and which you hold backups of (with versions), so a node
    /// adopting the home role of a dead creator can rebuild the routing
    /// table.
    ReportOwned {
        /// Raw object id.
        object: u64,
    },
    /// Client → partition owner: execute a *batch* of (already
    /// partition-narrowed) operations, in order, on the partitions named
    /// per op — the pipelined asynchronous path's one-RPC-per-owner
    /// shipping. The owner answers [`ShardReply::Batch`] with one outcome
    /// per op, and ships each partition's applied writes to its backup as
    /// a single [`ShardMsg::BackupBatch`].
    OpBatch {
        /// The operations, in issue order (`BatchOp::partition` addresses
        /// the partition; `epoch` unused).
        ops: Vec<BatchOp>,
    },
    /// Owner → backup node: apply a run of consecutive completed write
    /// operations to the backup replica of the partition — the batched
    /// form of [`ShardMsg::Backup`], one message per partition per batch.
    BackupBatch {
        /// Target partition.
        shard: ShardPartId,
        /// Encoded operations, in owner application order.
        ops: Vec<Vec<u8>>,
        /// The owner's cumulative partition version after applying
        /// `ops[0]`; the run covers `first_version ..= first_version +
        /// ops.len() - 1` and the backup applies exactly the unseen
        /// suffix, or asks for a reinstall on a gap.
        first_version: u64,
    },
}

impl Wire for ShardMsg {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            ShardMsg::Route { object } => {
                enc.put_u8(0);
                object.encode(enc);
            }
            ShardMsg::Op {
                shard,
                op,
                trace,
                stamp,
            } => {
                enc.put_u8(1);
                shard.encode(enc);
                enc.put_bytes(op);
                trace.encode(enc);
                stamp.encode(enc);
            }
            ShardMsg::Install {
                shard,
                type_name,
                state,
                version,
                dedup,
            } => {
                enc.put_u8(2);
                shard.encode(enc);
                type_name.encode(enc);
                enc.put_bytes(state);
                version.encode(enc);
                dedup.encode(enc);
            }
            ShardMsg::Migrate { shard, dst } => {
                enc.put_u8(3);
                shard.encode(enc);
                dst.encode(enc);
            }
            ShardMsg::HandOff { shard, dst } => {
                enc.put_u8(4);
                shard.encode(enc);
                dst.encode(enc);
            }
            ShardMsg::Backup {
                shard,
                op,
                version,
                stamped,
            } => {
                enc.put_u8(5);
                shard.encode(enc);
                enc.put_bytes(op);
                version.encode(enc);
                stamped.encode(enc);
            }
            ShardMsg::InstallBackup {
                shard,
                type_name,
                state,
                version,
                dedup,
            } => {
                enc.put_u8(6);
                shard.encode(enc);
                type_name.encode(enc);
                enc.put_bytes(state);
                version.encode(enc);
                dedup.encode(enc);
            }
            ShardMsg::PromoteBackup { shard } => {
                enc.put_u8(7);
                shard.encode(enc);
            }
            ShardMsg::ReportOwned { object } => {
                enc.put_u8(8);
                object.encode(enc);
            }
            ShardMsg::OpBatch { ops } => {
                enc.put_u8(9);
                ops.encode(enc);
            }
            ShardMsg::BackupBatch {
                shard,
                ops,
                first_version,
            } => {
                enc.put_u8(10);
                shard.encode(enc);
                ops.encode(enc);
                first_version.encode(enc);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        match dec.get_u8()? {
            0 => Ok(ShardMsg::Route {
                object: Wire::decode(dec)?,
            }),
            1 => Ok(ShardMsg::Op {
                shard: Wire::decode(dec)?,
                op: dec.get_bytes()?,
                trace: Wire::decode(dec)?,
                stamp: Wire::decode(dec)?,
            }),
            2 => Ok(ShardMsg::Install {
                shard: Wire::decode(dec)?,
                type_name: Wire::decode(dec)?,
                state: dec.get_bytes()?,
                version: Wire::decode(dec)?,
                dedup: Wire::decode(dec)?,
            }),
            3 => Ok(ShardMsg::Migrate {
                shard: Wire::decode(dec)?,
                dst: Wire::decode(dec)?,
            }),
            4 => Ok(ShardMsg::HandOff {
                shard: Wire::decode(dec)?,
                dst: Wire::decode(dec)?,
            }),
            5 => Ok(ShardMsg::Backup {
                shard: Wire::decode(dec)?,
                op: dec.get_bytes()?,
                version: Wire::decode(dec)?,
                stamped: Wire::decode(dec)?,
            }),
            6 => Ok(ShardMsg::InstallBackup {
                shard: Wire::decode(dec)?,
                type_name: Wire::decode(dec)?,
                state: dec.get_bytes()?,
                version: Wire::decode(dec)?,
                dedup: Wire::decode(dec)?,
            }),
            7 => Ok(ShardMsg::PromoteBackup {
                shard: Wire::decode(dec)?,
            }),
            8 => Ok(ShardMsg::ReportOwned {
                object: Wire::decode(dec)?,
            }),
            9 => Ok(ShardMsg::OpBatch {
                ops: Wire::decode(dec)?,
            }),
            10 => Ok(ShardMsg::BackupBatch {
                shard: Wire::decode(dec)?,
                ops: Wire::decode(dec)?,
                first_version: Wire::decode(dec)?,
            }),
            tag => Err(WireError::InvalidTag {
                type_name: "ShardMsg",
                tag: u64::from(tag),
            }),
        }
    }
}

/// Replies of the sharded runtime-system service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardReply {
    /// Encoded reply of a completed operation.
    Done(Vec<u8>),
    /// The operation's guard was false; the caller should retry later.
    Blocked,
    /// Routing table (reply to [`ShardMsg::Route`]).
    Route(ShardRouteTable),
    /// The receiver does not (or no longer) hold the addressed partition;
    /// the caller must re-fetch the routing table from the home node.
    StaleRoute,
    /// Acknowledgement with no payload.
    Ack,
    /// The request failed.
    Error(String),
    /// Reply to [`ShardMsg::ReportOwned`]: the partitions of the object
    /// this node owns and backs up, as `(partition, version)` pairs. The
    /// type name is empty when the node holds nothing of the object.
    Owned {
        /// Registered object type name (empty when nothing is held).
        type_name: String,
        /// Partitions this node owns authoritatively.
        owned: Vec<(u32, u64)>,
        /// Partitions this node holds backup replicas of.
        backups: Vec<(u32, u64)>,
    },
    /// The object's state did not survive the failure (no authoritative
    /// copy and no backup left); operations on it can never succeed.
    ObjectLost,
    /// Per-operation outcomes of a [`ShardMsg::OpBatch`], in batch order.
    Batch(Vec<BatchOutcome>),
}

impl Wire for ShardReply {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            ShardReply::Done(bytes) => {
                enc.put_u8(0);
                enc.put_bytes(bytes);
            }
            ShardReply::Blocked => enc.put_u8(1),
            ShardReply::Route(table) => {
                enc.put_u8(2);
                table.encode(enc);
            }
            ShardReply::StaleRoute => enc.put_u8(3),
            ShardReply::Ack => enc.put_u8(4),
            ShardReply::Error(msg) => {
                enc.put_u8(5);
                msg.encode(enc);
            }
            ShardReply::Owned {
                type_name,
                owned,
                backups,
            } => {
                enc.put_u8(6);
                type_name.encode(enc);
                owned.encode(enc);
                backups.encode(enc);
            }
            ShardReply::ObjectLost => enc.put_u8(7),
            ShardReply::Batch(outcomes) => {
                enc.put_u8(8);
                outcomes.encode(enc);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        match dec.get_u8()? {
            0 => Ok(ShardReply::Done(dec.get_bytes()?)),
            1 => Ok(ShardReply::Blocked),
            2 => Ok(ShardReply::Route(Wire::decode(dec)?)),
            3 => Ok(ShardReply::StaleRoute),
            4 => Ok(ShardReply::Ack),
            5 => Ok(ShardReply::Error(Wire::decode(dec)?)),
            6 => Ok(ShardReply::Owned {
                type_name: Wire::decode(dec)?,
                owned: Wire::decode(dec)?,
                backups: Wire::decode(dec)?,
            }),
            7 => Ok(ShardReply::ObjectLost),
            8 => Ok(ShardReply::Batch(Wire::decode(dec)?)),
            tag => Err(WireError::InvalidTag {
                type_name: "ShardReply",
                tag: u64::from(tag),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard() -> ShardPartId {
        ShardPartId {
            object: (7u64 << 48) | 42,
            partition: 3,
        }
    }

    #[test]
    fn all_requests_round_trip() {
        let msgs = vec![
            ShardMsg::Route { object: 9 },
            ShardMsg::Op {
                shard: shard(),
                op: vec![1, 2, 3],
                trace: TraceId::mint(2, 11),
                stamp: Some(OpStamp { origin: 2, seq: 40 }),
            },
            ShardMsg::Install {
                shard: shard(),
                type_name: "orca.KvTable".into(),
                state: vec![0; 10],
                version: 5,
                dedup: {
                    let mut window = DedupWindow::new();
                    window.record(OpStamp { origin: 1, seq: 7 }, vec![3]);
                    window
                },
            },
            ShardMsg::Migrate {
                shard: shard(),
                dst: 5,
            },
            ShardMsg::HandOff {
                shard: shard(),
                dst: 0,
            },
            ShardMsg::Backup {
                shard: shard(),
                op: vec![4, 5],
                version: 3,
                stamped: Some((OpStamp { origin: 0, seq: 2 }, vec![6])),
            },
            ShardMsg::InstallBackup {
                shard: shard(),
                type_name: "orca.Set".into(),
                state: vec![7; 4],
                version: 12,
                dedup: DedupWindow::new(),
            },
            ShardMsg::PromoteBackup { shard: shard() },
            ShardMsg::ReportOwned { object: 77 },
            ShardMsg::OpBatch {
                ops: vec![BatchOp {
                    id: 5,
                    object: 9,
                    partition: 2,
                    epoch: 0,
                    op: vec![1],
                    trace: TraceId::NONE,
                }],
            },
            ShardMsg::BackupBatch {
                shard: shard(),
                ops: vec![vec![1], vec![2, 3]],
                first_version: 8,
            },
        ];
        for msg in msgs {
            assert_eq!(ShardMsg::from_bytes(&msg.to_bytes()).unwrap(), msg);
        }
    }

    #[test]
    fn all_replies_round_trip() {
        let table = ShardRouteTable {
            object: 4,
            type_name: "orca.Set".into(),
            sharded: true,
            version: 2,
            owners: vec![0, 1, 2, 1],
        };
        assert_eq!(table.partitions(), 4);
        let replies = vec![
            ShardReply::Done(vec![9]),
            ShardReply::Blocked,
            ShardReply::Route(table),
            ShardReply::StaleRoute,
            ShardReply::Ack,
            ShardReply::Error("nope".into()),
            ShardReply::Owned {
                type_name: "orca.KvTable".into(),
                owned: vec![(0, 4), (2, 9)],
                backups: vec![(1, 3)],
            },
            ShardReply::ObjectLost,
            ShardReply::Batch(vec![
                BatchOutcome::Done(vec![2]),
                BatchOutcome::Stale,
                BatchOutcome::Blocked,
            ]),
        ];
        for reply in replies {
            assert_eq!(ShardReply::from_bytes(&reply.to_bytes()).unwrap(), reply);
        }
    }

    #[test]
    fn truncated_messages_are_errors() {
        let bytes = ShardMsg::Op {
            shard: shard(),
            op: vec![1, 2, 3],
            trace: TraceId::NONE,
            stamp: None,
        }
        .to_bytes();
        assert!(ShardMsg::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(ShardReply::from_bytes(&[0xff]).is_err());
    }
}
