//! Regenerates Fig. 2: TSP speedup, 14-city problem, 1..16 processors.
fn main() {
    let series = orca_bench::speedup::tsp_speedup();
    println!("{}", orca_perf::format_speedup_table(&series));
}
