//! Regenerates the §3.1 PB vs BB broadcast-protocol comparison.
fn main() {
    let rows = orca_bench::protocols::pb_vs_bb(16, &[64, 1024, 4096, 16384, 65536], 10);
    println!("{}", orca_bench::protocols::format_table(&rows));
}
