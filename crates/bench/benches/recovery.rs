//! Crash-recovery latency sweep: kill 1 of 4 nodes mid-workload under the
//! sharded RTS and measure time-to-detect, time-to-recover, and operations
//! failed for several heartbeat/suspicion settings. Writes the
//! `BENCH_recovery.json` trajectory file so future changes to the failure
//! detector or the re-homing protocols have a baseline to beat.

use std::time::Duration;

fn main() {
    let settings = [
        (Duration::from_millis(10), 3u32),
        (Duration::from_millis(25), 4),
        (Duration::from_millis(50), 6),
    ];
    let rows = orca_bench::recovery::recovery_sweep(&settings);
    print!("{}", orca_bench::recovery::format_table(&rows));
    let json = orca_bench::recovery::to_json(&rows);
    // Anchor at the workspace root (cargo runs benches from the package
    // directory), so the trajectory file lands next to the README.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_recovery.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("trajectory written to {}", path.display()),
        Err(err) => eprintln!("could not write {}: {err}", path.display()),
    }
}
