//! Regenerates Fig. 3: Arc Consistency Problem speedup, 64 variables.
fn main() {
    let series = orca_bench::speedup::acp_speedup();
    println!("{}", orca_perf::format_speedup_table(&series));
}
