//! Runtime-system comparison driver (§3.2.2) plus the read-lease lane.
//!
//! Prints the invalidation/update/broadcast comparison table and the
//! leased-read phase, and *asserts* the lease contract so CI catches a
//! regression: the read-only phase under leases puts zero messages on the
//! wire, and the modeled read throughput beats the plain primary-copy RPC
//! read path by at least 5x. `--smoke` shrinks the sweep for CI.

fn main() {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    let (nodes, reads_per_node) = if smoke { (3, 300) } else { (4, 3000) };
    let report = orca_bench::rtscompare::leased_read_phase(nodes, reads_per_node);
    println!("{}", orca_bench::rtscompare::format_leased(&report));
    assert_eq!(
        report.leased.messages, 0,
        "leased read-only phase must put nothing on the wire: {report:?}"
    );
    assert!(
        report.leased.lease_local_reads >= ((nodes - 1) * reads_per_node) as u64,
        "every secondary read should be served under its lease: {report:?}"
    );
    assert!(
        report.modeled_read_speedup >= 5.0,
        "leased reads should beat the RPC read path by >= 5x: {report:?}"
    );
    if !smoke {
        let rows = orca_bench::rtscompare::rts_comparison(nodes, 150, &[0.5, 0.9, 0.99]);
        println!("{}", orca_bench::rtscompare::format_table(&rows));
    }
}
