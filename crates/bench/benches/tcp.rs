//! Wall-clock pipelined-write throughput over real loopback sockets.
//!
//! Sweeps pipeline depths {1, 4, 16, 64} on a 4-node loopback
//! `SocketTransport` cluster under the broadcast, primary-copy and sharded
//! runtime systems, prints the wall-clock throughput table, and writes the
//! `BENCH_tcp.json` trajectory file. Unlike the simulated benches these
//! numbers are real time on the build machine, so they vary run to run.
//! Override the shape with `ORCA_BENCH_NODES` / `ORCA_BENCH_OPS_PER_NODE`,
//! or pass `--smoke` for a tiny CI-sized run (the numbers are meaningless,
//! but the socket path and both output formats are exercised).

fn main() {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    let (nodes, ops_per_node, depths): (usize, usize, &[usize]) = if smoke {
        (2, 16, &[1, 4])
    } else {
        (
            orca_bench::env_usize("NODES", 4),
            orca_bench::env_usize("OPS_PER_NODE", 512),
            &[1, 4, 16, 64],
        )
    };
    let rows = orca_bench::tcp::tcp_pipeline_throughput(nodes, ops_per_node, depths);
    print!("{}", orca_bench::tcp::format_table(&rows));
    let json = orca_bench::tcp::to_json(&rows);
    if smoke {
        println!("smoke run: trajectory not written");
        return;
    }
    // Anchor at the workspace root (cargo runs benches from the package
    // directory), so the trajectory file lands next to the README.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_tcp.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("trajectory written to {}", path.display()),
        Err(err) => eprintln!("could not write {}: {err}", path.display()),
    }
}
