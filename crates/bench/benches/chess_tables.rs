//! Regenerates the §4.3 shared-vs-local killer/transposition table comparison.
fn main() {
    println!("# shared vs local search tables");
    println!("tables         nodes_searched  est_seconds");
    for (name, nodes, seconds) in orca_bench::speedup::chess_tables() {
        println!("{name:<14} {nodes:>14}  {seconds:>11.3}");
    }
}
