//! Regenerates the §3.2.2 invalidation vs two-phase update comparison.
fn main() {
    let rows = orca_bench::rtscompare::rts_comparison(4, 150, &[0.5, 0.9, 0.99]);
    println!("{}", orca_bench::rtscompare::format_table(&rows));
}
