//! Adaptive RTS vs every fixed regime on pure and mixed workloads.
//!
//! Runs the read-heavy, write-hot and mixed KvTable/JobQueue workloads on
//! 6 simulated nodes under `broadcast`, `primary_update`, `sharded` and
//! `adaptive`, prints the comparison table, and writes the
//! `BENCH_adaptive.json` trajectory file. Override the shape with
//! `ORCA_BENCH_NODES` / `ORCA_BENCH_OPS_PER_NODE`.

fn main() {
    let nodes = orca_bench::env_usize("NODES", 6);
    let ops_per_node = orca_bench::env_usize("OPS_PER_NODE", 192);
    let rows = orca_bench::adaptive::adaptive_comparison(nodes, ops_per_node);
    print!("{}", orca_bench::adaptive::format_table(&rows));
    let json = orca_bench::adaptive::to_json(&rows);
    // Anchor at the workspace root (cargo runs benches from the package
    // directory), so the trajectory file lands next to the README.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_adaptive.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("trajectory written to {}", path.display()),
        Err(err) => eprintln!("could not write {}: {err}", path.display()),
    }
}
