//! Sharded-RTS write throughput vs partition count (JobQueue workload).
//!
//! Sweeps {1, 2, 4, 8} partitions on 8 simulated nodes, prints the
//! throughput table, and writes the `BENCH_sharded.json` trajectory file so
//! future changes have a baseline to beat. Override the shape with
//! `ORCA_BENCH_NODES` / `ORCA_BENCH_OPS_PER_NODE`.

fn main() {
    let nodes = orca_bench::env_usize("NODES", 8);
    let ops_per_node = orca_bench::env_usize("OPS_PER_NODE", 400);
    let rows = orca_bench::sharded::sharded_throughput(nodes, ops_per_node, &[1, 2, 4, 8]);
    print!("{}", orca_bench::sharded::format_table(&rows));
    let json = orca_bench::sharded::to_json(&rows);
    // Anchor at the workspace root (cargo runs benches from the package
    // directory), so the trajectory file lands next to the README.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_sharded.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("trajectory written to {}", path.display()),
        Err(err) => eprintln!("could not write {}: {err}", path.display()),
    }
}
