//! Regenerates the §4.3 Oracol chess speedup numbers (4.5-5.5 on 10 CPUs in
//! the paper, limited by search overhead).
fn main() {
    let series = orca_bench::speedup::chess_speedup();
    println!("{}", orca_perf::format_speedup_table(&series));
}
