//! Regenerates the §4.4 ATPG speedup comparison (static partitioning vs the
//! shared fault-simulation object).
fn main() {
    let (plain, with_sim, abs_ratio) = orca_bench::speedup::atpg_speedup();
    println!("{}", orca_perf::format_speedup_table(&plain));
    println!("{}", orca_perf::format_speedup_table(&with_sim));
    println!("absolute-time ratio (plain / fault-sim) at 16 procs: {abs_ratio:.2}x");
}
