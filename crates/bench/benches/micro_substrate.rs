//! Criterion micro-benchmarks of the substrate layers: wire codec, local
//! read invocation, broadcast write invocation.

use criterion::{criterion_group, criterion_main, Criterion};
use orca_core::objects::{IntObject, IntOp};
use orca_core::OrcaRuntime;
use orca_wire::Wire;

fn codec(c: &mut Criterion) {
    let value: Vec<u64> = (0..256).collect();
    c.bench_function("wire_encode_vec_u64_256", |b| {
        b.iter(|| std::hint::black_box(&value).to_bytes())
    });
    let bytes = value.to_bytes();
    c.bench_function("wire_decode_vec_u64_256", |b| {
        b.iter(|| Vec::<u64>::from_bytes(std::hint::black_box(&bytes)).unwrap())
    });
}

fn invocation(c: &mut Criterion) {
    let runtime = OrcaRuntime::standard(4);
    let counter = runtime.create::<IntObject>(&0).unwrap();
    let ctx = runtime.main().clone();
    c.bench_function("local_read_invocation", |b| {
        b.iter(|| ctx.invoke(counter, &IntOp::Value).unwrap())
    });
    c.bench_function("broadcast_write_invocation_4_nodes", |b| {
        b.iter(|| ctx.invoke(counter, &IntOp::Add(1)).unwrap())
    });
}

criterion_group!(benches, codec, invocation);
criterion_main!(benches);
