//! Sharded-RTS write-throughput sweep.
//!
//! The point of the sharded runtime system is that writes to *different
//! partitions of the same object* proceed in parallel on different owner
//! nodes, so aggregate write throughput should scale with the partition
//! count. This experiment drives the replicated-worker JobQueue workload —
//! every node concurrently `AddJob`s distinct jobs into one shared queue —
//! and sweeps the partition count; with one partition every write funnels
//! through a single owner (the primary-copy regime), with more partitions
//! the same offered load spreads over more owners.
//!
//! Like every other experiment in this harness, the run uses the real
//! protocol stack and feeds the measured per-node work and communication
//! counts into the calibrated cost model of `orca-perf` (wall-clock time on
//! the build machine is not used — see DESIGN.md §3; in particular a
//! single-core builder cannot exhibit owner-side parallelism that real
//! hardware would). Throughput is `total writes / modeled time of the
//! busiest node`: the bottleneck owner's protocol-handling time is exactly
//! what sharding attacks. Results land in `BENCH_sharded.json` so future
//! changes have a trajectory to compare against.

use std::time::{Duration, Instant};

use orca_amoeba::NodeId;
use orca_core::objects::JobQueue;
use orca_core::{standard_registry, OrcaConfig, OrcaRuntime};
use orca_perf::{CostModel, NodeLoad};

/// Writer processes forked per node, so several requests per node are
/// outstanding at once (as they would be with multiple application
/// processes per processor).
pub const WRITERS_PER_NODE: usize = 4;

/// One point of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedRow {
    /// Partition count of the job queue.
    pub partitions: u32,
    /// Simulated nodes (each runs [`WRITERS_PER_NODE`] writer processes).
    pub nodes: usize,
    /// `AddJob` operations performed per node (split over its writers).
    pub ops_per_node: usize,
    /// Distinct nodes that owned at least one queue partition.
    pub owner_nodes: usize,
    /// Modeled protocol-handling time of the busiest node — the bottleneck
    /// the partition count is supposed to shrink.
    pub bottleneck_seconds: f64,
    /// Modeled aggregate write throughput (`total ops / bottleneck`).
    pub ops_per_sec: f64,
    /// Wall-clock time of the measurement run on the build machine
    /// (reported for orientation only; see the module docs).
    pub elapsed: Duration,
}

/// Run the JobQueue write workload once per partition count.
pub fn sharded_throughput(
    nodes: usize,
    ops_per_node: usize,
    partition_counts: &[u32],
) -> Vec<ShardedRow> {
    partition_counts
        .iter()
        .map(|&partitions| run_one(nodes, ops_per_node, partitions))
        .collect()
}

fn run_one(nodes: usize, ops_per_node: usize, partitions: u32) -> ShardedRow {
    let runtime = OrcaRuntime::start(OrcaConfig::sharded(nodes, partitions), standard_registry());
    let queue: JobQueue<u64> = JobQueue::create(runtime.main()).unwrap();
    let owner_nodes = {
        let owners = runtime
            .shard_owners(queue.handle().id())
            .expect("sharded strategy");
        let distinct: std::collections::BTreeSet<_> = owners.into_iter().collect();
        distinct.len()
    };
    // Warm every node's route cache so the measurement captures steady-state
    // write shipping, not the one-time route fetches.
    let warmup: Vec<_> = (0..nodes)
        .map(|n| {
            runtime.fork_on(n, "warmup", move |ctx| {
                queue.add(&ctx, &u64::MAX).unwrap();
            })
        })
        .collect();
    for handle in warmup {
        handle.join();
    }
    let net_before = runtime.network_stats();
    let rts_before = runtime.rts_stats();

    let ops_per_writer = (ops_per_node / WRITERS_PER_NODE).max(1);
    let started = Instant::now();
    let writers: Vec<_> = (0..nodes * WRITERS_PER_NODE)
        .map(|w| {
            let node = w % nodes;
            runtime.fork_on(node, "writer", move |ctx| {
                // Distinct payloads per writer: jobs hash across partitions.
                let base = (w as u64) << 32;
                for i in 0..ops_per_writer as u64 {
                    queue.add(&ctx, &(base | i)).unwrap();
                }
            })
        })
        .collect();
    for handle in writers {
        handle.join();
    }
    let elapsed = started.elapsed();

    // Feed the measured protocol counts into the calibrated cost model,
    // exactly as the paper-figure experiments do (no application work, so
    // unit cost is zero: we model pure protocol handling).
    let net_delta = runtime.network_stats().since(&net_before);
    let rts_after = runtime.rts_stats();
    let model = CostModel::with_unit_seconds(0.0);
    let loads: Vec<NodeLoad> = (0..nodes)
        .map(|n| {
            let before = rts_before[n];
            let after = rts_after[n];
            let node_net = net_delta.node(NodeId::from(n));
            NodeLoad {
                work_units: 0,
                updates_handled: after.updates_applied - before.updates_applied,
                ops_shipped: (after.broadcast_writes + after.remote_writes)
                    - (before.broadcast_writes + before.remote_writes),
                rpcs: (after.remote_reads + after.remote_writes)
                    - (before.remote_reads + before.remote_writes),
                interrupts: node_net.interrupts,
                wire_bytes: node_net.bytes_sent,
            }
        })
        .collect();
    let bottleneck_seconds = loads
        .iter()
        .map(|load| model.node_time(load))
        .fold(f64::MIN_POSITIVE, f64::max);
    let ops_per_node = ops_per_writer * WRITERS_PER_NODE;
    let total_ops = (nodes * ops_per_node) as f64;
    let row = ShardedRow {
        partitions,
        nodes,
        ops_per_node,
        owner_nodes,
        bottleneck_seconds,
        ops_per_sec: total_ops / bottleneck_seconds,
        elapsed,
    };
    runtime.shutdown();
    row
}

/// Throughput ratio between the runs with `to` and `from` partitions
/// (`None` if either point is missing from the sweep).
pub fn speedup(rows: &[ShardedRow], from: u32, to: u32) -> Option<f64> {
    let base = rows.iter().find(|r| r.partitions == from)?;
    let target = rows.iter().find(|r| r.partitions == to)?;
    Some(target.ops_per_sec / base.ops_per_sec)
}

/// Format the sweep as a text table.
pub fn format_table(rows: &[ShardedRow]) -> String {
    let mut out = String::from("# Sharded RTS: JobQueue write throughput vs partition count\n");
    out.push_str("partitions  owner_nodes  total_ops  bottleneck_ms  ops/sec  wall_ms\n");
    for row in rows {
        out.push_str(&format!(
            "{:>10}  {:>11}  {:>9}  {:>13.1}  {:>7.0}  {:>7.1}\n",
            row.partitions,
            row.owner_nodes,
            row.nodes * row.ops_per_node,
            row.bottleneck_seconds * 1000.0,
            row.ops_per_sec,
            row.elapsed.as_secs_f64() * 1000.0,
        ));
    }
    if let Some(ratio) = speedup(rows, 1, 4) {
        out.push_str(&format!(
            "write-throughput speedup 1 -> 4 partitions: {ratio:.2}x\n"
        ));
    }
    out
}

/// Serialize the sweep as the `BENCH_sharded.json` trajectory record
/// (hand-rolled: the workspace has no JSON dependency).
pub fn to_json(rows: &[ShardedRow]) -> String {
    let mut out = String::from(
        "{\n  \"bench\": \"sharded_throughput\",\n  \"workload\": \"jobqueue_add\",\n  \"results\": [\n",
    );
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"partitions\": {}, \"nodes\": {}, \"ops_per_node\": {}, \"owner_nodes\": {}, \"bottleneck_ms\": {:.3}, \"ops_per_sec\": {:.1}, \"wall_ms\": {:.3}}}{}\n",
            row.partitions,
            row.nodes,
            row.ops_per_node,
            row.owner_nodes,
            row.bottleneck_seconds * 1000.0,
            row.ops_per_sec,
            row.elapsed.as_secs_f64() * 1000.0,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    let ratio = speedup(rows, 1, 4).unwrap_or(0.0);
    out.push_str(&format!("  \"speedup_1_to_4\": {ratio:.3}\n}}\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_runs_and_serializes() {
        // Small configuration: correctness of the harness, not performance.
        let rows = sharded_throughput(2, 16, &[1, 2]);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.ops_per_sec > 0.0));
        assert!(rows.iter().all(|r| r.bottleneck_seconds > 0.0));
        assert_eq!(rows[0].owner_nodes, 1);
        let json = to_json(&rows);
        assert!(json.contains("\"bench\": \"sharded_throughput\""));
        assert!(json.contains("\"partitions\": 2"));
        assert!(json.contains("speedup_1_to_4"));
        let table = format_table(&rows);
        assert!(table.contains("partitions"));
        assert!(speedup(&rows, 1, 4).is_none());
    }

    #[test]
    fn partitioning_shrinks_the_bottleneck_owner() {
        // The core claim, at small scale: the modeled bottleneck time with
        // four partitions is below the single-owner bottleneck.
        let rows = sharded_throughput(4, 32, &[1, 4]);
        assert!(
            rows[1].bottleneck_seconds < rows[0].bottleneck_seconds,
            "4 partitions {:?} must beat 1 partition {:?}",
            rows[1],
            rows[0]
        );
    }
}
