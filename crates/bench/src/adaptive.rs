//! Adaptive-RTS comparison: per-object regimes vs every fixed regime.
//!
//! A process-wide runtime-system choice is a compromise as soon as one run
//! holds objects with different access mixes: full replication makes the
//! read-heavy table fast but every node pays for the write-hot queue's
//! updates; sharding spreads the queue's writes but turns the table's
//! reads into RPCs. The adaptive runtime system picks (and changes) each
//! object's regime from its observed read/write mix, so on a mixed
//! workload it should match whichever fixed regime is best *per object* —
//! beating every fixed regime overall — while staying within a few percent
//! of the best fixed regime on pure workloads (its only extra cost there
//! is usage reporting).
//!
//! This experiment drives three workloads over one shared KvTable and one
//! shared JobQueue on every strategy:
//!
//! * `read_heavy` — table gets only;
//! * `write_hot`  — queue adds only;
//! * `mixed`      — both, interleaved per node.
//!
//! Each run warms up with a quarter-volume pass (fixed regimes warm their
//! caches and replication policies; the adaptive system accumulates usage
//! evidence and is then proposed to its converged regimes), and the
//! steady-state pass is measured. Like every other experiment in this
//! harness, the run uses the real protocol stack and feeds the measured
//! per-node work and communication counts into the calibrated cost model
//! of `orca-perf` (wall-clock time on the single-core build machine is
//! not used — see DESIGN.md §3). Results land in `BENCH_adaptive.json`.

use std::time::{Duration, Instant};

use orca_amoeba::NodeId;
use orca_core::objects::{JobQueue, KvTable, TableEntry};
use orca_core::{standard_registry, OrcaConfig, OrcaRuntime, RtsStrategy};
use orca_perf::{CostModel, NodeLoad};
use orca_rts::{AdaptivePolicy, RegimeKind};

/// Distinct keys the shared table holds.
pub const TABLE_KEYS: u64 = 16;

/// Which synthetic workload a run drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Table gets only.
    ReadHeavy,
    /// Queue adds only.
    WriteHot,
    /// Both, interleaved on every node.
    Mixed,
}

impl Workload {
    /// Name used in tables and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Workload::ReadHeavy => "read_heavy",
            Workload::WriteHot => "write_hot",
            Workload::Mixed => "mixed",
        }
    }

    /// All three workloads.
    pub fn all() -> [Workload; 3] {
        [Workload::ReadHeavy, Workload::WriteHot, Workload::Mixed]
    }
}

/// One (workload, strategy) measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveRow {
    /// Workload name.
    pub workload: &'static str,
    /// Strategy name (RtsKind name).
    pub strategy: &'static str,
    /// Simulated nodes.
    pub nodes: usize,
    /// Operations performed per node in the measured pass.
    pub ops_per_node: usize,
    /// Regime serving the table after convergence (adaptive only).
    pub table_regime: &'static str,
    /// Regime serving the queue after convergence (adaptive only).
    pub queue_regime: &'static str,
    /// Modeled time of the busiest node for the measured pass.
    pub bottleneck_seconds: f64,
    /// Modeled aggregate throughput (`total ops / bottleneck`).
    pub ops_per_sec: f64,
    /// Wall-clock time of the measured pass on the build machine
    /// (orientation only).
    pub elapsed: Duration,
}

/// The strategies the comparison sweeps: every fixed regime plus adaptive.
pub fn strategies() -> Vec<(&'static str, RtsStrategy)> {
    vec![
        ("broadcast", RtsStrategy::broadcast()),
        ("update", RtsStrategy::primary_update()),
        ("sharded", RtsStrategy::sharded(4)),
        (
            "adaptive",
            RtsStrategy::Adaptive {
                policy: bench_policy(),
            },
        ),
    ]
}

/// Adaptation knobs used by the benchmark: frequent enough reporting to
/// converge inside the warmup pass, infrequent enough that reports stay a
/// rounding error next to the operations themselves.
pub fn bench_policy() -> AdaptivePolicy {
    AdaptivePolicy {
        report_every: 48,
        evaluate_every: 96,
        min_accesses: 24,
        ..AdaptivePolicy::default()
    }
}

fn regime_name(regime: Option<RegimeKind>) -> &'static str {
    regime.map_or("-", RegimeKind::name)
}

/// Run every workload under every strategy.
pub fn adaptive_comparison(nodes: usize, ops_per_node: usize) -> Vec<AdaptiveRow> {
    let mut rows = Vec::new();
    for workload in Workload::all() {
        for (name, strategy) in strategies() {
            rows.push(run_one(
                nodes,
                ops_per_node,
                workload,
                name,
                strategy.clone(),
            ));
        }
    }
    rows
}

/// Drive `volume` operations per node of `workload` against the two
/// shared objects, one forked worker per node.
fn drive(
    runtime: &OrcaRuntime,
    table: KvTable,
    queue: JobQueue<u64>,
    workload: Workload,
    nodes: usize,
    volume: usize,
    tag: u64,
) {
    let workers: Vec<_> = (0..nodes)
        .map(|n| {
            runtime.fork_on(n, "load", move |ctx| {
                let base = (tag << 32) | ((n as u64) << 24);
                match workload {
                    Workload::ReadHeavy => {
                        for i in 0..volume as u64 {
                            table.get(&ctx, i % TABLE_KEYS).unwrap();
                        }
                    }
                    Workload::WriteHot => {
                        for i in 0..volume as u64 {
                            queue.add(&ctx, &(base | i)).unwrap();
                        }
                    }
                    Workload::Mixed => {
                        // Same total volume, 3:1 table gets to queue adds,
                        // so the table stays read-dominated while the
                        // queue is pure writes.
                        for i in 0..volume as u64 {
                            if i % 4 == 3 {
                                queue.add(&ctx, &(base | i)).unwrap();
                            } else {
                                table.get(&ctx, i % TABLE_KEYS).unwrap();
                            }
                        }
                    }
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join();
    }
}

fn run_one(
    nodes: usize,
    ops_per_node: usize,
    workload: Workload,
    strategy_name: &'static str,
    strategy: RtsStrategy,
) -> AdaptiveRow {
    let config = OrcaConfig {
        strategy,
        ..OrcaConfig::broadcast(nodes)
    };
    let runtime = OrcaRuntime::start(config, standard_registry());
    let main = runtime.main();
    let table = KvTable::create(main).unwrap();
    let queue: JobQueue<u64> = JobQueue::create(main).unwrap();
    for key in 0..TABLE_KEYS {
        let entry = TableEntry {
            depth: 0,
            value: key as i64,
            aux: 0,
        };
        table.put(main, key, entry).unwrap();
    }

    // Warmup: a quarter-volume pass. Fixed regimes warm route caches and
    // the dynamic replication policy; the adaptive system accumulates the
    // usage evidence its regime decisions need.
    drive(
        &runtime,
        table,
        queue,
        workload,
        nodes,
        (ops_per_node / 4).max(1),
        0,
    );
    // Settle the adaptive regimes before measuring (no-op on fixed
    // strategies).
    runtime.propose_regime(table.handle().id());
    runtime.propose_regime(queue.handle().id());
    let table_regime = regime_name(runtime.object_regime(table.handle().id()));
    let queue_regime = regime_name(runtime.object_regime(queue.handle().id()));

    let net_before = runtime.network_stats();
    let rts_before = runtime.rts_stats();
    let started = Instant::now();
    drive(&runtime, table, queue, workload, nodes, ops_per_node, 1);
    let elapsed = started.elapsed();

    let net_delta = runtime.network_stats().since(&net_before);
    let rts_after = runtime.rts_stats();
    let model = CostModel::default();
    let loads: Vec<NodeLoad> = (0..nodes)
        .map(|n| {
            let before = rts_before[n];
            let after = rts_after[n];
            let node_net = net_delta.node(NodeId::from(n));
            NodeLoad {
                // Every invocation costs one application work unit, so
                // purely local regimes still accumulate modeled time.
                work_units: after.total_invocations() - before.total_invocations(),
                updates_handled: after.updates_applied - before.updates_applied,
                ops_shipped: (after.broadcast_writes + after.remote_writes)
                    - (before.broadcast_writes + before.remote_writes),
                rpcs: (after.remote_reads + after.remote_writes + after.copies_fetched)
                    - (before.remote_reads + before.remote_writes + before.copies_fetched),
                interrupts: node_net.interrupts,
                wire_bytes: node_net.bytes_sent,
            }
        })
        .collect();
    let bottleneck_seconds = loads
        .iter()
        .map(|load| model.node_time(load))
        .fold(f64::MIN_POSITIVE, f64::max);
    let total_ops = (nodes * ops_per_node) as f64;
    let row = AdaptiveRow {
        workload: workload.name(),
        strategy: strategy_name,
        nodes,
        ops_per_node,
        table_regime,
        queue_regime,
        bottleneck_seconds,
        ops_per_sec: total_ops / bottleneck_seconds,
        elapsed,
    };
    runtime.shutdown();
    row
}

/// Throughput of `strategy` on `workload` within a sweep.
pub fn throughput_of(rows: &[AdaptiveRow], workload: &str, strategy: &str) -> Option<f64> {
    rows.iter()
        .find(|r| r.workload == workload && r.strategy == strategy)
        .map(|r| r.ops_per_sec)
}

/// Best fixed-regime throughput on `workload` (everything except adaptive).
pub fn best_fixed(rows: &[AdaptiveRow], workload: &str) -> Option<f64> {
    rows.iter()
        .filter(|r| r.workload == workload && r.strategy != "adaptive")
        .map(|r| r.ops_per_sec)
        .fold(None, |best, t| Some(best.map_or(t, |b: f64| b.max(t))))
}

/// `adaptive / best fixed` throughput ratio on `workload`.
pub fn adaptive_ratio(rows: &[AdaptiveRow], workload: &str) -> Option<f64> {
    Some(throughput_of(rows, workload, "adaptive")? / best_fixed(rows, workload)?)
}

/// Format the sweep as a text table.
pub fn format_table(rows: &[AdaptiveRow]) -> String {
    let mut out =
        String::from("# Adaptive RTS vs fixed regimes (KvTable reads + JobQueue writes)\n");
    out.push_str(
        "workload    strategy   table_rg    queue_rg    bottleneck_ms  ops/sec  wall_ms\n",
    );
    for row in rows {
        out.push_str(&format!(
            "{:<10}  {:<9}  {:<10}  {:<10}  {:>13.1}  {:>7.0}  {:>7.1}\n",
            row.workload,
            row.strategy,
            row.table_regime,
            row.queue_regime,
            row.bottleneck_seconds * 1000.0,
            row.ops_per_sec,
            row.elapsed.as_secs_f64() * 1000.0,
        ));
    }
    for workload in Workload::all() {
        if let Some(ratio) = adaptive_ratio(rows, workload.name()) {
            out.push_str(&format!(
                "adaptive vs best fixed on {}: {ratio:.2}x\n",
                workload.name()
            ));
        }
    }
    out
}

/// Serialize the sweep as the `BENCH_adaptive.json` trajectory record
/// (hand-rolled: the workspace has no JSON dependency).
pub fn to_json(rows: &[AdaptiveRow]) -> String {
    let mut out = String::from(
        "{\n  \"bench\": \"adaptive_mixed\",\n  \"workloads\": [\"read_heavy\", \"write_hot\", \"mixed\"],\n  \"results\": [\n",
    );
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"strategy\": \"{}\", \"nodes\": {}, \"ops_per_node\": {}, \"table_regime\": \"{}\", \"queue_regime\": \"{}\", \"bottleneck_ms\": {:.3}, \"ops_per_sec\": {:.1}, \"wall_ms\": {:.3}}}{}\n",
            row.workload,
            row.strategy,
            row.nodes,
            row.ops_per_node,
            row.table_regime,
            row.queue_regime,
            row.bottleneck_seconds * 1000.0,
            row.ops_per_sec,
            row.elapsed.as_secs_f64() * 1000.0,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"adaptive_vs_best_fixed\": {\n");
    let mut ratios = Vec::new();
    for workload in Workload::all() {
        let ratio = adaptive_ratio(rows, workload.name()).unwrap_or(0.0);
        ratios.push(format!("    \"{}\": {ratio:.3}", workload.name()));
    }
    out.push_str(&ratios.join(",\n"));
    out.push_str("\n  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_serializes() {
        // Small configuration: correctness of the harness, not performance.
        let rows = adaptive_comparison(2, 32);
        assert_eq!(rows.len(), 12);
        assert!(rows.iter().all(|r| r.ops_per_sec > 0.0));
        assert!(rows.iter().all(|r| r.bottleneck_seconds > 0.0));
        // Fixed strategies report no regimes; adaptive reports both.
        assert!(rows
            .iter()
            .filter(|r| r.strategy != "adaptive")
            .all(|r| r.table_regime == "-" && r.queue_regime == "-"));
        assert!(rows
            .iter()
            .filter(|r| r.strategy == "adaptive")
            .all(|r| r.table_regime != "-" && r.queue_regime != "-"));
        let json = to_json(&rows);
        assert!(json.contains("\"bench\": \"adaptive_mixed\""));
        assert!(json.contains("\"adaptive_vs_best_fixed\""));
        let table = format_table(&rows);
        assert!(table.contains("adaptive vs best fixed on mixed"));
    }

    #[test]
    fn adaptive_converges_per_object_on_the_mixed_workload() {
        // The whole point: one run, two objects, two different regimes.
        let row = run_one(
            4,
            128,
            Workload::Mixed,
            "adaptive",
            RtsStrategy::Adaptive {
                policy: bench_policy(),
            },
        );
        assert_eq!(row.table_regime, "replicated", "{row:?}");
        assert_eq!(row.queue_regime, "sharded", "{row:?}");
    }

    #[test]
    fn adaptive_beats_every_fixed_regime_on_the_mixed_workload() {
        // Small scale, generous margin: the committed BENCH_adaptive.json
        // documents the full-size numbers.
        let rows: Vec<AdaptiveRow> = strategies()
            .into_iter()
            .map(|(name, strategy)| run_one(4, 128, Workload::Mixed, name, strategy))
            .collect();
        let adaptive = throughput_of(&rows, "mixed", "adaptive").unwrap();
        for row in rows.iter().filter(|r| r.strategy != "adaptive") {
            assert!(
                adaptive > row.ops_per_sec * 1.1,
                "adaptive ({adaptive:.0} ops/s) must beat {} ({:.0} ops/s)",
                row.strategy,
                row.ops_per_sec
            );
        }
    }

    #[test]
    fn adaptive_stays_competitive_on_pure_workloads() {
        for workload in [Workload::ReadHeavy, Workload::WriteHot] {
            let rows: Vec<AdaptiveRow> = strategies()
                .into_iter()
                .map(|(name, strategy)| run_one(4, 128, workload, name, strategy))
                .collect();
            let ratio = adaptive_ratio(&rows, workload.name()).unwrap();
            assert!(
                ratio >= 0.8,
                "adaptive fell behind on {}: {ratio:.2}x of best fixed ({rows:?})",
                workload.name()
            );
        }
    }
}
