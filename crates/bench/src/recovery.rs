//! Crash-recovery latency: time-to-detect, time-to-recover, and operations
//! failed, as a function of the heartbeat/suspicion settings.
//!
//! Unlike the throughput experiments — which feed measured work counts into
//! the calibrated cost model because wall-clock time on a single-core build
//! machine misrepresents parallel protocol handling — recovery latency *is*
//! a wall-clock quantity: it is dominated by the configured heartbeat
//! silence limit, not by CPU contention, so the run measures it directly.
//!
//! The scenario mirrors the crash conformance suite: a sharded table is
//! created on the node that will be killed (so its death orphans both the
//! routing table and the partitions it owned), survivors hammer writes, the
//! node is killed mid-stream, and the run records how long the membership
//! takes to converge, how long until a write against a previously
//! dead-owned partition succeeds again, and how many operations failed in
//! between. Results land in `BENCH_recovery.json`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use orca_amoeba::NodeId;
use orca_core::objects::{KvTable, TableEntry};
use orca_core::{standard_registry, OrcaConfig, OrcaRuntime, RecoveryConfig, RtsStrategy};

/// One point of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryRow {
    /// Heartbeat interval.
    pub heartbeat: Duration,
    /// Silent heartbeat intervals before a node is declared dead.
    pub suspect_after: u32,
    /// Kill → membership epoch bump (failure detected everywhere needed).
    pub detect: Duration,
    /// Kill → first acknowledged write against state the dead node owned.
    pub recover: Duration,
    /// Invocations that failed during the outage window (survivor-side).
    pub ops_failed: u64,
    /// Invocations acknowledged over the whole run (survivor-side).
    pub ops_ok: u64,
    /// Recovery phase timeline, recorded by the flight recorder's
    /// coordinator instrumentation: report-collection phase duration
    /// (`rts.recovery.coordinate_ns`, detect → reports in hand).
    pub coordinate_ns: u64,
    /// Promotion/publication phase duration (`rts.recovery.rehome_ns`,
    /// reports in hand → new owners published).
    pub rehome_ns: u64,
    /// Recorded synchronous invocation latency percentiles over the whole
    /// run (`rts.invoke.sync_ns`) — the outage shows up in the tail.
    pub invoke_p50_ns: u64,
    /// Synchronous invocation p99 (ns).
    pub invoke_p99_ns: u64,
    /// Synchronous invocation p99.9 (ns).
    pub invoke_p999_ns: u64,
}

/// Simulated nodes (node `nodes - 1` is killed).
pub const NODES: usize = 4;

/// Run the kill-mid-workload scenario once per heartbeat setting.
pub fn recovery_sweep(settings: &[(Duration, u32)]) -> Vec<RecoveryRow> {
    settings
        .iter()
        .map(|&(heartbeat, suspect_after)| run_once(heartbeat, suspect_after))
        .collect()
}

fn run_once(heartbeat: Duration, suspect_after: u32) -> RecoveryRow {
    let killed = NodeId((NODES - 1) as u16);
    let config = OrcaConfig {
        strategy: RtsStrategy::sharded(NODES as u32),
        recovery: RecoveryConfig {
            heartbeat_every: heartbeat,
            suspect_after,
            attempt_timeout: Duration::from_millis(100),
            rehome_wait: Duration::from_secs(10),
            ..RecoveryConfig::enabled()
        },
        ..OrcaConfig::broadcast(NODES)
    };
    let runtime = OrcaRuntime::start(config, standard_registry());
    let table = KvTable::create(runtime.context(killed.index())).unwrap();
    let entry = TableEntry {
        depth: 0,
        value: 1,
        aux: 0,
    };
    // Background writers on the survivors keep offered load on the table
    // throughout the outage, counting successes and failures.
    let ok = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicU64::new(0));
    let writers: Vec<_> = (0..NODES - 1)
        .map(|w| {
            let ok = Arc::clone(&ok);
            let failed = Arc::clone(&failed);
            let stop = Arc::clone(&stop);
            runtime.fork_on(w, "load", move |ctx| {
                let mut i = 0u64;
                while stop.load(Ordering::Relaxed) == 0 {
                    let key = (w as u64) * 1_000_000 + i;
                    i += 1;
                    match table.put(&ctx, key, entry) {
                        Ok(_) => ok.fetch_add(1, Ordering::Relaxed),
                        Err(_) => failed.fetch_add(1, Ordering::Relaxed),
                    };
                    std::thread::sleep(Duration::from_millis(1));
                }
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(50));

    let kill_at = Instant::now();
    runtime.kill_node(killed);
    // Detection: the surviving membership view bumps its epoch.
    while runtime.membership_view().map(|v| v.epoch).unwrap_or(0) < 1 {
        std::thread::sleep(Duration::from_millis(1));
    }
    let detect = kill_at.elapsed();
    // Recovery: a write whose key hashes to a partition the dead node
    // owned succeeds again (the probe retries until the promoted backup
    // serves it). Any key works as a probe target for "the table is fully
    // writable again": the adopted home only answers once every partition
    // has a live owner.
    let probe_ctx = runtime.context(0);
    let recover = loop {
        if table.put(probe_ctx, 42_000_042, entry).is_ok() {
            break kill_at.elapsed();
        }
        std::thread::sleep(Duration::from_millis(1));
    };
    // A short post-recovery tail keeps the ok-counter honest.
    std::thread::sleep(Duration::from_millis(50));
    stop.store(1, Ordering::Relaxed);
    for writer in writers {
        writer.join();
    }
    // The recovery phase split and the run's recorded invoke latencies,
    // straight from the telemetry histograms (one recovery per run, so
    // the histogram max is that recovery's duration).
    let telemetry = runtime.telemetry().registry().snapshot();
    let hist_max = |name: &str| telemetry.hists.get(name).map_or(0, |h| h.max);
    let invoke = telemetry.hists.get("rts.invoke.sync_ns").cloned();
    let row = RecoveryRow {
        heartbeat,
        suspect_after,
        detect,
        recover,
        ops_failed: failed.load(Ordering::Relaxed),
        ops_ok: ok.load(Ordering::Relaxed),
        coordinate_ns: hist_max("rts.recovery.coordinate_ns"),
        rehome_ns: hist_max("rts.recovery.rehome_ns"),
        invoke_p50_ns: invoke.as_ref().map_or(0, |h| h.p50()),
        invoke_p99_ns: invoke.as_ref().map_or(0, |h| h.p99()),
        invoke_p999_ns: invoke.as_ref().map_or(0, |h| h.p999()),
    };
    runtime.shutdown();
    row
}

/// Human-readable table.
pub fn format_table(rows: &[RecoveryRow]) -> String {
    let mut out = String::new();
    out.push_str("crash recovery: kill 1 of 4 nodes mid-workload (sharded RTS)\n");
    out.push_str(
        "heartbeat  suspect  detect(ms)  coordinate(ms)  rehome(ms)  recover(ms)  \
         ops-failed  ops-ok  put_p50(us)  put_p99(us)\n",
    );
    for row in rows {
        out.push_str(&format!(
            "{:>8.0?}  {:>7}  {:>10.1}  {:>14.2}  {:>10.2}  {:>11.1}  {:>10}  {:>6}  {:>11.1}  {:>11.1}\n",
            row.heartbeat,
            row.suspect_after,
            row.detect.as_secs_f64() * 1e3,
            row.coordinate_ns as f64 / 1e6,
            row.rehome_ns as f64 / 1e6,
            row.recover.as_secs_f64() * 1e3,
            row.ops_failed,
            row.ops_ok,
            row.invoke_p50_ns as f64 / 1e3,
            row.invoke_p99_ns as f64 / 1e3,
        ));
    }
    out
}

/// JSON trajectory record for `BENCH_recovery.json`.
pub fn to_json(rows: &[RecoveryRow]) -> String {
    let mut out = String::from("{\n  \"bench\": \"recovery\",\n  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"heartbeat_ms\": {:.1}, \"suspect_after\": {}, \"detect_ms\": {:.2}, \"coordinate_ms\": {:.3}, \"rehome_ms\": {:.3}, \"recover_ms\": {:.2}, \"ops_failed\": {}, \"ops_ok\": {}, \"invoke_p50_ns\": {}, \"invoke_p99_ns\": {}, \"invoke_p999_ns\": {}}}{}\n",
            row.heartbeat.as_secs_f64() * 1e3,
            row.suspect_after,
            row.detect.as_secs_f64() * 1e3,
            row.coordinate_ns as f64 / 1e6,
            row.rehome_ns as f64 / 1e6,
            row.recover.as_secs_f64() * 1e3,
            row.ops_failed,
            row.ops_ok,
            row.invoke_p50_ns,
            row.invoke_p99_ns,
            row.invoke_p999_ns,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_point_recovers_and_reports() {
        let rows = recovery_sweep(&[(Duration::from_millis(20), 4)]);
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert!(row.detect >= Duration::from_millis(20));
        assert!(row.recover >= row.detect);
        assert!(row.ops_ok > 0);
        // The killed node owned state, so the run's single recovery must
        // have gone through both coordinator phases, and the recorded
        // invocation histogram saw the survivors' writes.
        assert!(
            row.coordinate_ns > 0,
            "coordinate phase unrecorded: {row:?}"
        );
        assert!(row.rehome_ns > 0, "rehome phase unrecorded: {row:?}");
        assert!(row.invoke_p50_ns > 0);
        assert!(row.invoke_p99_ns >= row.invoke_p50_ns);
        let json = to_json(&rows);
        assert!(json.contains("\"recover_ms\""));
        assert!(json.contains("\"coordinate_ms\""));
        assert!(json.contains("\"invoke_p999_ns\""));
        assert!(format_table(&rows).contains("ops-failed"));
    }
}
