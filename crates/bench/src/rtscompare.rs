//! Invalidation vs two-phase update vs broadcast runtime systems (§3.2.2).
//!
//! "Comparisons of update and invalidation did not show a clear winner.
//! Which one is better depends on the problem being solved." This experiment
//! sweeps the read/write ratio of a synthetic shared-object workload and
//! reports, for each runtime system, the communication it generated and the
//! estimated time per operation on the paper's hardware.

use orca_amoeba::NodeId;
use orca_core::objects::{IntObject, IntOp};
use orca_core::{OrcaConfig, OrcaRuntime, RtsStrategy};
use orca_perf::{CostModel, NodeLoad};
use orca_rts::{ReplicationPolicy, RtsKind, WritePolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One row of the comparison table.
#[derive(Debug, Clone, PartialEq)]
pub struct RtsRow {
    /// Runtime-system kind.
    pub rts: RtsKind,
    /// Fraction of operations that are reads.
    pub read_fraction: f64,
    /// Messages on the wire per operation.
    pub messages_per_op: f64,
    /// Wire bytes per operation.
    pub bytes_per_op: f64,
    /// Estimated milliseconds per operation on the paper's hardware.
    pub est_ms_per_op: f64,
    /// Copies fetched / dropped by the dynamic replication policy.
    pub copies_fetched: u64,
}

/// Run the synthetic workload: `nodes` nodes each perform `ops_per_node`
/// operations on one shared integer, a `read_fraction` of which are reads.
pub fn rts_comparison(nodes: usize, ops_per_node: usize, read_fractions: &[f64]) -> Vec<RtsRow> {
    let mut rows = Vec::new();
    for &read_fraction in read_fractions {
        for strategy in [
            RtsStrategy::broadcast(),
            RtsStrategy::PrimaryCopy {
                policy: WritePolicy::Invalidate,
                replication: ReplicationPolicy::default(),
            },
            RtsStrategy::PrimaryCopy {
                policy: WritePolicy::Update,
                replication: ReplicationPolicy::default(),
            },
        ] {
            rows.push(run_one(nodes, ops_per_node, read_fraction, strategy));
        }
    }
    rows
}

fn run_one(nodes: usize, ops_per_node: usize, read_fraction: f64, strategy: RtsStrategy) -> RtsRow {
    let kind = strategy.kind();
    let config = OrcaConfig {
        strategy,
        ..OrcaConfig::broadcast(nodes)
    };
    let runtime = OrcaRuntime::start(config, orca_core::standard_registry());
    let counter = runtime.create::<IntObject>(&0).expect("create counter");
    let before = runtime.network_stats();
    let mut handles = Vec::new();
    for node in 0..nodes {
        let handle = counter;
        handles.push(runtime.fork_on(node, "load", move |ctx| {
            let mut rng = StdRng::seed_from_u64(node as u64 + 1);
            for _ in 0..ops_per_node {
                if rng.gen_bool(read_fraction) {
                    ctx.invoke(handle, &IntOp::Value).expect("read");
                } else {
                    ctx.invoke(handle, &IntOp::Add(1)).expect("write");
                }
            }
        }));
    }
    for handle in handles {
        handle.join();
    }
    let delta = runtime.network_stats().since(&before);
    let rts_stats = runtime.rts_stats();
    let total_ops = (nodes * ops_per_node) as f64;
    // Per-op estimated time on the paper's hardware: average node time over
    // the run divided by the operations one node performed.
    let model = CostModel::with_unit_seconds(0.0);
    let loads: Vec<NodeLoad> = (0..nodes)
        .map(|n| {
            let stats = rts_stats[n];
            NodeLoad {
                work_units: 0,
                updates_handled: stats.updates_applied,
                ops_shipped: stats.broadcast_writes + stats.remote_writes,
                rpcs: stats.remote_reads + stats.remote_writes + stats.copies_fetched,
                interrupts: delta.node(NodeId::from(n)).interrupts,
                wire_bytes: delta.node(NodeId::from(n)).bytes_sent,
            }
        })
        .collect();
    let total_comm_seconds: f64 = loads.iter().map(|l| model.node_time(l)).sum();
    let copies_fetched = rts_stats.iter().map(|s| s.copies_fetched).sum();
    runtime.shutdown();
    RtsRow {
        rts: kind,
        read_fraction,
        messages_per_op: delta.total_messages() as f64 / total_ops,
        bytes_per_op: delta.total_wire_bytes() as f64 / total_ops,
        est_ms_per_op: total_comm_seconds * 1000.0 / total_ops,
        copies_fetched,
    }
}

/// Format the comparison as a text table.
pub fn format_table(rows: &[RtsRow]) -> String {
    let mut out = String::from("# §3.2.2: invalidation vs two-phase update vs broadcast RTS\n");
    out.push_str("rts         read%   msgs/op  bytes/op  est_ms/op  copies_fetched\n");
    for row in rows {
        out.push_str(&format!(
            "{:<11} {:>5.0}  {:>8.2}  {:>8.0}  {:>9.3}  {:>14}\n",
            row.rts.name(),
            row.read_fraction * 100.0,
            row.messages_per_op,
            row.bytes_per_op,
            row.est_ms_per_op,
            row.copies_fetched
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_heavy_workloads_favour_replication() {
        let rows = rts_comparison(3, 60, &[0.95]);
        let broadcast = rows.iter().find(|r| r.rts == RtsKind::Broadcast).unwrap();
        let update = rows
            .iter()
            .find(|r| r.rts == RtsKind::PrimaryUpdate)
            .unwrap();
        let invalidate = rows
            .iter()
            .find(|r| r.rts == RtsKind::PrimaryInvalidate)
            .unwrap();
        // With 95% reads the broadcast RTS does almost all its work locally.
        assert!(broadcast.messages_per_op < 1.0);
        // The primary-copy systems need messages for the remote accesses of
        // the two non-primary nodes, but still fewer than one RPC per op once
        // copies have been fetched.
        assert!(update.messages_per_op > broadcast.messages_per_op);
        assert!(invalidate.messages_per_op > 0.0);
    }

    #[test]
    fn write_heavy_workloads_penalize_full_replication() {
        let rows = rts_comparison(3, 40, &[0.2]);
        let broadcast = rows.iter().find(|r| r.rts == RtsKind::Broadcast).unwrap();
        // Every write is a broadcast that every node must process.
        assert!(broadcast.messages_per_op > 0.5);
    }
}
