//! Invalidation vs two-phase update vs broadcast runtime systems (§3.2.2).
//!
//! "Comparisons of update and invalidation did not show a clear winner.
//! Which one is better depends on the problem being solved." This experiment
//! sweeps the read/write ratio of a synthetic shared-object workload and
//! reports, for each runtime system, the communication it generated and the
//! estimated time per operation on the paper's hardware.
//!
//! [`leased_read_phase`] additionally compares the read-lease path against
//! the plain primary-copy read path on a read-only phase: leased
//! secondaries serve linearizable reads from local copies with zero
//! messages (telemetry-verified), so read throughput is limited only by
//! local apply cost, while the unreplicated baseline pays one modeled RPC
//! round trip per non-primary read.

use std::time::Instant;

use orca_amoeba::NodeId;
use orca_core::objects::{IntObject, IntOp};
use orca_core::{OrcaConfig, OrcaRuntime, RtsStrategy};
use orca_perf::{CostModel, NodeLoad};
use orca_rts::{ReplicationPolicy, RtsKind, WritePolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One row of the comparison table.
#[derive(Debug, Clone, PartialEq)]
pub struct RtsRow {
    /// Runtime-system kind.
    pub rts: RtsKind,
    /// Fraction of operations that are reads.
    pub read_fraction: f64,
    /// Messages on the wire per operation.
    pub messages_per_op: f64,
    /// Wire bytes per operation.
    pub bytes_per_op: f64,
    /// Estimated milliseconds per operation on the paper's hardware.
    pub est_ms_per_op: f64,
    /// Copies fetched / dropped by the dynamic replication policy.
    pub copies_fetched: u64,
}

/// Run the synthetic workload: `nodes` nodes each perform `ops_per_node`
/// operations on one shared integer, a `read_fraction` of which are reads.
pub fn rts_comparison(nodes: usize, ops_per_node: usize, read_fractions: &[f64]) -> Vec<RtsRow> {
    let mut rows = Vec::new();
    for &read_fraction in read_fractions {
        for strategy in [
            RtsStrategy::broadcast(),
            RtsStrategy::PrimaryCopy {
                policy: WritePolicy::Invalidate,
                replication: ReplicationPolicy::default(),
            },
            RtsStrategy::PrimaryCopy {
                policy: WritePolicy::Update,
                replication: ReplicationPolicy::default(),
            },
        ] {
            rows.push(run_one(nodes, ops_per_node, read_fraction, strategy));
        }
    }
    rows
}

fn run_one(nodes: usize, ops_per_node: usize, read_fraction: f64, strategy: RtsStrategy) -> RtsRow {
    let kind = strategy.kind();
    let config = OrcaConfig {
        strategy,
        ..OrcaConfig::broadcast(nodes)
    };
    let runtime = OrcaRuntime::start(config, orca_core::standard_registry());
    let counter = runtime.create::<IntObject>(&0).expect("create counter");
    let before = runtime.network_stats();
    let mut handles = Vec::new();
    for node in 0..nodes {
        let handle = counter;
        handles.push(runtime.fork_on(node, "load", move |ctx| {
            let mut rng = StdRng::seed_from_u64(node as u64 + 1);
            for _ in 0..ops_per_node {
                if rng.gen_bool(read_fraction) {
                    ctx.invoke(handle, &IntOp::Value).expect("read");
                } else {
                    ctx.invoke(handle, &IntOp::Add(1)).expect("write");
                }
            }
        }));
    }
    for handle in handles {
        handle.join();
    }
    let delta = runtime.network_stats().since(&before);
    let rts_stats = runtime.rts_stats();
    let total_ops = (nodes * ops_per_node) as f64;
    // Per-op estimated time on the paper's hardware: average node time over
    // the run divided by the operations one node performed.
    let model = CostModel::with_unit_seconds(0.0);
    let loads: Vec<NodeLoad> = (0..nodes)
        .map(|n| {
            let stats = rts_stats[n];
            NodeLoad {
                work_units: 0,
                updates_handled: stats.updates_applied,
                ops_shipped: stats.broadcast_writes + stats.remote_writes,
                rpcs: stats.remote_reads + stats.remote_writes + stats.copies_fetched,
                interrupts: delta.node(NodeId::from(n)).interrupts,
                wire_bytes: delta.node(NodeId::from(n)).bytes_sent,
            }
        })
        .collect();
    let total_comm_seconds: f64 = loads.iter().map(|l| model.node_time(l)).sum();
    let copies_fetched = rts_stats.iter().map(|s| s.copies_fetched).sum();
    runtime.shutdown();
    RtsRow {
        rts: kind,
        read_fraction,
        messages_per_op: delta.total_messages() as f64 / total_ops,
        bytes_per_op: delta.total_wire_bytes() as f64 / total_ops,
        est_ms_per_op: total_comm_seconds * 1000.0 / total_ops,
        copies_fetched,
    }
}

/// One side of the leased-read comparison: a read-only phase over one
/// shared integer, every node reading concurrently.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadPhase {
    /// Total reads performed during the phase.
    pub reads: u64,
    /// Wire messages generated during the phase (telemetry-verified).
    pub messages: u64,
    /// `rts.lease.local_reads` counter delta over the phase.
    pub lease_local_reads: u64,
    /// Estimated microseconds per read: measured local apply cost for the
    /// leased phase (it generates no communication to model), the cost
    /// model's RPC path for the baseline.
    pub est_us_per_read: f64,
}

/// Leased reads vs the plain primary-copy read path, same workload.
#[derive(Debug, Clone, PartialEq)]
pub struct LeasedReadReport {
    /// Nodes in both runs.
    pub nodes: usize,
    /// The phase with read leases: secondaries serve linearizable reads
    /// from their leased local copies with **zero messages**, so throughput
    /// is limited only by local apply cost (measured, not modeled).
    pub leased: ReadPhase,
    /// The phase without replication: every non-primary read is a `ReadAt`
    /// RPC to the primary (modeled on the paper's hardware).
    pub baseline: ReadPhase,
    /// `baseline.est_us_per_read / leased.est_us_per_read`.
    pub modeled_read_speedup: f64,
}

fn read_phase(nodes: usize, reads_per_node: usize, leased: bool) -> ReadPhase {
    let replication = if leased {
        ReplicationPolicy {
            // Fetch a copy on the first read; leases far outlast the phase
            // so no renewal traffic perturbs the zero-message claim.
            fetch_ratio: 0.0,
            drop_ratio: -1.0,
            window: 1,
            enabled: true,
            read_lease_ms: 60_000,
        }
    } else {
        ReplicationPolicy::never_replicate()
    };
    let config = OrcaConfig {
        strategy: RtsStrategy::PrimaryCopy {
            policy: WritePolicy::Update,
            replication,
        },
        ..OrcaConfig::broadcast(nodes)
    };
    let runtime = OrcaRuntime::start(config, orca_core::standard_registry());
    let counter = runtime.create::<IntObject>(&1).expect("create counter");
    if leased {
        // Prime: every secondary fetches its leased copy before the
        // measured phase, so the phase is pure steady-state reads.
        for node in 1..nodes {
            runtime
                .context(node)
                .invoke(counter, &IntOp::Value)
                .expect("priming read");
        }
    }
    let local_reads = runtime
        .telemetry()
        .registry()
        .counter("rts.lease.local_reads");
    let local_before = local_reads.get();
    let before = runtime.network_stats();
    let started = Instant::now();
    let workers: Vec<_> = (0..nodes)
        .map(|node| {
            let handle = counter;
            runtime.fork_on(node, "reader", move |ctx| {
                for _ in 0..reads_per_node {
                    ctx.invoke(handle, &IntOp::Value).expect("read");
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join();
    }
    let wall = started.elapsed();
    let delta = runtime.network_stats().since(&before);
    let reads = (nodes * reads_per_node) as u64;
    let est_us_per_read = if leased {
        // No communication to model: throughput is bounded by the local
        // apply cost alone, so measure it.
        wall.as_secs_f64() * 1e6 / reads as f64
    } else {
        let model = CostModel::with_unit_seconds(0.0);
        let rts_stats = runtime.rts_stats();
        let total: f64 = (0..nodes)
            .map(|n| {
                let stats = rts_stats[n];
                model.node_time(&NodeLoad {
                    work_units: 0,
                    updates_handled: stats.updates_applied,
                    ops_shipped: 0,
                    rpcs: stats.remote_reads + stats.copies_fetched,
                    interrupts: delta.node(NodeId::from(n)).interrupts,
                    wire_bytes: delta.node(NodeId::from(n)).bytes_sent,
                })
            })
            .sum();
        total * 1e6 / reads as f64
    };
    let phase = ReadPhase {
        reads,
        messages: delta.total_messages(),
        lease_local_reads: local_reads.get() - local_before,
        est_us_per_read,
    };
    runtime.shutdown();
    phase
}

/// Run the read-only phase twice — leases on, replication off — and report
/// messages per read and the modeled read-throughput gap.
pub fn leased_read_phase(nodes: usize, reads_per_node: usize) -> LeasedReadReport {
    let leased = read_phase(nodes, reads_per_node, true);
    let baseline = read_phase(nodes, reads_per_node, false);
    let modeled_read_speedup = baseline.est_us_per_read / leased.est_us_per_read.max(1e-9);
    LeasedReadReport {
        nodes,
        leased,
        baseline,
        modeled_read_speedup,
    }
}

/// Format the leased-read comparison as a text table.
pub fn format_leased(report: &LeasedReadReport) -> String {
    let mut out = String::from("# read leases: zero-message linearizable reads\n");
    out.push_str("phase      reads   messages  msgs/read  lease_local  est_us/read\n");
    for (name, phase) in [("leased", &report.leased), ("baseline", &report.baseline)] {
        out.push_str(&format!(
            "{:<9} {:>6}  {:>9}  {:>9.3}  {:>11}  {:>11.2}\n",
            name,
            phase.reads,
            phase.messages,
            phase.messages as f64 / phase.reads as f64,
            phase.lease_local_reads,
            phase.est_us_per_read,
        ));
    }
    out.push_str(&format!(
        "modeled read speedup (leased vs primary-copy RPC path): {:.1}x\n",
        report.modeled_read_speedup
    ));
    out
}

/// Format the comparison as a text table.
pub fn format_table(rows: &[RtsRow]) -> String {
    let mut out = String::from("# §3.2.2: invalidation vs two-phase update vs broadcast RTS\n");
    out.push_str("rts         read%   msgs/op  bytes/op  est_ms/op  copies_fetched\n");
    for row in rows {
        out.push_str(&format!(
            "{:<11} {:>5.0}  {:>8.2}  {:>8.0}  {:>9.3}  {:>14}\n",
            row.rts.name(),
            row.read_fraction * 100.0,
            row.messages_per_op,
            row.bytes_per_op,
            row.est_ms_per_op,
            row.copies_fetched
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_heavy_workloads_favour_replication() {
        let rows = rts_comparison(3, 60, &[0.95]);
        let broadcast = rows.iter().find(|r| r.rts == RtsKind::Broadcast).unwrap();
        let update = rows
            .iter()
            .find(|r| r.rts == RtsKind::PrimaryUpdate)
            .unwrap();
        let invalidate = rows
            .iter()
            .find(|r| r.rts == RtsKind::PrimaryInvalidate)
            .unwrap();
        // With 95% reads the broadcast RTS does almost all its work locally.
        assert!(broadcast.messages_per_op < 1.0);
        // The primary-copy systems need messages for the remote accesses of
        // the two non-primary nodes, but still fewer than one RPC per op once
        // copies have been fetched.
        assert!(update.messages_per_op > broadcast.messages_per_op);
        assert!(invalidate.messages_per_op > 0.0);
    }

    #[test]
    fn leased_read_phase_is_zero_message_and_faster() {
        let report = leased_read_phase(3, 50);
        assert_eq!(
            report.leased.messages, 0,
            "leased read-only phase must put nothing on the wire: {report:?}"
        );
        // Both secondaries served every read under their lease.
        assert!(report.leased.lease_local_reads >= 100, "{report:?}");
        assert!(report.baseline.messages > 0, "{report:?}");
        assert!(report.modeled_read_speedup >= 5.0, "{report:?}");
    }

    #[test]
    fn write_heavy_workloads_penalize_full_replication() {
        let rows = rts_comparison(3, 40, &[0.2]);
        let broadcast = rows.iter().find(|r| r.rts == RtsKind::Broadcast).unwrap();
        // Every write is a broadcast that every node must process.
        assert!(broadcast.messages_per_op > 0.5);
    }
}
