//! Benchmark harness regenerating every table and figure of the paper.
//!
//! Each experiment of §3–§4 has one module here and one `cargo bench` target
//! in `benches/`; `src/bin/experiments.rs` runs everything and prints the
//! tables recorded in `EXPERIMENTS.md`.
//!
//! | Experiment | Paper | Module |
//! |------------|-------|--------|
//! | TSP speedup (Fig. 2) | §4.1 | [`speedup::tsp_speedup`] |
//! | ACP speedup (Fig. 3) | §4.2 | [`speedup::acp_speedup`] |
//! | Chess speedup + shared-vs-local tables | §4.3 | [`speedup::chess_speedup`], [`speedup::chess_tables`] |
//! | ATPG speedup + fault simulation | §4.4 | [`speedup::atpg_speedup`] |
//! | PB vs BB broadcast protocols | §3.1 | [`protocols::pb_vs_bb`] |
//! | Invalidation vs update vs broadcast RTS | §3.2.2 | [`rtscompare::rts_comparison`] |
//! | Sharded RTS write throughput vs partitions | beyond the paper | [`sharded::sharded_throughput`] |
//! | Adaptive RTS vs every fixed regime | beyond the paper | [`adaptive::adaptive_comparison`] |
//! | Crash-recovery latency vs heartbeat settings | beyond the paper | [`recovery::recovery_sweep`] |
//!
//! All experiments run the real protocol stack in-process and feed the
//! measured work and communication counts into the calibrated cost model of
//! `orca-perf` (see DESIGN.md §3 for why wall-clock time on the build machine
//! is not used).

pub mod adaptive;
pub mod loads;
pub mod pipeline;
pub mod protocols;
pub mod recovery;
pub mod rtscompare;
pub mod sharded;
pub mod speedup;
pub mod tcp;

/// Processor counts used for the speedup sweeps (the paper's figures go up
/// to 16; intermediate points keep total bench time reasonable).
pub const PROCESSOR_SWEEP: &[usize] = &[1, 2, 4, 8, 12, 16];

/// Environment-variable override helper: `ORCA_BENCH_<NAME>`.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(format!("ORCA_BENCH_{name}"))
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}
