//! PB vs BB broadcast-protocol comparison (§3.1).
//!
//! The paper's analysis: PB puts the full message on the wire twice but
//! interrupts each member once; BB puts it on the wire once (plus a short
//! Accept) but interrupts each member twice; the kernel picks PB for short
//! messages and BB for long ones. This experiment broadcasts a batch of
//! messages of various sizes under each policy and reports bytes on the wire
//! and interrupts per member per message, as measured by the network layer.

use std::time::Duration;

use orca_amoeba::network::Network;
use orca_group::{GroupConfig, GroupMember, MethodPolicy};

/// One row of the PB/BB table.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolRow {
    /// Protocol policy name.
    pub policy: &'static str,
    /// Payload size in bytes.
    pub payload: usize,
    /// Average bytes on the wire per broadcast message.
    pub wire_bytes_per_msg: f64,
    /// Average interrupts per member per broadcast message.
    pub interrupts_per_member: f64,
}

/// Run the PB/BB comparison for the given payload sizes on `members` nodes.
pub fn pb_vs_bb(members: usize, payload_sizes: &[usize], msgs_per_size: usize) -> Vec<ProtocolRow> {
    let mut rows = Vec::new();
    for &(policy, name) in &[
        (MethodPolicy::AlwaysPb, "PB"),
        (MethodPolicy::AlwaysBb, "BB"),
        (MethodPolicy::Auto, "auto"),
    ] {
        for &payload in payload_sizes {
            rows.push(measure(members, policy, name, payload, msgs_per_size));
        }
    }
    rows
}

fn measure(
    members: usize,
    policy: MethodPolicy,
    name: &'static str,
    payload: usize,
    count: usize,
) -> ProtocolRow {
    // This experiment measures the protocol's *inherent* wire cost, but on a
    // loaded machine a scheduler stall can outlast the retransmit timeout and
    // the resent bytes pollute the per-message averages. A polluted run is
    // detectable (the members count their retransmissions), so re-measure
    // until a run is retry-free; a clean run is the overwhelmingly common
    // case, the bound is just a backstop.
    let mut last = measure_once(members, policy, name, payload, count);
    for _ in 0..4 {
        if last.1 == 0 {
            break;
        }
        last = measure_once(members, policy, name, payload, count);
    }
    last.0
}

fn measure_once(
    members: usize,
    policy: MethodPolicy,
    name: &'static str,
    payload: usize,
    count: usize,
) -> (ProtocolRow, u64) {
    let net = Network::reliable(members);
    let config = GroupConfig {
        method: policy,
        ..GroupConfig::default()
    };
    let group: Vec<GroupMember> = net
        .node_ids()
        .into_iter()
        .map(|n| GroupMember::start(net.handle(n), config.clone()))
        .collect();
    let before = net.stats();
    // Node 1 broadcasts (never the sequencer, so the request leg is real).
    let sender = &group[1.min(members - 1)];
    for i in 0..count {
        sender
            .broadcast(vec![(i % 251) as u8; payload])
            .expect("broadcast");
    }
    for member in &group {
        for _ in 0..count {
            member
                .recv_timeout(Duration::from_secs(10))
                .expect("delivery");
        }
    }
    let delta = net.stats().since(&before);
    let wire_bytes_per_msg = delta.total_wire_bytes() as f64 / count as f64;
    let interrupts_per_member = delta.total_interrupts() as f64 / (count as f64 * members as f64);
    let retries: u64 = group.iter().map(|m| m.stats().send_retries).sum();
    for member in group {
        member.shutdown();
    }
    let row = ProtocolRow {
        policy: name,
        payload,
        wire_bytes_per_msg,
        interrupts_per_member,
    };
    (row, retries)
}

/// Format the comparison as a text table.
pub fn format_table(rows: &[ProtocolRow]) -> String {
    let mut out = String::from("# §3.1: PB vs BB totally-ordered broadcast\n");
    out.push_str("policy  payload_bytes  wire_bytes/msg  interrupts/member\n");
    for row in rows {
        out.push_str(&format!(
            "{:>6}  {:>13}  {:>14.0}  {:>17.2}\n",
            row.policy, row.payload, row.wire_bytes_per_msg, row.interrupts_per_member
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pb_uses_twice_the_bandwidth_and_half_the_interrupts_of_bb() {
        let rows = pb_vs_bb(4, &[256], 10);
        let pb = rows.iter().find(|r| r.policy == "PB").unwrap();
        let bb = rows.iter().find(|r| r.policy == "BB").unwrap();
        // PB: message crosses the wire twice (request + broadcast).
        assert!(pb.wire_bytes_per_msg > 1.7 * 256.0);
        // BB: message crosses once plus a short accept.
        assert!(bb.wire_bytes_per_msg < 1.5 * pb.wire_bytes_per_msg);
        assert!(bb.wire_bytes_per_msg < pb.wire_bytes_per_msg);
        // Interrupts: PB one per member per message (plus the sequencer's
        // request), BB two per member per message.
        assert!(bb.interrupts_per_member > pb.interrupts_per_member);
    }

    #[test]
    fn auto_behaves_like_pb_for_small_and_bb_for_large_messages() {
        let rows = pb_vs_bb(3, &[64, 8192], 6);
        let small_auto = rows
            .iter()
            .find(|r| r.policy == "auto" && r.payload == 64)
            .unwrap();
        let small_pb = rows
            .iter()
            .find(|r| r.policy == "PB" && r.payload == 64)
            .unwrap();
        let large_auto = rows
            .iter()
            .find(|r| r.policy == "auto" && r.payload == 8192)
            .unwrap();
        let large_bb = rows
            .iter()
            .find(|r| r.policy == "BB" && r.payload == 8192)
            .unwrap();
        assert!((small_auto.wire_bytes_per_msg - small_pb.wire_bytes_per_msg).abs() < 64.0);
        assert!((large_auto.wire_bytes_per_msg - large_bb.wire_bytes_per_msg).abs() < 512.0);
    }
}
