//! Speedup experiments (Fig. 2, Fig. 3 and the §4.3/§4.4 numbers).

use orca_apps::{acp, atpg, chess, tsp};
use orca_core::OrcaRuntime;
use orca_perf::{CostModel, SpeedupPoint, SpeedupSeries};

use crate::loads::loads_from_runtime;
use crate::{env_usize, PROCESSOR_SWEEP};

/// Per-unit CPU costs of each application on the paper's MC68030s. The unit
/// definitions: one branch-and-bound node (TSP), one constraint revision
/// (ACP), one search node (chess), one PODEM simulation/backtrack step
/// (ATPG).
pub mod unit_cost {
    /// Seconds per TSP branch-and-bound node.
    pub const TSP: f64 = 150e-6;
    /// Seconds per ACP constraint revision (set operations over domains).
    pub const ACP: f64 = 2.5e-3;
    /// Seconds per chess search node (move generation + evaluation).
    pub const CHESS: f64 = 1.2e-3;
    /// Seconds per PODEM step (one implication/simulation pass).
    pub const ATPG: f64 = 0.8e-3;
}

/// Fig. 2: TSP speedup on 1–16 processors, 14-city problem.
pub fn tsp_speedup() -> SpeedupSeries {
    let cities = env_usize("TSP_CITIES", 14);
    let instance = tsp::TspInstance::random(cities, 1993);
    let sequential = tsp::solve_sequential(&instance);
    let model = CostModel::with_unit_seconds(unit_cost::TSP);
    let mut points = Vec::new();
    for &p in PROCESSOR_SWEEP {
        let runtime = OrcaRuntime::standard(p);
        let (solution, report) = tsp::solve_parallel(&runtime, &instance, p);
        assert_eq!(
            solution.best_length, sequential.best_length,
            "parallel TSP must find the optimum"
        );
        let loads = loads_from_runtime(&runtime, &report);
        points.push(SpeedupPoint {
            processors: p,
            speedup: model.speedup(sequential.nodes_expanded, &loads),
            seconds: model.makespan(&loads),
        });
        runtime.shutdown();
    }
    SpeedupSeries::new(format!("Fig 2: TSP speedup ({cities} cities)"), points)
}

/// Fig. 3: ACP speedup on 2–16 processors, 64 variables.
pub fn acp_speedup() -> SpeedupSeries {
    let variables = env_usize("ACP_VARIABLES", 64);
    let instance = acp::AcpInstance::random(variables, 16, variables * 3, 7);
    let sequential = acp::solve_sequential(&instance);
    let model = CostModel::with_unit_seconds(unit_cost::ACP);
    let mut points = Vec::new();
    for &p in PROCESSOR_SWEEP.iter().filter(|&&p| p >= 2) {
        let runtime = acp::runtime(p);
        let (solution, report) = acp::solve_parallel(&runtime, &instance, p);
        assert_eq!(solution.no_solution, sequential.no_solution);
        let loads = loads_from_runtime(&runtime, &report);
        points.push(SpeedupPoint {
            processors: p,
            speedup: model.speedup(sequential.revisions, &loads),
            seconds: model.makespan(&loads),
        });
        runtime.shutdown();
    }
    SpeedupSeries::new(
        format!("Fig 3: ACP speedup ({variables} variables)"),
        points,
    )
}

/// §4.3: Oracol speedup (shared tables), reported by the paper as 4.5–5.5 on
/// 10 CPUs, limited by search overhead.
pub fn chess_speedup() -> SpeedupSeries {
    let position = chess::random_middlegame(12, 1993);
    let depth = env_usize("CHESS_DEPTH", 4) as i32;
    let mut tables = chess::LocalTables::new();
    let sequential = chess::search_position(&position, depth, &mut tables);
    let model = CostModel::with_unit_seconds(unit_cost::CHESS);
    let mut points = Vec::new();
    for &p in &[1usize, 2, 4, 8, 10, 16] {
        let runtime = OrcaRuntime::standard(p);
        let (_result, report) =
            chess::solve_parallel(&runtime, &position, depth, p, chess::TableMode::Shared);
        let loads = loads_from_runtime(&runtime, &report);
        points.push(SpeedupPoint {
            processors: p,
            speedup: model.speedup(sequential.nodes, &loads),
            seconds: model.makespan(&loads),
        });
        runtime.shutdown();
    }
    SpeedupSeries::new("§4.3: Oracol chess speedup (shared tables)", points)
}

/// §4.3: shared vs local killer/transposition tables at a fixed processor
/// count. Returns (mode name, total nodes, estimated seconds).
pub fn chess_tables() -> Vec<(String, u64, f64)> {
    let position = chess::random_middlegame(12, 1993);
    let depth = env_usize("CHESS_DEPTH", 4) as i32;
    let workers = env_usize("CHESS_WORKERS", 8);
    let model = CostModel::with_unit_seconds(unit_cost::CHESS);
    let mut rows = Vec::new();
    for (name, mode) in [
        ("local tables", chess::TableMode::Local),
        ("shared tables", chess::TableMode::Shared),
    ] {
        let runtime = OrcaRuntime::standard(workers);
        let (result, report) = chess::solve_parallel(&runtime, &position, depth, workers, mode);
        let loads = loads_from_runtime(&runtime, &report);
        rows.push((name.to_string(), result.nodes, model.makespan(&loads)));
        runtime.shutdown();
    }
    rows
}

/// §4.4: ATPG speedup with and without the shared fault-simulation object.
/// Returns two series plus the absolute-time ratio at the largest processor
/// count (the paper reports ≈ 3× faster with fault simulation).
pub fn atpg_speedup() -> (SpeedupSeries, SpeedupSeries, f64) {
    let inputs = env_usize("ATPG_INPUTS", 12);
    let gates = env_usize("ATPG_GATES", 90);
    let circuit = atpg::Circuit::random(inputs, gates, 1993);
    let model = CostModel::with_unit_seconds(unit_cost::ATPG);
    let sequential_plain = atpg::solve_sequential(&circuit, false);
    let sequential_sim = atpg::solve_sequential(&circuit, true);

    let run = |fault_sim: bool, sequential_work: u64| -> SpeedupSeries {
        let mut points = Vec::new();
        for &p in PROCESSOR_SWEEP {
            let runtime = OrcaRuntime::standard(p);
            let (_result, report) = atpg::solve_parallel(&runtime, &circuit, p, fault_sim);
            let loads = loads_from_runtime(&runtime, &report);
            points.push(SpeedupPoint {
                processors: p,
                speedup: model.speedup(sequential_work, &loads),
                seconds: model.makespan(&loads),
            });
            runtime.shutdown();
        }
        SpeedupSeries::new(
            if fault_sim {
                "§4.4: ATPG speedup (with shared fault simulation)"
            } else {
                "§4.4: ATPG speedup (static partitioning only)"
            },
            points,
        )
    };
    let plain = run(false, sequential_plain.work);
    let with_sim = run(true, sequential_sim.work);
    // Absolute time comparison at the largest measured processor count.
    let last_plain = plain.points.last().map(|p| p.seconds).unwrap_or(1.0);
    let last_sim = with_sim.points.last().map(|p| p.seconds).unwrap_or(1.0);
    let abs_ratio = last_plain / last_sim.max(1e-9);
    (plain, with_sim, abs_ratio)
}
