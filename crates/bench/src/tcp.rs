//! Wall-clock pipeline-depth sweep over the real socket transport.
//!
//! Every other experiment in this harness measures protocol *events* and
//! feeds them to the calibrated cost model, because the simulated network
//! has no real latency. The socket transport does: an in-process loopback
//! cluster ([`orca_core::TransportConfig::SocketLoopback`]) sends every
//! inter-node message through real TCP/UDP sockets, so here — and only
//! here — the wall clock is the measurement. The sweep drives the same
//! JobQueue write workload as the simulated pipeline bench
//! ([`crate::pipeline`]) at pipeline depths {1, 4, 16, 64}: at depth 1 a
//! writer pays one socket round-trip per operation, at depth 16 the
//! batching layer coalesces a window into one framed TCP message per
//! destination, and the measured throughput shows how much of the
//! round-trip latency pipelining actually hides on this machine. Results
//! land in `BENCH_tcp.json`.

use std::time::{Duration, Instant};

use orca_core::objects::{JobQueue, JobQueueOp};
use orca_core::{
    standard_registry, BatchPolicy, OrcaConfig, OrcaRuntime, RtsStrategy, TransportConfig,
};
use orca_wire::Wire;

/// Flusher wait, matching the simulated pipeline sweep so the coalescing
/// behavior is comparable.
const FLUSH_DELAY: Duration = Duration::from_micros(500);

/// One point of the sweep. All timing fields are real wall-clock numbers
/// from this machine's loopback stack — they are *not* modeled.
#[derive(Debug, Clone, PartialEq)]
pub struct TcpRow {
    /// Runtime-system strategy name.
    pub strategy: &'static str,
    /// Operations each writer keeps in flight before waiting.
    pub depth: usize,
    /// Cluster size (one socket transport per node, loopback).
    pub nodes: usize,
    /// `AddJob` operations performed per node.
    pub ops_per_node: usize,
    /// Wall-clock duration of the write phase.
    pub elapsed: Duration,
    /// Achieved aggregate write throughput (`total ops / elapsed`).
    pub ops_per_sec: f64,
    /// Mean wall-clock latency per op per writer (`elapsed / ops_per_node`).
    pub mean_op_latency_us: f64,
    /// TCP frames the cluster's transports sent during the write phase.
    pub tcp_frames: u64,
    /// UDP datagrams the cluster's transports sent during the write phase.
    pub udp_datagrams: u64,
}

/// The strategies the sweep covers (same set as the simulated sweep).
pub fn strategies() -> Vec<(&'static str, RtsStrategy)> {
    crate::pipeline::strategies()
}

/// Run the JobQueue write workload over loopback sockets once per
/// (strategy, depth).
pub fn tcp_pipeline_throughput(nodes: usize, ops_per_node: usize, depths: &[usize]) -> Vec<TcpRow> {
    let mut rows = Vec::new();
    for (name, strategy) in strategies() {
        for &depth in depths {
            rows.push(run_one(name, strategy.clone(), nodes, ops_per_node, depth));
        }
    }
    rows
}

/// Sum of one transport counter family (`transport.node*.<suffix>`)
/// across the cluster.
fn transport_counter_total(snapshot: &orca_telemetry::RegistrySnapshot, suffix: &str) -> u64 {
    snapshot
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("transport.node") && name.ends_with(suffix))
        .map(|(_, value)| value)
        .sum()
}

fn run_one(
    name: &'static str,
    strategy: RtsStrategy,
    nodes: usize,
    ops_per_node: usize,
    depth: usize,
) -> TcpRow {
    let config = OrcaConfig {
        strategy,
        ..OrcaConfig::broadcast(nodes)
    }
    .with_batch(BatchPolicy {
        max_batch: depth.max(1),
        max_delay: FLUSH_DELAY,
    })
    .with_transport(TransportConfig::SocketLoopback);
    let runtime = OrcaRuntime::start(config, standard_registry());
    let queue: JobQueue<u64> = JobQueue::create(runtime.main()).unwrap();
    // Warm route/regime caches and TCP connections, so the measurement is
    // steady-state batched shipping over established sockets.
    let warmup: Vec<_> = (0..nodes)
        .map(|n| {
            runtime.fork_on(n, "warmup", move |ctx| {
                ctx.invoke_async(queue.handle(), &JobQueueOp::AddJob(u64::MAX.to_bytes()))
                    .wait()
                    .unwrap();
            })
        })
        .collect();
    for handle in warmup {
        handle.join();
    }
    let before = runtime.telemetry().registry().snapshot();

    let started = Instant::now();
    let writers: Vec<_> = (0..nodes)
        .map(|n| {
            runtime.fork_on(n, "writer", move |ctx| {
                let base = (n as u64) << 32;
                let mut issued = 0u64;
                while (issued as usize) < ops_per_node {
                    let window = depth.min(ops_per_node - issued as usize);
                    let ops: Vec<JobQueueOp> = (0..window as u64)
                        .map(|i| JobQueueOp::AddJob((base | (issued + i)).to_bytes()))
                        .collect();
                    let futures = ctx.invoke_many(queue.handle(), &ops);
                    for future in &futures {
                        future.wait().unwrap();
                    }
                    issued += window as u64;
                }
            })
        })
        .collect();
    for handle in writers {
        handle.join();
    }
    let elapsed = started.elapsed();

    let after = runtime.telemetry().registry().snapshot();
    let tcp_frames = transport_counter_total(&after, ".tcp.frames_sent")
        - transport_counter_total(&before, ".tcp.frames_sent");
    let udp_datagrams = transport_counter_total(&after, ".udp.datagrams_sent")
        - transport_counter_total(&before, ".udp.datagrams_sent");
    let total_ops = (nodes * ops_per_node) as f64;
    let row = TcpRow {
        strategy: name,
        depth,
        nodes,
        ops_per_node,
        elapsed,
        ops_per_sec: total_ops / elapsed.as_secs_f64().max(f64::MIN_POSITIVE),
        mean_op_latency_us: elapsed.as_secs_f64() * 1e6 / (ops_per_node as f64).max(1.0),
        tcp_frames,
        udp_datagrams,
    };
    runtime.shutdown();
    row
}

/// Throughput ratio between the runs of `strategy` at depths `to` and
/// `from` (`None` if either point is missing).
pub fn speedup(rows: &[TcpRow], strategy: &str, from: usize, to: usize) -> Option<f64> {
    let base = rows
        .iter()
        .find(|r| r.strategy == strategy && r.depth == from)?;
    let target = rows
        .iter()
        .find(|r| r.strategy == strategy && r.depth == to)?;
    Some(target.ops_per_sec / base.ops_per_sec)
}

/// Format the sweep as a text table.
pub fn format_table(rows: &[TcpRow]) -> String {
    let mut out = String::from(
        "# Loopback socket transport: JobQueue write throughput vs pipeline depth (wall clock)\n",
    );
    out.push_str(
        "strategy        depth  total_ops  wall_ms  ops/sec  op_latency_us  tcp_frames  udp_datagrams\n",
    );
    for row in rows {
        out.push_str(&format!(
            "{:<15} {:>5}  {:>9}  {:>7.1}  {:>7.0}  {:>13.1}  {:>10}  {:>13}\n",
            row.strategy,
            row.depth,
            row.nodes * row.ops_per_node,
            row.elapsed.as_secs_f64() * 1000.0,
            row.ops_per_sec,
            row.mean_op_latency_us,
            row.tcp_frames,
            row.udp_datagrams,
        ));
    }
    for (name, _) in strategies() {
        if let Some(ratio) = speedup(rows, name, 1, 16) {
            out.push_str(&format!(
                "wall-clock speedup depth 1 -> 16 ({name}): {ratio:.2}x\n"
            ));
        }
    }
    out
}

/// Serialize the sweep as the `BENCH_tcp.json` trajectory record
/// (hand-rolled: the workspace has no JSON dependency).
pub fn to_json(rows: &[TcpRow]) -> String {
    let mut out = String::from(
        "{\n  \"bench\": \"tcp\",\n  \"workload\": \"jobqueue_add_async_loopback_sockets\",\n  \"clock\": \"wall\",\n  \"results\": [\n",
    );
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"strategy\": \"{}\", \"depth\": {}, \"nodes\": {}, \"ops_per_node\": {}, \"wall_ms\": {:.3}, \"ops_per_sec\": {:.1}, \"op_latency_us\": {:.2}, \"tcp_frames\": {}, \"udp_datagrams\": {}}}{}\n",
            row.strategy,
            row.depth,
            row.nodes,
            row.ops_per_node,
            row.elapsed.as_secs_f64() * 1000.0,
            row.ops_per_sec,
            row.mean_op_latency_us,
            row.tcp_frames,
            row.udp_datagrams,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    let mut ratios = Vec::new();
    for (name, _) in strategies() {
        let ratio = speedup(rows, name, 1, 16).unwrap_or(0.0);
        ratios.push(format!("    \"{name}\": {ratio:.3}"));
    }
    out.push_str("  \"wall_speedup_depth_1_to_16\": {\n");
    out.push_str(&ratios.join(",\n"));
    out.push_str("\n  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_runs_over_real_sockets_and_serializes() {
        // Small configuration: correctness of the harness, not performance.
        let rows = tcp_pipeline_throughput(2, 16, &[1, 4]);
        assert_eq!(rows.len(), strategies().len() * 2);
        assert!(rows.iter().all(|r| r.ops_per_sec > 0.0));
        // The traffic really crossed sockets: every run framed something.
        assert!(
            rows.iter().all(|r| r.tcp_frames + r.udp_datagrams > 0),
            "no socket traffic recorded: {rows:?}"
        );
        let json = to_json(&rows);
        assert!(json.contains("\"bench\": \"tcp\""));
        assert!(json.contains("\"clock\": \"wall\""));
        assert!(json.contains("wall_speedup_depth_1_to_16"));
        let table = format_table(&rows);
        assert!(table.contains("tcp_frames"));
        assert!(speedup(&rows, "broadcast", 1, 16).is_none());
        assert!(speedup(&rows, "broadcast", 1, 4).is_some());
    }
}
