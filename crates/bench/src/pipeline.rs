//! Pipelined-async invocation throughput sweep.
//!
//! The synchronous invocation path blocks the invoking process on every
//! operation, so write throughput is bounded by round-trip latency. The
//! asynchronous path (`OrcaNode::invoke_async` / `invoke_many`) keeps up to
//! *pipeline depth* operations in flight per writer and lets the runtime
//! system coalesce them into per-destination batches: one totally-ordered
//! broadcast slot, or one RPC per primary/partition owner, carrying many
//! operations. This experiment drives the JobQueue write workload at
//! pipeline depths {1, 4, 16, 64} under the broadcast, primary-copy and
//! sharded runtime systems and records the achieved coalescing factor and
//! the modeled throughput.
//!
//! Like every other experiment in this harness, the run uses the real
//! protocol stack and feeds the measured per-node work and communication
//! counts into the calibrated cost model of `orca-perf` (wall-clock time on
//! the build machine is not used — see DESIGN.md §3). Batching splits the
//! destination-side cost in two, and the runtime systems account it that
//! way: `updates_applied` counts one protocol-handling event **per
//! message** (interrupt, protocol processing — the expensive part, modeled
//! at the full update-handling cost) and `batch_ops_applied` counts the
//! per-operation applies inside batches (lock + decode + apply, modeled at
//! [`APPLY_SECONDS`]). At depth 1 every batch carries one operation and the
//! model degenerates to the synchronous accounting; at depth 16 the
//! per-message costs amortize over ~16 operations, which is where the
//! throughput comes from. Results land in `BENCH_pipeline.json`.

use std::time::{Duration, Instant};

use orca_amoeba::NodeId;
use orca_core::objects::{JobQueue, JobQueueOp};
use orca_core::{standard_registry, BatchPolicy, OrcaConfig, OrcaRuntime, RtsStrategy};
use orca_perf::{CostModel, NodeLoad};
use orca_wire::Wire;

/// Modeled CPU seconds for one batched per-operation apply at the
/// destination (lock, decode, apply) — the marginal cost of one more
/// operation in an already-received batch, a fraction of the 1.3 ms
/// full update-handling cost that covers interrupt and protocol work.
pub const APPLY_SECONDS: f64 = 0.06e-3;

/// How long a flusher round waits for more submissions, so a depth-`D`
/// window reliably coalesces into one batch instead of racing the flusher.
const FLUSH_DELAY: Duration = Duration::from_micros(500);

/// One point of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineRow {
    /// Runtime-system strategy name.
    pub strategy: &'static str,
    /// Operations each writer keeps in flight before waiting.
    pub depth: usize,
    /// Simulated nodes (one writer process per node).
    pub nodes: usize,
    /// `AddJob` operations performed per node.
    pub ops_per_node: usize,
    /// Batch messages shipped in total (all nodes).
    pub batches: u64,
    /// Achieved coalescing factor (`ops batched / batches shipped`).
    pub coalescing: f64,
    /// Modeled protocol-handling time of the busiest node.
    pub bottleneck_seconds: f64,
    /// Modeled aggregate write throughput (`total ops / bottleneck`).
    pub ops_per_sec: f64,
    /// Wall-clock time of the measurement run on the build machine
    /// (orientation only).
    pub elapsed: Duration,
    /// Recorded queue-wait latency percentiles (submission → round cut),
    /// nanoseconds, from the `rts.pipeline.queue_ns` telemetry histogram.
    pub queue_p50_ns: u64,
    /// Queue-wait p99 (ns).
    pub queue_p99_ns: u64,
    /// Queue-wait p99.9 (ns).
    pub queue_p999_ns: u64,
    /// Recorded flusher-round service-time percentiles (round cut →
    /// resolution), nanoseconds, from `rts.pipeline.service_ns`.
    pub service_p50_ns: u64,
    /// Service-time p99 (ns).
    pub service_p99_ns: u64,
    /// Service-time p99.9 (ns).
    pub service_p999_ns: u64,
}

/// The strategies the sweep covers.
pub fn strategies() -> Vec<(&'static str, RtsStrategy)> {
    vec![
        ("broadcast", RtsStrategy::broadcast()),
        ("primary_update", RtsStrategy::primary_update()),
        ("sharded", RtsStrategy::sharded(4)),
    ]
}

/// Run the JobQueue write workload once per (strategy, depth).
pub fn pipeline_throughput(
    nodes: usize,
    ops_per_node: usize,
    depths: &[usize],
) -> Vec<PipelineRow> {
    let mut rows = Vec::new();
    for (name, strategy) in strategies() {
        for &depth in depths {
            rows.push(run_one(name, strategy.clone(), nodes, ops_per_node, depth));
        }
    }
    rows
}

fn run_one(
    name: &'static str,
    strategy: RtsStrategy,
    nodes: usize,
    ops_per_node: usize,
    depth: usize,
) -> PipelineRow {
    let config = OrcaConfig {
        strategy,
        ..OrcaConfig::broadcast(nodes)
    }
    .with_batch(BatchPolicy {
        max_batch: depth.max(1),
        max_delay: FLUSH_DELAY,
    });
    let runtime = OrcaRuntime::start(config, standard_registry());
    let queue: JobQueue<u64> = JobQueue::create(runtime.main()).unwrap();
    // Warm route/regime caches so the measurement captures steady-state
    // batched shipping, not one-time fetches.
    let warmup: Vec<_> = (0..nodes)
        .map(|n| {
            runtime.fork_on(n, "warmup", move |ctx| {
                ctx.invoke_async(queue.handle(), &JobQueueOp::AddJob(u64::MAX.to_bytes()))
                    .wait()
                    .unwrap();
            })
        })
        .collect();
    for handle in warmup {
        handle.join();
    }
    let net_before = runtime.network_stats();
    let rts_before = runtime.rts_stats();

    let started = Instant::now();
    let writers: Vec<_> = (0..nodes)
        .map(|n| {
            runtime.fork_on(n, "writer", move |ctx| {
                let base = (n as u64) << 32;
                let mut issued = 0u64;
                while (issued as usize) < ops_per_node {
                    let window = depth.min(ops_per_node - issued as usize);
                    let ops: Vec<JobQueueOp> = (0..window as u64)
                        .map(|i| JobQueueOp::AddJob((base | (issued + i)).to_bytes()))
                        .collect();
                    // Pipeline: the whole window is in flight before the
                    // first wait.
                    let futures = ctx.invoke_many(queue.handle(), &ops);
                    for future in &futures {
                        future.wait().unwrap();
                    }
                    issued += window as u64;
                }
            })
        })
        .collect();
    for handle in writers {
        handle.join();
    }
    let elapsed = started.elapsed();

    let net_delta = runtime.network_stats().since(&net_before);
    let rts_after = runtime.rts_stats();
    let model = CostModel::with_unit_seconds(APPLY_SECONDS);
    let mut batches = 0u64;
    let mut ops_batched = 0u64;
    let loads: Vec<NodeLoad> = (0..nodes)
        .map(|n| {
            let before = rts_before[n];
            let after = rts_after[n];
            let node_net = net_delta.node(NodeId::from(n));
            batches += after.batches_sent - before.batches_sent;
            ops_batched += after.ops_batched - before.ops_batched;
            NodeLoad {
                // Per-op applies out of batches, at the marginal apply cost.
                work_units: after.batch_ops_applied - before.batch_ops_applied,
                // Per-message protocol-handling events, at full cost.
                updates_handled: after.updates_applied - before.updates_applied,
                // Messages shipped (a batch counts once).
                ops_shipped: (after.broadcast_writes + after.remote_writes)
                    - (before.broadcast_writes + before.remote_writes),
                rpcs: (after.remote_reads + after.remote_writes)
                    - (before.remote_reads + before.remote_writes),
                interrupts: node_net.interrupts,
                wire_bytes: node_net.bytes_sent,
            }
        })
        .collect();
    let bottleneck_seconds = loads
        .iter()
        .map(|load| model.node_time(load))
        .fold(f64::MIN_POSITIVE, f64::max);
    let total_ops = (nodes * ops_per_node) as f64;
    // Recorded (not modeled) latency split of the asynchronous path: how
    // long submissions sat in the queue before their round was cut, and
    // how long the round took to execute. The telemetry hub is per-run, so
    // these histograms cover exactly this (strategy, depth) point.
    let telemetry = runtime.telemetry().registry().snapshot();
    let queue = telemetry
        .hists
        .get("rts.pipeline.queue_ns")
        .cloned()
        .unwrap_or_else(orca_telemetry::HistSnapshot::empty);
    let service = telemetry
        .hists
        .get("rts.pipeline.service_ns")
        .cloned()
        .unwrap_or_else(orca_telemetry::HistSnapshot::empty);
    let row = PipelineRow {
        strategy: name,
        depth,
        nodes,
        ops_per_node,
        batches,
        coalescing: if batches == 0 {
            0.0
        } else {
            ops_batched as f64 / batches as f64
        },
        bottleneck_seconds,
        ops_per_sec: total_ops / bottleneck_seconds,
        elapsed,
        queue_p50_ns: queue.p50(),
        queue_p99_ns: queue.p99(),
        queue_p999_ns: queue.p999(),
        service_p50_ns: service.p50(),
        service_p99_ns: service.p99(),
        service_p999_ns: service.p999(),
    };
    runtime.shutdown();
    row
}

/// Throughput ratio between the runs of `strategy` at depths `to` and
/// `from` (`None` if either point is missing).
pub fn speedup(rows: &[PipelineRow], strategy: &str, from: usize, to: usize) -> Option<f64> {
    let base = rows
        .iter()
        .find(|r| r.strategy == strategy && r.depth == from)?;
    let target = rows
        .iter()
        .find(|r| r.strategy == strategy && r.depth == to)?;
    Some(target.ops_per_sec / base.ops_per_sec)
}

/// Format the sweep as a text table.
pub fn format_table(rows: &[PipelineRow]) -> String {
    let mut out =
        String::from("# Pipelined async invocations: JobQueue write throughput vs depth\n");
    out.push_str(
        "strategy        depth  total_ops  batches  ops/batch  bottleneck_ms  ops/sec  \
         queue_p50_us  queue_p99_us  svc_p50_us  svc_p99_us  wall_ms\n",
    );
    for row in rows {
        out.push_str(&format!(
            "{:<15} {:>5}  {:>9}  {:>7}  {:>9.1}  {:>13.1}  {:>7.0}  {:>12.1}  {:>12.1}  {:>10.1}  {:>10.1}  {:>7.1}\n",
            row.strategy,
            row.depth,
            row.nodes * row.ops_per_node,
            row.batches,
            row.coalescing,
            row.bottleneck_seconds * 1000.0,
            row.ops_per_sec,
            row.queue_p50_ns as f64 / 1000.0,
            row.queue_p99_ns as f64 / 1000.0,
            row.service_p50_ns as f64 / 1000.0,
            row.service_p99_ns as f64 / 1000.0,
            row.elapsed.as_secs_f64() * 1000.0,
        ));
    }
    for (name, _) in strategies() {
        if let Some(ratio) = speedup(rows, name, 1, 16) {
            out.push_str(&format!(
                "write-throughput speedup depth 1 -> 16 ({name}): {ratio:.2}x\n"
            ));
        }
    }
    out
}

/// Serialize the sweep as the `BENCH_pipeline.json` trajectory record
/// (hand-rolled: the workspace has no JSON dependency).
pub fn to_json(rows: &[PipelineRow]) -> String {
    let mut out = String::from(
        "{\n  \"bench\": \"pipeline\",\n  \"workload\": \"jobqueue_add_async\",\n  \"results\": [\n",
    );
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"strategy\": \"{}\", \"depth\": {}, \"nodes\": {}, \"ops_per_node\": {}, \"batches\": {}, \"ops_per_batch\": {:.2}, \"bottleneck_ms\": {:.3}, \"ops_per_sec\": {:.1}, \"queue_p50_ns\": {}, \"queue_p99_ns\": {}, \"queue_p999_ns\": {}, \"service_p50_ns\": {}, \"service_p99_ns\": {}, \"service_p999_ns\": {}, \"wall_ms\": {:.3}}}{}\n",
            row.strategy,
            row.depth,
            row.nodes,
            row.ops_per_node,
            row.batches,
            row.coalescing,
            row.bottleneck_seconds * 1000.0,
            row.ops_per_sec,
            row.queue_p50_ns,
            row.queue_p99_ns,
            row.queue_p999_ns,
            row.service_p50_ns,
            row.service_p99_ns,
            row.service_p999_ns,
            row.elapsed.as_secs_f64() * 1000.0,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    let mut ratios = Vec::new();
    for (name, _) in strategies() {
        let ratio = speedup(rows, name, 1, 16).unwrap_or(0.0);
        ratios.push(format!("    \"{name}\": {ratio:.3}"));
    }
    out.push_str("  \"speedup_depth_1_to_16\": {\n");
    out.push_str(&ratios.join(",\n"));
    out.push_str("\n  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_runs_and_serializes() {
        // Small configuration: correctness of the harness, not performance.
        let rows = pipeline_throughput(2, 16, &[1, 4]);
        assert_eq!(rows.len(), strategies().len() * 2);
        assert!(rows.iter().all(|r| r.ops_per_sec > 0.0));
        assert!(rows.iter().all(|r| r.batches > 0));
        let json = to_json(&rows);
        assert!(json.contains("\"bench\": \"pipeline\""));
        assert!(json.contains("speedup_depth_1_to_16"));
        assert!(json.contains("queue_p99_ns"));
        assert!(json.contains("service_p999_ns"));
        // Percentiles are recorded, not modeled: the histograms saw the
        // run's real submissions, so the counts cannot be all-zero.
        assert!(
            rows.iter().all(|r| r.service_p50_ns > 0),
            "service histogram never recorded: {rows:?}"
        );
        let table = format_table(&rows);
        assert!(table.contains("strategy"));
        assert!(speedup(&rows, "broadcast", 1, 16).is_none());
        assert!(speedup(&rows, "broadcast", 1, 4).is_some());
    }

    #[test]
    fn deeper_pipelines_coalesce_more_ops_per_batch() {
        let rows = pipeline_throughput(2, 32, &[1, 16]);
        for (name, _) in strategies() {
            let shallow = rows
                .iter()
                .find(|r| r.strategy == name && r.depth == 1)
                .unwrap();
            let deep = rows
                .iter()
                .find(|r| r.strategy == name && r.depth == 16)
                .unwrap();
            assert!(
                deep.coalescing > shallow.coalescing,
                "{name}: depth 16 {:?} must coalesce more than depth 1 {:?}",
                deep,
                shallow
            );
            assert!(
                deep.bottleneck_seconds < shallow.bottleneck_seconds,
                "{name}: depth 16 {:?} must beat depth 1 {:?}",
                deep,
                shallow
            );
        }
    }
}
