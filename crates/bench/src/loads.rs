//! Mapping measured run statistics onto per-node loads for the cost model.

use orca_amoeba::NetStatsSnapshot;
use orca_apps::ParallelRunReport;
use orca_core::OrcaRuntime;
use orca_perf::NodeLoad;
use orca_rts::RtsStatsSnapshot;

/// Build the per-node [`NodeLoad`]s of a finished parallel run.
///
/// Workers are placed round-robin (worker `i` on node `i % processors`, the
/// placement `replicated_workers` uses), so each worker's application work is
/// charged to its node; the runtime-system and network statistics are already
/// per node.
pub fn node_loads(
    processors: usize,
    report: &ParallelRunReport,
    rts: &[RtsStatsSnapshot],
    net: &NetStatsSnapshot,
) -> Vec<NodeLoad> {
    let mut loads = vec![NodeLoad::default(); processors];
    for (worker, work) in report.per_worker.iter().enumerate() {
        loads[worker % processors].work_units += work.units;
    }
    for (node, load) in loads.iter_mut().enumerate() {
        if let Some(stats) = rts.get(node) {
            load.updates_handled = stats.updates_applied;
            load.ops_shipped = stats.broadcast_writes + stats.remote_writes;
            load.rpcs = stats.remote_reads + stats.remote_writes + stats.copies_fetched;
        }
        if let Some(stats) = net.per_node.get(node) {
            load.interrupts = stats.interrupts;
            load.wire_bytes = stats.bytes_sent;
        }
    }
    loads
}

/// Convenience: collect loads straight from a runtime after a run.
pub fn loads_from_runtime(runtime: &OrcaRuntime, report: &ParallelRunReport) -> Vec<NodeLoad> {
    node_loads(
        runtime.processors(),
        report,
        &runtime.rts_stats(),
        &runtime.network_stats(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use orca_apps::WorkerWork;

    #[test]
    fn work_is_charged_to_the_right_node() {
        let report = ParallelRunReport::new(vec![
            WorkerWork { units: 10, jobs: 1 },
            WorkerWork { units: 20, jobs: 1 },
            WorkerWork { units: 30, jobs: 1 },
        ]);
        let loads = node_loads(2, &report, &[], &NetStatsSnapshot::default());
        assert_eq!(loads.len(), 2);
        assert_eq!(loads[0].work_units, 10 + 30); // workers 0 and 2
        assert_eq!(loads[1].work_units, 20);
    }
}
