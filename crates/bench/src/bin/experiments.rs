//! Run every experiment of the paper's evaluation section and print the
//! regenerated tables (the numbers recorded in EXPERIMENTS.md).
//!
//! ```text
//! cargo run --release -p orca-bench --bin experiments
//! ```

use orca_bench::{adaptive, protocols, rtscompare, speedup};
use orca_perf::format_speedup_table;

fn main() {
    println!("== Orca shared data-object reproduction: full experiment run ==\n");

    println!(
        "{}",
        protocols::format_table(&protocols::pb_vs_bb(
            16,
            &[64, 1024, 4096, 16384, 65536],
            10
        ))
    );

    println!(
        "{}",
        rtscompare::format_table(&rtscompare::rts_comparison(4, 150, &[0.5, 0.9, 0.99]))
    );

    println!(
        "{}",
        adaptive::format_table(&adaptive::adaptive_comparison(6, 192))
    );

    println!("{}", format_speedup_table(&speedup::tsp_speedup()));
    println!("{}", format_speedup_table(&speedup::acp_speedup()));
    println!("{}", format_speedup_table(&speedup::chess_speedup()));

    println!("# §4.3: shared vs local search tables (8 workers)");
    println!("tables         nodes_searched  est_seconds");
    for (name, nodes, seconds) in speedup::chess_tables() {
        println!("{name:<14} {nodes:>14}  {seconds:>11.3}");
    }
    println!();

    let (plain, with_sim, abs_ratio) = speedup::atpg_speedup();
    println!("{}", format_speedup_table(&plain));
    println!("{}", format_speedup_table(&with_sim));
    println!("# §4.4: absolute-time ratio (no fault simulation / fault simulation) at 16 procs: {abs_ratio:.2}x");
}
