//! Emit a metrics-registry snapshot from a tiny real workload, for the CI
//! telemetry lane.
//!
//! Drives a handful of synchronous and pipelined-asynchronous invocations
//! through the full stack so every always-on instrument records something —
//! network counters, per-node RTS counters, the invoke/queue/service
//! latency histograms — then writes `Registry::snapshot().to_json()` to the
//! given path (default `target/telemetry_smoke.json`). A second, leased
//! primary-copy runtime contributes the `rts.lease.*` counters (grants and
//! zero-message local reads) merged into the same document.
//! `scripts/check_telemetry.py` validates the emitted document.
//!
//! Usage: `telemetry_smoke [output.json]`

use orca_core::objects::{IntObject, IntOp, JobQueue, JobQueueOp};
use orca_core::{standard_registry, BatchPolicy, OrcaConfig, OrcaRuntime, RtsStrategy};
use orca_rts::{ReplicationPolicy, WritePolicy};
use orca_wire::Wire;

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/telemetry_smoke.json".to_string());
    let config = OrcaConfig::broadcast(2).with_batch(BatchPolicy {
        max_batch: 4,
        max_delay: std::time::Duration::from_micros(500),
    });
    let runtime = OrcaRuntime::start(config, standard_registry());
    let queue: JobQueue<u64> = JobQueue::create(runtime.main()).unwrap();
    let ctx = runtime.context(1);
    // The pipelined path feeds the queue-wait and service histograms.
    for window in 0..4u64 {
        let ops: Vec<JobQueueOp> = (0..4u64)
            .map(|i| JobQueueOp::AddJob((window * 4 + i).to_bytes()))
            .collect();
        for future in &ctx.invoke_many(queue.handle(), &ops) {
            future.wait().unwrap();
        }
    }
    // The synchronous path feeds the invoke histogram. Close first so the
    // final `get` returns `None` instead of blocking on an open queue.
    queue.close(runtime.main()).unwrap();
    let mut drained = 0u32;
    while queue.get(ctx).unwrap().is_some() {
        drained += 1;
    }
    assert_eq!(drained, 16, "smoke workload lost jobs");
    let mut snapshot = runtime.telemetry().registry().snapshot();
    // The broadcast runtime grants no read leases; a tiny leased
    // primary-copy phase populates the `rts.lease.*` counters, merged into
    // the same document for the validator.
    let lease_cfg = OrcaConfig {
        strategy: RtsStrategy::PrimaryCopy {
            policy: WritePolicy::Update,
            replication: ReplicationPolicy {
                fetch_ratio: 0.0,
                drop_ratio: -1.0,
                window: 1,
                enabled: true,
                read_lease_ms: 60_000,
            },
        },
        ..OrcaConfig::broadcast(2)
    };
    let leased = OrcaRuntime::start(lease_cfg, standard_registry());
    let counter = leased.create::<IntObject>(&0).unwrap();
    let reader = leased.context(1);
    for _ in 0..8 {
        reader.invoke(counter, &IntOp::Value).unwrap();
    }
    leased.main().invoke(counter, &IntOp::Add(1)).unwrap();
    for _ in 0..8 {
        reader.invoke(counter, &IntOp::Value).unwrap();
    }
    let lease_snap = leased.telemetry().registry().snapshot();
    for (name, value) in &lease_snap.counters {
        if name.starts_with("rts.lease.") {
            *snapshot.counters.entry(name.clone()).or_insert(0) += value;
        }
    }
    leased.shutdown();
    let events = runtime.telemetry().flight_events().len();
    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).unwrap();
    }
    std::fs::write(&out, snapshot.to_json()).unwrap_or_else(|err| panic!("writing {out}: {err}"));
    println!(
        "wrote {out}: {} counters, {} gauges, {} histograms; flight recorder holds {events} events",
        snapshot.counters.len(),
        snapshot.gauges.len(),
        snapshot.hists.len(),
    );
    runtime.shutdown();
}
