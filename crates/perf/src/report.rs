//! Speedup series and table formatting for the benchmark harness.

/// One point of a speedup curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupPoint {
    /// Number of processors used.
    pub processors: usize,
    /// Estimated speedup relative to the sequential program.
    pub speedup: f64,
    /// Estimated elapsed seconds of the parallel run.
    pub seconds: f64,
}

/// A named speedup curve (one per figure).
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedupSeries {
    /// Name shown in the table header (e.g. "TSP, 14 cities").
    pub name: String,
    /// Points, ordered by processor count.
    pub points: Vec<SpeedupPoint>,
}

impl SpeedupSeries {
    /// Create a named series.
    pub fn new(name: impl Into<String>, points: Vec<SpeedupPoint>) -> Self {
        SpeedupSeries {
            name: name.into(),
            points,
        }
    }

    /// Speedup at a given processor count, if measured.
    pub fn speedup_at(&self, processors: usize) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.processors == processors)
            .map(|p| p.speedup)
    }

    /// Parallel efficiency (speedup / processors) at a processor count.
    pub fn efficiency_at(&self, processors: usize) -> Option<f64> {
        self.speedup_at(processors).map(|s| s / processors as f64)
    }
}

/// Render a speedup series as the text table the benchmark binaries print
/// (paper-style: processors, speedup, efficiency, estimated seconds).
pub fn format_speedup_table(series: &SpeedupSeries) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {}\n", series.name));
    out.push_str("procs  speedup  efficiency  est_seconds\n");
    for point in &series.points {
        out.push_str(&format!(
            "{:>5}  {:>7.2}  {:>10.2}  {:>11.3}\n",
            point.processors,
            point.speedup,
            point.speedup / point.processors as f64,
            point.seconds
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SpeedupSeries {
        SpeedupSeries::new(
            "TSP",
            vec![
                SpeedupPoint {
                    processors: 1,
                    speedup: 0.98,
                    seconds: 100.0,
                },
                SpeedupPoint {
                    processors: 16,
                    speedup: 14.2,
                    seconds: 7.0,
                },
            ],
        )
    }

    #[test]
    fn lookups() {
        let series = sample();
        assert_eq!(series.speedup_at(16), Some(14.2));
        assert_eq!(series.speedup_at(3), None);
        assert!((series.efficiency_at(16).unwrap() - 14.2 / 16.0).abs() < 1e-9);
    }

    #[test]
    fn table_contains_every_point() {
        let table = format_speedup_table(&sample());
        assert!(table.contains("# TSP"));
        assert!(table.contains("   16"));
        assert!(table.contains("14.20"));
        assert_eq!(table.lines().count(), 4);
    }
}
