//! Calibrated performance model for regenerating the paper's figures.
//!
//! The paper's measurements were taken on 16 MC68030 processors connected by
//! a 10 Mb/s Ethernet running Amoeba. This environment executes the same
//! algorithms and protocols in-process and *counts* what happened — work
//! units per worker, operations shipped, update messages handled per node,
//! bytes on the wire. This crate converts those counts into estimated
//! per-node times on the paper's hardware and from them the speedup curves
//! of Figs. 2 and 3 and the chess/ATPG numbers of §4.3–4.4.
//!
//! The constants are calibrated to published Amoeba-era numbers (null RPC
//! ≈ 1.1 ms user-to-user, reliable totally-ordered broadcast ≈ 2.5 ms,
//! 10 Mb/s ≈ 0.8 µs per byte on the wire); the *application* work per unit
//! differs per program and is supplied by the benchmark harness. What the
//! model does **not** do is assume the answer: work distribution, search
//! overhead, message counts and load imbalance all come from the measured
//! run, so the shape of each curve is produced by the reproduced system, not
//! by these constants.

pub mod model;
pub mod report;

pub use model::{CostModel, NodeLoad};
pub use report::{format_speedup_table, SpeedupPoint, SpeedupSeries};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_parallelism_gives_linear_speedup() {
        let model = CostModel::default();
        // Enough work that the fixed start-up cost is negligible, as it is in
        // the paper's minutes-long application runs.
        let sequential_units = 1_600_000u64;
        let mut points = Vec::new();
        for p in [1usize, 2, 4, 8, 16] {
            let loads: Vec<NodeLoad> = (0..p)
                .map(|_| NodeLoad {
                    work_units: sequential_units / p as u64,
                    ..NodeLoad::default()
                })
                .collect();
            let t_par = model.makespan(&loads);
            let t_seq = model.sequential_time(sequential_units);
            points.push(SpeedupPoint {
                processors: p,
                speedup: t_seq / t_par,
                seconds: t_par,
            });
        }
        assert!((points[0].speedup - 1.0).abs() < 0.05);
        assert!(points[4].speedup > 14.0, "speedup {}", points[4].speedup);
    }

    #[test]
    fn communication_overhead_bends_the_curve() {
        let model = CostModel::default();
        let sequential_units = 16_000u64;
        let mut speedups = Vec::new();
        for p in [1usize, 8, 16] {
            let loads: Vec<NodeLoad> = (0..p)
                .map(|_| NodeLoad {
                    work_units: sequential_units / p as u64,
                    updates_handled: 2_000, // heavy replicated-object traffic
                    ..NodeLoad::default()
                })
                .collect();
            let t_par = model.makespan(&loads);
            speedups.push(model.sequential_time(sequential_units) / t_par);
        }
        assert!(speedups[2] < 14.0);
        assert!(speedups[2] > speedups[1] * 0.8);
    }
}
