//! The cost model proper.

/// Per-node load measured during a parallel run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeLoad {
    /// Application work units executed by processes on this node.
    pub work_units: u64,
    /// Remote operations (other nodes' writes) applied to this node's
    /// replicas by its object manager.
    pub updates_handled: u64,
    /// Operations this node shipped (broadcast writes or RPCs to a primary).
    pub ops_shipped: u64,
    /// RPC round trips this node initiated (point-to-point runtime system).
    pub rpcs: u64,
    /// Network interrupts taken by this node.
    pub interrupts: u64,
    /// Bytes this node put on the wire.
    pub wire_bytes: u64,
}

/// Hardware/protocol cost constants (MC68030 + 10 Mb/s Ethernet + Amoeba).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Seconds of CPU per application work unit (supplied per application by
    /// the benchmark harness; the default corresponds to a fine-grained unit
    /// such as one branch-and-bound node).
    pub unit_seconds: f64,
    /// CPU seconds a node spends handling one incoming update (interrupt,
    /// protocol processing, lock, apply).
    pub update_handle_seconds: f64,
    /// Seconds of latency/CPU for shipping one operation (request leg of the
    /// broadcast or the RPC send path).
    pub op_ship_seconds: f64,
    /// Seconds per RPC round trip (Amoeba user-to-user null RPC ≈ 1.1 ms
    /// plus marshalling).
    pub rpc_seconds: f64,
    /// Seconds per interrupt not otherwise accounted (short packets).
    pub interrupt_seconds: f64,
    /// Seconds per byte on the 10 Mb/s Ethernet (≈ 0.8 µs/byte).
    pub wire_seconds_per_byte: f64,
    /// Fixed start-up cost of a parallel run (process creation, object
    /// creation broadcasts).
    pub startup_seconds: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            unit_seconds: 100e-6,
            update_handle_seconds: 1.3e-3,
            op_ship_seconds: 0.4e-3,
            rpc_seconds: 1.4e-3,
            interrupt_seconds: 0.05e-3,
            wire_seconds_per_byte: 0.8e-6,
            startup_seconds: 0.05,
        }
    }
}

impl CostModel {
    /// Model with an application-specific work-unit cost.
    pub fn with_unit_seconds(unit_seconds: f64) -> Self {
        CostModel {
            unit_seconds,
            ..CostModel::default()
        }
    }

    /// Estimated CPU-seconds one node spends for the given load.
    pub fn node_time(&self, load: &NodeLoad) -> f64 {
        load.work_units as f64 * self.unit_seconds
            + load.updates_handled as f64 * self.update_handle_seconds
            + load.ops_shipped as f64 * self.op_ship_seconds
            + load.rpcs as f64 * self.rpc_seconds
            + load.interrupts as f64 * self.interrupt_seconds
            + load.wire_bytes as f64 * self.wire_seconds_per_byte
    }

    /// Estimated elapsed time of a parallel run: the busiest node plus the
    /// fixed start-up cost.
    pub fn makespan(&self, loads: &[NodeLoad]) -> f64 {
        let busiest = loads
            .iter()
            .map(|load| self.node_time(load))
            .fold(0.0, f64::max);
        self.startup_seconds + busiest
    }

    /// Estimated time of the sequential program doing `units` work units
    /// (no communication, no start-up).
    pub fn sequential_time(&self, units: u64) -> f64 {
        units as f64 * self.unit_seconds
    }

    /// Speedup of a parallel run relative to the sequential time.
    pub fn speedup(&self, sequential_units: u64, loads: &[NodeLoad]) -> f64 {
        self.sequential_time(sequential_units) / self.makespan(loads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_time_is_sum_of_components() {
        let model = CostModel {
            unit_seconds: 1.0,
            update_handle_seconds: 10.0,
            op_ship_seconds: 100.0,
            rpc_seconds: 1000.0,
            interrupt_seconds: 0.0,
            wire_seconds_per_byte: 0.0,
            startup_seconds: 0.0,
        };
        let load = NodeLoad {
            work_units: 2,
            updates_handled: 3,
            ops_shipped: 1,
            rpcs: 1,
            interrupts: 99,
            wire_bytes: 99,
        };
        assert!((model.node_time(&load) - (2.0 + 30.0 + 100.0 + 1000.0)).abs() < 1e-9);
    }

    #[test]
    fn makespan_is_driven_by_the_busiest_node() {
        let model = CostModel::with_unit_seconds(1e-3);
        let loads = vec![
            NodeLoad {
                work_units: 100,
                ..NodeLoad::default()
            },
            NodeLoad {
                work_units: 500,
                ..NodeLoad::default()
            },
        ];
        let expected = model.startup_seconds + 0.5;
        assert!((model.makespan(&loads) - expected).abs() < 1e-9);
    }

    #[test]
    fn speedup_of_a_single_node_run_is_below_one_due_to_startup() {
        let model = CostModel::default();
        let loads = vec![NodeLoad {
            work_units: 1000,
            ..NodeLoad::default()
        }];
        assert!(model.speedup(1000, &loads) < 1.0);
    }
}
