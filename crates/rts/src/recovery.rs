//! Crash-recovery configuration shared by the runtime systems.
//!
//! Every runtime system can be started *recoverable*
//! (`start_recoverable`): a heartbeat [`FailureDetector`]
//! (`orca-group::failure`) watches the membership, and when a node is
//! declared dead the backend runs its re-homing protocol so the dead
//! node's objects keep being served by survivors:
//!
//! * **Primary copy** — a coordinator (the lowest live node) collects the
//!   surviving secondary copies of every orphaned object, promotes the
//!   freshest one to the new primary, and publishes the re-homing to all
//!   survivors. An object with no surviving copy is declared *lost*
//!   ([`crate::RtsError::ObjectLost`]).
//! * **Sharded** — every partition is backed up on a second node (the
//!   owner ships each completed write to its backup before
//!   acknowledging); a dead owner's partitions are re-owned by promoting
//!   their backups, and a dead *home* node's routing table is rebuilt by
//!   the lowest live node from the survivors' reports.
//! * **Adaptive** — a dead home node's object is regenerated from the
//!   freshest surviving read mirror (replicated regime); without any
//!   mirror it is lost.
//! * **Broadcast** — needs no per-object re-homing at all: every replica
//!   is everywhere, and a dead *sequencer* is handled inside the group
//!   layer by election + history replay.
//!
//! With [`RecoveryConfig::rehome`] disabled (see
//! [`RecoveryConfig::detect_only`]) the detector still runs and
//! operations aimed at a dead node fail fast with
//! [`crate::RtsError::NodeDown`] instead of waiting out the full
//! operation deadline — the distinguishable "killed, not slow" error.

use std::sync::Arc;
use std::time::{Duration, Instant};

use orca_amoeba::network::NetworkHandle;
use orca_amoeba::node::Port;
use orca_amoeba::rpc::{rpc_call_abortable, RpcError};
use orca_amoeba::NodeId;
use orca_group::{FailureConfig, FailureDetector, ViewSnapshot};

use crate::RtsError;

/// Knobs of the crash-recovery subsystem (surfaced as
/// `OrcaConfig::recovery` in `orca-core`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Master switch: when false, no failure detector runs, no backups are
    /// shipped, and node failures surface as plain timeouts (the
    /// pre-recovery behavior).
    pub enabled: bool,
    /// When true, objects orphaned by a failure are re-homed onto
    /// survivors; when false the detector only provides fail-fast
    /// [`crate::RtsError::NodeDown`] errors.
    pub rehome: bool,
    /// Heartbeat interval of the failure detector.
    pub heartbeat_every: Duration,
    /// Heartbeat intervals of silence before a node is declared dead.
    pub suspect_after: u32,
    /// Per-attempt cap on RPCs while recovery is enabled: a call to a node
    /// that has (or may have) died is re-tried in slices of this length so
    /// the caller re-checks the membership view between attempts instead
    /// of sleeping through its whole deadline on a corpse.
    pub attempt_timeout: Duration,
    /// How long an invocation blocked on a dead node waits for the
    /// re-homing protocol to publish a new home before giving up with
    /// [`crate::RtsError::NodeDown`].
    pub rehome_wait: Duration,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig::disabled()
    }
}

impl RecoveryConfig {
    /// Recovery switched off entirely (the default; zero overhead).
    pub fn disabled() -> Self {
        RecoveryConfig {
            enabled: false,
            rehome: false,
            heartbeat_every: Duration::from_millis(50),
            suspect_after: 6,
            attempt_timeout: Duration::from_secs(1),
            rehome_wait: Duration::from_secs(5),
        }
    }

    /// Full recovery with default timing.
    pub fn enabled() -> Self {
        RecoveryConfig {
            enabled: true,
            rehome: true,
            ..RecoveryConfig::disabled()
        }
    }

    /// Failure detection only: operations aimed at a dead node fail fast
    /// with [`crate::RtsError::NodeDown`], but nothing is re-homed.
    pub fn detect_only() -> Self {
        RecoveryConfig {
            enabled: true,
            rehome: false,
            ..RecoveryConfig::disabled()
        }
    }

    /// Full recovery with aggressive timing for tests (fast heartbeats,
    /// short attempt slices).
    pub fn fast() -> Self {
        RecoveryConfig {
            enabled: true,
            rehome: true,
            heartbeat_every: Duration::from_millis(20),
            suspect_after: 4,
            attempt_timeout: Duration::from_millis(250),
            rehome_wait: Duration::from_secs(10),
        }
    }

    /// The failure-detector configuration these knobs describe.
    pub fn failure_config(&self) -> FailureConfig {
        FailureConfig {
            heartbeat_every: self.heartbeat_every,
            suspect_after: self.suspect_after,
        }
    }
}

/// The node that adopts the home/coordination role of `creator` once it is
/// dead: the lowest live node of the view. Deterministic given the view,
/// so every survivor redirects to the same adopter without coordination.
pub fn recovery_home(view: &ViewSnapshot) -> Option<NodeId> {
    view.coordinator()
}

/// Resolve the failure detector a recoverable backend should run with:
/// the shared one when the caller provided it, a freshly started one when
/// recovery is enabled but none was passed, none otherwise.
pub fn ensure_detector(
    handle: &NetworkHandle,
    recovery: &RecoveryConfig,
    detector: Option<Arc<FailureDetector>>,
) -> Option<Arc<FailureDetector>> {
    match (detector, recovery.enabled) {
        (Some(detector), true) => Some(detector),
        (None, true) => Some(FailureDetector::start(
            handle.clone(),
            recovery.failure_config(),
        )),
        _ => None,
    }
}

/// True when `detector` is present and declares `node` dead.
pub fn is_dead(detector: &Option<Arc<FailureDetector>>, node: NodeId) -> bool {
    detector
        .as_ref()
        .map(|d| !d.is_alive(node))
        .unwrap_or(false)
}

/// Recovery-aware RPC: refuses to call a node already declared dead
/// ([`RtsError::NodeDown`]), sends the request exactly once, and — while
/// waiting for the reply — re-checks the failure detector every
/// [`RecoveryConfig::attempt_timeout`] so the caller stops waiting on a
/// corpse as soon as it is declared, instead of sleeping out the full
/// deadline. Without a detector this degrades to a plain deadline-bounded
/// call.
pub fn recovery_rpc(
    handle: &NetworkHandle,
    detector: &Option<Arc<FailureDetector>>,
    recovery: &RecoveryConfig,
    dst: NodeId,
    port: Port,
    body: Vec<u8>,
    deadline: Instant,
) -> Result<Vec<u8>, RtsError> {
    if is_dead(detector, dst) {
        return Err(RtsError::NodeDown(dst));
    }
    let remaining = deadline.saturating_duration_since(Instant::now());
    if remaining.is_zero() {
        return Err(RtsError::Timeout);
    }
    let poll = if recovery.enabled && detector.is_some() {
        recovery.attempt_timeout.min(remaining)
    } else {
        remaining
    };
    let dead = || is_dead(detector, dst);
    match rpc_call_abortable(handle, dst, port, body, remaining, poll, &dead) {
        Ok(bytes) => Ok(bytes),
        Err(RpcError::Aborted) => Err(RtsError::NodeDown(dst)),
        Err(RpcError::Timeout) => Err(if dead() {
            RtsError::NodeDown(dst)
        } else {
            RtsError::Timeout
        }),
        Err(other) => Err(RtsError::Communication(other.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_presets() {
        assert!(!RecoveryConfig::disabled().enabled);
        assert!(RecoveryConfig::enabled().rehome);
        let detect = RecoveryConfig::detect_only();
        assert!(detect.enabled && !detect.rehome);
        let fast = RecoveryConfig::fast();
        assert!(fast.enabled && fast.rehome);
        assert!(fast.failure_config().heartbeat_every <= Duration::from_millis(20));
    }

    #[test]
    fn ensure_detector_only_when_enabled() {
        let net = orca_amoeba::network::Network::reliable(2);
        assert!(
            ensure_detector(&net.handle(NodeId(0)), &RecoveryConfig::disabled(), None).is_none()
        );
        let started = ensure_detector(&net.handle(NodeId(0)), &RecoveryConfig::detect_only(), None);
        assert!(started.is_some());
        let shared = ensure_detector(
            &net.handle(NodeId(1)),
            &RecoveryConfig::detect_only(),
            started.clone(),
        );
        assert!(Arc::ptr_eq(
            started.as_ref().unwrap(),
            shared.as_ref().unwrap()
        ));
    }
}
