//! Shared-object runtime systems.
//!
//! The runtime system (RTS) is the piece of system software that makes
//! replicated shared data-objects look like they live in one big shared
//! memory (§3.2 of the paper). Three very different runtime systems are
//! implemented here behind one common interface:
//!
//! * [`BroadcastRts`] — used when the network supports (hardware)
//!   broadcasting. Every object is fully replicated on all nodes. Read
//!   operations execute on the local replica without any communication;
//!   write operations are shipped (operation code + parameters) through the
//!   totally-ordered reliable broadcast of `orca-group` and applied by every
//!   node's object manager in exactly the same order, which yields
//!   sequential consistency.
//! * [`PrimaryCopyRts`] — used when there is no broadcast. Each object has a
//!   primary copy on its creating node and zero or more secondary copies.
//!   Writes are sent to the primary, which either **invalidates** all
//!   secondaries or pushes a **two-phase update** to them
//!   ([`WritePolicy`]). Secondary copies are created and discarded
//!   dynamically, driven by each node's read/write ratio for the object
//!   ([`ReplicationPolicy`]).
//! * [`ShardedRts`] — scales *writes*. Shardable objects are split into `N`
//!   partitions hashed across nodes, each partition owned by one node;
//!   operations are shipped point-to-point to the partition owner, so
//!   writes to different partitions of the same object proceed in parallel
//!   on different nodes. Hot partitions can migrate between owners. Types
//!   without partitioning logic transparently fall back to primary-copy
//!   semantics.
//! * [`AdaptiveRts`] — makes the regime a *per-object, dynamic* property.
//!   Each object is served, at any moment, in one of three regimes —
//!   replicated with ordered updates (read-dominated), primary copy
//!   (mixed), sharded (write-hot shardable) — and the object's home node
//!   switches regimes at runtime from the decayed per-node read/write
//!   counts every node reports. Nodes agree on the serving regime through
//!   an epoch in the home's regime table (leased caches, `StaleRegime`
//!   replies); a switch drains the old regime's replicas with the sharded
//!   hand-off's withdrawn-mark discipline, merges partition states where
//!   needed, and installs the new regime under the next epoch, so no
//!   write is lost or double-applied across a change.
//!
//! The four trade consistency machinery against communication very
//! differently:
//!
//! | RTS | Replication | Write path | Consistency |
//! |-----|-------------|-----------|-------------|
//! | broadcast | full (every node) | totally-ordered broadcast, applied everywhere | sequential, object-wide |
//! | primary copy (invalidate / update) | primary + dynamic secondaries | RPC to primary, then invalidate or 2-phase update of secondaries | sequential, object-wide |
//! | sharded | partitioned, one owner per partition | point-to-point RPC to the partition owner | sequential *per partition* |
//! | adaptive | per object: full mirrors, home copy, or partitions | per object: RPC to home (+ ordered update push to mirrors) or RPC to partition owner | sequential per object (per partition while sharded) |
//!
//! Of the standard object library, the job queue, key-value table, set and
//! boolean array shard; the integer, boolean flag and barrier do not (they
//! are single atomic values) and run under the sharded RTS with
//! primary-copy fallback semantics (the adaptive RTS only ever offers them
//! the replicated and primary regimes). With one partition the sharded RTS
//! is observationally identical to the primary-copy RTS — the cross-RTS
//! conformance suite (`tests/conformance.rs`) checks all of this, and runs
//! the adaptive system with eager thresholds so regimes switch *during*
//! the conformance workload.
//!
//! All four implement [`RuntimeSystem`], which is what the Orca layer
//! (`orca-core`) programs against.

#![warn(missing_docs)]

pub mod adaptive;
pub mod broadcast_rts;
pub mod pipeline;
pub mod primary;
pub mod recovery;
#[doc(hidden)]
pub mod sabotage;
pub mod sharded;
pub mod stats;

pub use adaptive::{AdaptivePolicy, AdaptiveRts};
pub use broadcast_rts::BroadcastRts;
pub use orca_group::{FailureConfig, FailureDetector, ViewSnapshot};
pub use orca_wire::RegimeKind;
pub use pipeline::{BatchPolicy, PendingInvocation};
pub use primary::{PrimaryCopyRts, ReplicationPolicy, WritePolicy};
pub use recovery::RecoveryConfig;
pub use sharded::{ShardPlacement, ShardPolicy, ShardedRts};
pub use stats::{AccessStats, RtsStats, RtsStatsSnapshot};

use orca_amoeba::NodeId;
use orca_object::{ObjectError, ObjectId, OpKind};

/// Errors surfaced by the runtime systems.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtsError {
    /// Problem with the object itself (unknown type, codec failure, ...).
    Object(ObjectError),
    /// The group-communication or RPC layer failed.
    Communication(String),
    /// The runtime system has been shut down.
    Terminated,
    /// An invocation did not complete within its deadline.
    Timeout,
    /// The invocation depended on a node the failure detector has declared
    /// dead (and, if re-homing is enabled, recovery did not produce a new
    /// home within the caller's deadline). Distinguishable from
    /// [`RtsError::Timeout`]: the node is *known killed*, not just slow.
    NodeDown(NodeId),
    /// The object's state did not survive a node failure: its
    /// authoritative copy lived on a dead node and no replica, mirror or
    /// backup survived anywhere. Operations on it can never succeed.
    ObjectLost(ObjectId),
}

impl std::fmt::Display for RtsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RtsError::Object(err) => write!(f, "object error: {err}"),
            RtsError::Communication(msg) => write!(f, "communication error: {msg}"),
            RtsError::Terminated => write!(f, "runtime system terminated"),
            RtsError::Timeout => write!(f, "operation timed out"),
            RtsError::NodeDown(node) => write!(f, "node down: {node}"),
            RtsError::ObjectLost(object) => write!(f, "object lost: {object}"),
        }
    }
}

impl std::error::Error for RtsError {}

impl From<ObjectError> for RtsError {
    fn from(err: ObjectError) -> Self {
        RtsError::Object(err)
    }
}

/// Which runtime system a node is running (used by configuration and by the
/// benchmark harness when sweeping over strategies).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RtsKind {
    /// Full replication with operation shipping over totally-ordered
    /// broadcast.
    Broadcast,
    /// Primary copy with invalidation of secondaries on writes.
    PrimaryInvalidate,
    /// Primary copy with two-phase updates of secondaries on writes.
    PrimaryUpdate,
    /// Partitioned objects with owner-shipped operations.
    Sharded,
    /// Per-object regimes (replicated / primary / sharded) picked and
    /// changed at runtime from each object's observed access mix.
    Adaptive,
}

impl RtsKind {
    /// Human-readable name used in benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            RtsKind::Broadcast => "broadcast",
            RtsKind::PrimaryInvalidate => "invalidate",
            RtsKind::PrimaryUpdate => "update",
            RtsKind::Sharded => "sharded",
            RtsKind::Adaptive => "adaptive",
        }
    }
}

/// The interface the Orca layer programs against: create objects and invoke
/// encoded operations on them, with the runtime system deciding where
/// replicas live and how writes propagate.
pub trait RuntimeSystem: Send + Sync {
    /// Node this runtime-system instance runs on.
    fn node(&self) -> NodeId;

    /// Number of nodes participating in the application.
    fn num_nodes(&self) -> usize;

    /// Create a shared object of registered type `type_name` with the given
    /// encoded initial state. Returns its id once the object is usable on
    /// this node (and, for the broadcast RTS, on every node).
    fn create_object(&self, type_name: &str, initial_state: &[u8]) -> Result<ObjectId, RtsError>;

    /// Invoke an encoded operation on an object, blocking until it completes
    /// (including waiting for a blocking operation's guard to become true).
    /// Returns the encoded reply.
    ///
    /// The caller supplies the object's registered type name and the
    /// operation's read/write classification; in Orca both are known
    /// statically at the call site (the compiler classifies operations), and
    /// passing them here lets the point-to-point runtime system handle
    /// objects it holds no local copy of.
    fn invoke(
        &self,
        object: ObjectId,
        type_name: &str,
        kind: OpKind,
        op: &[u8],
    ) -> Result<Vec<u8>, RtsError>;

    /// Invoke an encoded operation *asynchronously*: submission returns a
    /// completion handle immediately, letting one process keep many
    /// operations in flight while the runtime system coalesces pending
    /// operations into per-destination batches (see
    /// [`pipeline`] module for the ordering and failure
    /// contracts). The default implementation is the blocking fallback:
    /// it executes the operation synchronously and returns an
    /// already-resolved handle, which is correct (but unpipelined) for any
    /// runtime system.
    fn invoke_async(
        &self,
        object: ObjectId,
        type_name: &str,
        kind: OpKind,
        op: &[u8],
    ) -> PendingInvocation {
        PendingInvocation::ready(self.invoke(object, type_name, kind, op))
    }

    /// Snapshot of this node's runtime-system statistics.
    fn stats(&self) -> RtsStatsSnapshot;

    /// Which kind of runtime system this is.
    fn kind(&self) -> RtsKind;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names() {
        assert_eq!(RtsKind::Broadcast.name(), "broadcast");
        assert_eq!(RtsKind::PrimaryInvalidate.name(), "invalidate");
        assert_eq!(RtsKind::PrimaryUpdate.name(), "update");
        assert_eq!(RtsKind::Sharded.name(), "sharded");
        assert_eq!(RtsKind::Adaptive.name(), "adaptive");
    }

    #[test]
    fn error_conversions_and_display() {
        let err: RtsError = ObjectError::UnknownType("X".into()).into();
        assert!(err.to_string().contains("X"));
        assert!(RtsError::Timeout.to_string().contains("timed out"));
    }
}
