//! The point-to-point (primary-copy) runtime system (§3.2.2 of the paper).
//!
//! Used when the network offers no broadcast. Every object has a *primary*
//! copy on the node that created it; other nodes may hold *secondary* copies.
//! Reads execute on a local copy when one is valid, otherwise they are sent
//! to the primary by RPC. Writes are always executed at the primary, which
//! then runs one of two protocols against the secondaries:
//!
//! * **Invalidation** ([`WritePolicy::Invalidate`]): the primary applies the
//!   operation, sends an invalidation to every copy holder, collects the
//!   acknowledgements, and only then completes the write. Invalidated nodes
//!   fetch a fresh copy (or read remotely) on their next access.
//! * **Two-phase update** ([`WritePolicy::Update`]): the primary ships the
//!   *operation* to every copy holder (phase 1); each holder locks its copy,
//!   applies the operation and acknowledges while keeping the copy locked;
//!   once all acknowledgements are in, the primary sends unlock messages
//!   (phase 2). Reads attempted while a copy is locked wait until it is
//!   unlocked, which is what makes concurrent updates sequentially
//!   consistent.
//!
//! Whether a node holds a copy at all is decided dynamically
//! ([`ReplicationPolicy`]): each node keeps per-object read/write counters;
//! when the read/write ratio of its own accesses exceeds a threshold it
//! fetches a copy from the primary, and when the ratio falls below a lower
//! threshold it drops the copy again — exactly the hysteresis rule sketched
//! in the paper.

pub mod messages;

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use orca_amoeba::network::NetworkHandle;
use orca_amoeba::node::ports;
use orca_amoeba::rpc::RpcServer;
use orca_amoeba::NodeId;
use orca_group::{FailureDetector, ViewSnapshot};
use orca_object::{AnyReplica, AppliedOutcome, ObjectError, ObjectId, ObjectRegistry, OpKind};
use orca_telemetry::{trace, Counter, FlightKind};
use orca_wire::{
    BatchOp, BatchOutcome, CopyInfo, DedupWindow, LeaseGrant, LeaseMsg, OpStamp, RecoveryMsg,
    RecoveryReply, Wire,
};
use parking_lot::{Condvar, Mutex, RwLock};

use crate::pipeline::{pending_pair, resolve_round, BatchPolicy, Pipeline, QueuedOp, RoundSlot};
use crate::recovery::{is_dead, recovery_rpc, RecoveryConfig};
use crate::stats::{AccessStats, RtsStats, RtsStatsSnapshot};
use crate::{PendingInvocation, RtsError, RtsKind, RuntimeSystem};
use messages::{PrimaryMsg, PrimaryReply};

/// How a write at the primary propagates to secondary copies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePolicy {
    /// Discard all secondary copies; they are re-fetched on demand.
    Invalidate,
    /// Push the operation to all secondary copies with a two-phase
    /// lock/update/unlock exchange.
    Update,
}

/// Dynamic replication thresholds (read/write-ratio hysteresis).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicationPolicy {
    /// Fetch a local copy once the node's own read/write ratio for the
    /// object exceeds this value.
    pub fetch_ratio: f64,
    /// Drop the local copy once the ratio falls below this value.
    pub drop_ratio: f64,
    /// Re-evaluate the decision every this many accesses.
    pub window: u64,
    /// Disable dynamic replication entirely (no secondary copies are ever
    /// created; all remote accesses go to the primary).
    pub enabled: bool,
    /// Validity, in milliseconds, of the read leases the primary grants to
    /// secondary copy holders (0 disables leases).
    ///
    /// While a holder's lease is valid it serves reads from its local copy
    /// with **zero messages**; in exchange a write must renew, revoke or
    /// wait out every outstanding grant before it completes, which is what
    /// keeps leased reads linearizable even though update pushes can fail.
    /// Validity is tied to the failure detector's membership epoch: any
    /// view change invalidates every lease granted under the old epoch.
    pub read_lease_ms: u64,
}

impl Default for ReplicationPolicy {
    fn default() -> Self {
        ReplicationPolicy {
            fetch_ratio: 4.0,
            drop_ratio: 1.0,
            window: 16,
            enabled: true,
            read_lease_ms: 150,
        }
    }
}

impl ReplicationPolicy {
    /// Policy that never creates secondary copies.
    pub fn never_replicate() -> Self {
        ReplicationPolicy {
            enabled: false,
            ..ReplicationPolicy::default()
        }
    }
}

/// How long a caller sleeps before retrying an operation whose guard was
/// false at the primary.
const BLOCKED_RETRY_DELAY: Duration = Duration::from_millis(20);

/// Default per-invocation RPC deadline; see
/// [`PrimaryCopyRts::set_op_timeout`].
const DEFAULT_OP_TIMEOUT: Duration = Duration::from_secs(10);

/// Authoritative per-object state of the primary, guarded by one mutex that
/// doubles as the object lock held for the duration of the write protocol.
/// The dedup window and the lease table live under the same lock as the
/// replica because both must change atomically with an apply: a stamped
/// write is recorded in the window in the same critical section it executes
/// in, and leases are granted/settled while the write they fence is still
/// invisible to new readers.
struct PrimaryCore {
    /// The authoritative replica.
    replica: Box<dyn AnyReplica>,
    /// Recently applied stamped writes and their replies (exactly-once
    /// across retries and promotion; rides copy fetches and update pushes).
    dedup: DedupWindow,
    /// Outstanding read leases granted to secondary copy holders.
    leases: LeaseTable,
}

/// Primary-side bookkeeping of the read-lease protocol for one object.
#[derive(Default)]
struct LeaseTable {
    /// Latest grant per holder, with the *conservative* expiry instant on
    /// the grantor's clock (the holder counts `valid_ms` from receipt, so
    /// the grantor waits out twice that span — the bounded-delivery-delay
    /// assumption recovery's re-home wait already makes).
    grants: HashMap<NodeId, GrantRecord>,
    /// Grant sequence numbers, unique per object per grantor incarnation.
    next_seq: u64,
    /// Writes may not execute before this instant. Set when this replica
    /// was promoted by crash recovery: the dead primary's grants are
    /// unknown, so the first write conservatively waits out a full lease
    /// span (reads need no fence — every valid lease covers a copy that
    /// already contains every acknowledged write).
    fence: Option<Instant>,
}

#[derive(Clone, Copy)]
struct GrantRecord {
    seq: u64,
    expires: Instant,
}

/// Holder-side record of the lease covering the local secondary copy.
struct HeldLease {
    /// Sequence number of the grant (named by revocations and renewals).
    seq: u64,
    /// Membership epoch the grant was issued under; a holder whose own
    /// detector has moved past it treats the lease as expired regardless of
    /// the clock.
    epoch: u64,
    /// Expiry on the holder's clock (`valid_ms` from receipt).
    expires: Instant,
}

/// Telemetry counters of the lease protocol, cached so the leased read path
/// does not take the registry lock per read. Shared with the adaptive RTS:
/// both backends account their leases under the same `rts.lease.*` names.
pub(crate) struct LeaseCounters {
    pub(crate) grants: Counter,
    pub(crate) renewals: Counter,
    pub(crate) revokes: Counter,
    pub(crate) local_reads: Counter,
}

impl LeaseCounters {
    /// Resolve (or create) the `rts.lease.*` counters of this node's
    /// telemetry registry.
    pub(crate) fn from_handle(handle: &NetworkHandle) -> Self {
        let reg = handle.telemetry().registry();
        LeaseCounters {
            grants: reg.counter("rts.lease.grants"),
            renewals: reg.counter("rts.lease.renewals"),
            revokes: reg.counter("rts.lease.revokes"),
            local_reads: reg.counter("rts.lease.local_reads"),
        }
    }
}

/// Primary-side record of one object.
struct PrimaryObject {
    /// Replica, dedup window and lease table under the object lock.
    core: Mutex<PrimaryCore>,
    /// Nodes currently holding a secondary copy.
    copy_holders: Mutex<HashSet<NodeId>>,
    type_name: String,
}

/// Secondary-side record of one object on one node.
#[derive(Default)]
struct SecondaryState {
    /// Valid local copy, if any.
    copy: Option<Box<dyn AnyReplica>>,
    /// True between phase 1 (update applied) and phase 2 (unlock) of the
    /// update protocol; local reads wait while this is set.
    locked: bool,
    /// Version of `copy`: the primary replica's version the state
    /// corresponds to. Updates apply strictly in version order, so a copy
    /// of version `v` provably contains every write up to `v` — the
    /// property crash recovery's freshest-copy promotion relies on.
    version: u64,
    /// Highest update version *observed* for the object (applied or not).
    /// A fetched snapshot older than this raced a concurrent update past
    /// it and is discarded instead of installed — the fix for the stale
    /// fetch/write race.
    seen: u64,
    /// Read lease over `copy`, when leases are enabled. Kept even after
    /// expiry (an expired lease is the token a renewal request presents);
    /// cleared only when the copy itself goes.
    lease: Option<HeldLease>,
    /// Dedup window mirroring the primary's, kept as fresh as `copy` by
    /// the stamped piggyback on update pushes — what lets a promoted copy
    /// answer retries of writes the dead primary already applied.
    dedup: DedupWindow,
}

struct SecondaryObject {
    state: Mutex<SecondaryState>,
    unlocked: Condvar,
    access: AccessStats,
}

struct Inner {
    node: NodeId,
    num_nodes: usize,
    handle: NetworkHandle,
    registry: ObjectRegistry,
    write_policy: WritePolicy,
    replication: ReplicationPolicy,
    primaries: RwLock<HashMap<ObjectId, Arc<PrimaryObject>>>,
    secondaries: RwLock<HashMap<ObjectId, Arc<SecondaryObject>>>,
    next_object: AtomicU64,
    /// Ids for batched asynchronous operations (wire-level only; replies
    /// are matched by batch order).
    next_async: AtomicU64,
    /// Per-node monotonic sequence stamping synchronously-invoked writes
    /// with an exactly-once identity (see [`OpStamp`]).
    next_stamp: AtomicU64,
    /// Cached `rts.lease.*` telemetry counters.
    lease_counters: LeaseCounters,
    /// Per-invocation RPC deadline in milliseconds.
    op_timeout_ms: AtomicU64,
    /// Batching knobs of the asynchronous path.
    batch_policy: Arc<Mutex<BatchPolicy>>,
    stats: Arc<RtsStats>,
    /// Crash-recovery knobs (see [`RecoveryConfig`]).
    recovery: RecoveryConfig,
    /// Heartbeat failure detector, present when recovery is enabled.
    detector: Option<Arc<FailureDetector>>,
    /// Re-homing overlay: objects whose primary died and was re-elected
    /// onto a survivor. Consulted before the creator-derived default.
    rehomed: RwLock<HashMap<ObjectId, NodeId>>,
    /// Objects declared lost (primary died with no surviving copy).
    lost: RwLock<HashSet<ObjectId>>,
    /// Highest view epoch whose recovery round has completed on this node.
    recovered_epoch: AtomicU64,
}

impl Inner {
    fn op_timeout(&self) -> Duration {
        Duration::from_millis(self.op_timeout_ms.load(Ordering::Relaxed))
    }

    /// Current primary of `object`: the re-homing overlay if recovery has
    /// moved it, the creating node otherwise.
    fn primary_node(&self, object: ObjectId) -> NodeId {
        if let Some(&node) = self.rehomed.read().get(&object) {
            return node;
        }
        NodeId(object.creator_index())
    }

    fn is_lost(&self, object: ObjectId) -> bool {
        self.lost.read().contains(&object)
    }

    fn leases_enabled(&self) -> bool {
        self.replication.read_lease_ms > 0
    }

    /// The membership epoch leases are stamped with (0 when recovery — and
    /// with it the failure detector — is disabled; both sides then agree on
    /// epoch 0 and leases degrade to pure wall-clock bounds).
    fn current_epoch(&self) -> u64 {
        self.detector.as_ref().map(|d| d.epoch()).unwrap_or(0)
    }

    /// Conservative grantor-side span of one lease: double the holder-side
    /// validity, covering delivery delay and clock drift to the same degree
    /// the recovery timeline already assumes.
    fn grant_span(&self) -> Duration {
        Duration::from_millis(self.replication.read_lease_ms.saturating_mul(2))
    }

    /// Mint a lease for `holder`, recording the grant in `leases`.
    fn mint_grant(
        &self,
        object: ObjectId,
        leases: &mut LeaseTable,
        holder: NodeId,
        renewal: bool,
    ) -> LeaseGrant {
        leases.next_seq += 1;
        let seq = leases.next_seq;
        leases.grants.insert(
            holder,
            GrantRecord {
                seq,
                expires: Instant::now() + self.grant_span(),
            },
        );
        if renewal {
            self.lease_counters.renewals.inc();
        } else {
            self.lease_counters.grants.inc();
        }
        LeaseGrant {
            object: object.0,
            epoch: self.current_epoch(),
            seq,
            valid_ms: self.replication.read_lease_ms,
        }
    }
}

/// True while the holder-side lease permits zero-message local reads.
fn lease_valid(inner: &Inner, state: &SecondaryState) -> bool {
    match &state.lease {
        Some(lease) => Instant::now() < lease.expires && inner.current_epoch() == lease.epoch,
        None => false,
    }
}

/// Install a received grant as the holder-side lease (validity counted from
/// receipt, on the holder's own clock).
fn install_lease(state: &mut SecondaryState, grant: &LeaseGrant) {
    state.lease = Some(HeldLease {
        seq: grant.seq,
        epoch: grant.epoch,
        expires: Instant::now() + Duration::from_millis(grant.valid_ms),
    });
}

/// Handle to one node's primary-copy runtime system. Cheap to clone.
#[derive(Clone)]
pub struct PrimaryCopyRts {
    inner: Arc<Inner>,
    server: Arc<Mutex<Option<RpcServer>>>,
    recovery_server: Arc<Mutex<Option<RpcServer>>>,
    /// Asynchronous-invocation pipeline, started lazily on first use and
    /// shared by all clones of this handle.
    pipeline: Arc<Mutex<Option<Arc<Pipeline>>>>,
}

impl std::fmt::Debug for PrimaryCopyRts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrimaryCopyRts")
            .field("node", &self.inner.node)
            .field("policy", &self.inner.write_policy)
            .finish()
    }
}

impl PrimaryCopyRts {
    /// Start the point-to-point runtime system on the node owning `handle`
    /// (without crash recovery — node failures surface as timeouts).
    pub fn start(
        handle: NetworkHandle,
        registry: ObjectRegistry,
        write_policy: WritePolicy,
        replication: ReplicationPolicy,
    ) -> Self {
        Self::start_recoverable(
            handle,
            registry,
            write_policy,
            replication,
            RecoveryConfig::disabled(),
            None,
        )
    }

    /// Start the runtime system with crash recovery: a heartbeat failure
    /// detector (either `detector`, shared with other layers, or one
    /// started internally) watches the membership; when a node dies, the
    /// lowest live node coordinates the re-homing protocol that promotes
    /// the freshest surviving secondary copy of every orphaned object to
    /// the new primary (see the `recovery` module docs).
    pub fn start_recoverable(
        handle: NetworkHandle,
        registry: ObjectRegistry,
        write_policy: WritePolicy,
        replication: ReplicationPolicy,
        recovery: RecoveryConfig,
        detector: Option<Arc<FailureDetector>>,
    ) -> Self {
        let detector = crate::recovery::ensure_detector(&handle, &recovery, detector);
        let lease_counters = LeaseCounters::from_handle(&handle);
        let inner = Arc::new(Inner {
            node: handle.node(),
            num_nodes: handle.num_nodes(),
            handle: handle.clone(),
            registry,
            write_policy,
            replication,
            primaries: RwLock::new(HashMap::new()),
            secondaries: RwLock::new(HashMap::new()),
            next_object: AtomicU64::new(1),
            next_async: AtomicU64::new(1),
            next_stamp: AtomicU64::new(1),
            lease_counters,
            op_timeout_ms: AtomicU64::new(DEFAULT_OP_TIMEOUT.as_millis() as u64),
            batch_policy: Arc::new(Mutex::new(BatchPolicy::default())),
            stats: RtsStats::new_shared(),
            recovery,
            detector,
            rehomed: RwLock::new(HashMap::new()),
            lost: RwLock::new(HashSet::new()),
            recovered_epoch: AtomicU64::new(0),
        });
        let service_inner = Arc::clone(&inner);
        let server =
            RpcServer::serve_concurrent(handle.clone(), ports::RTS_PRIMARY, move |body, caller| {
                serve_request(&service_inner, body, caller)
            });
        let recovery_server = if recovery.enabled {
            let recovery_inner = Arc::clone(&inner);
            Some(RpcServer::serve_concurrent(
                handle,
                ports::RECOVERY,
                move |body, caller| serve_recovery(&recovery_inner, body, caller),
            ))
        } else {
            None
        };
        if recovery.enabled && recovery.rehome {
            if let Some(detector) = &inner.detector {
                let coordinator_inner = Arc::clone(&inner);
                detector.on_failure(Box::new(move |_dead, view| {
                    // Real work happens off the detector thread.
                    let inner = Arc::clone(&coordinator_inner);
                    std::thread::Builder::new()
                        .name(format!("primary-recovery-{}", inner.node))
                        .spawn(move || coordinate_recovery(&inner, view))
                        .expect("spawn recovery coordinator thread");
                }));
            }
        }
        PrimaryCopyRts {
            inner,
            server: Arc::new(Mutex::new(Some(server))),
            recovery_server: Arc::new(Mutex::new(recovery_server)),
            pipeline: Arc::new(Mutex::new(None)),
        }
    }

    /// Stop the RPC services of this node. Idempotent.
    pub fn shutdown(&self) {
        if let Some(pipeline) = self.pipeline.lock().take() {
            pipeline.shutdown();
        }
        if let Some(server) = self.server.lock().take() {
            server.shutdown();
        }
        if let Some(server) = self.recovery_server.lock().take() {
            server.shutdown();
        }
        if let Some(detector) = &self.inner.detector {
            detector.shutdown();
        }
    }

    /// The current membership view, when recovery is enabled.
    pub fn membership_view(&self) -> Option<ViewSnapshot> {
        self.inner.detector.as_ref().map(|d| d.view())
    }

    /// The node currently serving `object` as primary (re-homing aware).
    pub fn primary_of(&self, object: ObjectId) -> NodeId {
        self.inner.primary_node(object)
    }

    /// Set the per-invocation deadline of operations shipped to other
    /// nodes. An RPC whose reply does not arrive within this duration (for
    /// example because the primary crashed and the reply was dropped)
    /// surfaces [`RtsError::Timeout`] instead of blocking the invoking
    /// process forever. Guard retries (a `Blocked` reply *is* a reply)
    /// restart the deadline.
    pub fn set_op_timeout(&self, timeout: Duration) {
        self.inner
            .op_timeout_ms
            .store(timeout.as_millis() as u64, Ordering::Relaxed);
    }

    /// Set the batching knobs of the asynchronous invocation path (takes
    /// effect from the next flusher round).
    pub fn set_batch_policy(&self, policy: BatchPolicy) {
        *self.inner.batch_policy.lock() = policy;
    }

    /// A clone of this handle whose `pipeline` cell is fresh and empty, for
    /// capture by the flusher and retry closures: capturing `self` directly
    /// would create an `Arc` cycle (pipeline → closure → handle →
    /// pipeline) and leak the runtime system.
    fn detached(&self) -> PrimaryCopyRts {
        PrimaryCopyRts {
            inner: Arc::clone(&self.inner),
            server: Arc::clone(&self.server),
            recovery_server: Arc::clone(&self.recovery_server),
            pipeline: Arc::new(Mutex::new(None)),
        }
    }

    /// The asynchronous-invocation pipeline, started on first use.
    fn ensure_pipeline(&self) -> Arc<Pipeline> {
        let mut guard = self.pipeline.lock();
        if let Some(pipeline) = guard.as_ref() {
            return Arc::clone(pipeline);
        }
        let rts = self.detached();
        let pipeline = Arc::new(Pipeline::start(
            format!("rts-pipe-{}", self.inner.node),
            self.inner.node.0,
            Arc::clone(self.inner.handle.telemetry()),
            Arc::clone(&self.inner.batch_policy),
            move |ops| rts.run_round(ops),
        ));
        *guard = Some(Arc::clone(&pipeline));
        pipeline
    }

    /// Execute one flusher round: writes coalesce into one
    /// [`PrimaryMsg::WriteBatch`] per destination primary; a read flushes
    /// its destination's pending writes first (its object's earlier writes
    /// all sit there), then executes once. Every handle resolves in issue
    /// order at the end of the round.
    fn run_round(&self, ops: Vec<QueuedOp>) {
        let deadline = Instant::now() + self.inner.op_timeout();
        let mut slots: Vec<RoundSlot> = ops.iter().map(|_| RoundSlot::Todo).collect();
        // Pending write indices per destination, in first-touch order.
        let mut batches: Vec<(NodeId, Vec<usize>)> = Vec::new();
        for i in 0..ops.len() {
            let op = &ops[i];
            if self.inner.is_lost(op.object) {
                slots[i] = RoundSlot::Ready(Err(RtsError::ObjectLost(op.object)));
                continue;
            }
            let primary = self.inner.primary_node(op.object);
            match op.kind {
                OpKind::Write => match batches.iter_mut().find(|(dest, _)| *dest == primary) {
                    Some((_, list)) => list.push(i),
                    None => batches.push((primary, vec![i])),
                },
                OpKind::Read => {
                    if let Some(pos) = batches.iter().position(|(dest, _)| *dest == primary) {
                        let (dest, list) = batches.remove(pos);
                        self.flush_write_batch(dest, &ops, &list, &mut slots, deadline);
                    }
                    slots[i] = self.async_read_once(op, primary, deadline);
                }
            }
        }
        for (dest, list) in batches {
            self.flush_write_batch(dest, &ops, &list, &mut slots, deadline);
        }
        resolve_round(ops, slots);
    }

    /// Ship one destination's pending writes as a single
    /// [`PrimaryMsg::WriteBatch`] (or apply them locally when this node is
    /// the primary) and record the per-op outcomes.
    fn flush_write_batch(
        &self,
        dest: NodeId,
        ops: &[QueuedOp],
        indices: &[usize],
        slots: &mut [RoundSlot],
        deadline: Instant,
    ) {
        RtsStats::bump(&self.inner.stats.batches_sent);
        self.inner
            .stats
            .ops_batched
            .fetch_add(indices.len() as u64, Ordering::Relaxed);
        if dest == self.inner.node {
            // Local primary: apply per consecutive same-object run, with
            // one coalesced update push per run.
            let mut k = 0;
            while k < indices.len() {
                let object = ops[indices[k]].object;
                let mut j = k;
                while j < indices.len() && ops[indices[j]].object == object {
                    j += 1;
                }
                let run: Vec<&[u8]> = indices[k..j]
                    .iter()
                    .map(|&i| ops[i].op.as_slice())
                    .collect();
                let outcomes = primary_write_many(&self.inner, object, &run);
                for (offset, outcome) in outcomes.into_iter().enumerate() {
                    slots[indices[k + offset]] = outcome_slot(outcome);
                }
                k = j;
            }
            return;
        }
        RtsStats::bump(&self.inner.stats.remote_writes);
        let msg = PrimaryMsg::WriteBatch {
            ops: indices
                .iter()
                .map(|&i| BatchOp {
                    id: self.inner.next_async.fetch_add(1, Ordering::Relaxed),
                    object: ops[i].object.0,
                    partition: 0,
                    epoch: 0,
                    trace: ops[i].trace,
                    op: ops[i].op.clone(),
                })
                .collect(),
        };
        match self.rpc(dest, &msg, deadline) {
            Ok(PrimaryReply::Batch(outcomes)) if outcomes.len() == indices.len() => {
                for (&i, outcome) in indices.iter().zip(outcomes) {
                    slots[i] = outcome_slot(outcome);
                }
            }
            Ok(other) => {
                let err = RtsError::Communication(format!("unexpected WriteBatch reply {other:?}"));
                for &i in indices {
                    slots[i] = RoundSlot::Ready(Err(err.clone()));
                }
            }
            Err(err) => {
                // The batch died with its destination: report a
                // per-operation outcome. No automatic re-send — the
                // primary may have applied any prefix before crashing, so
                // a blind retry could double-apply.
                for &i in indices {
                    slots[i] = RoundSlot::Ready(Err(err.clone()));
                }
            }
        }
    }

    /// One non-blocking read on behalf of the asynchronous path: local copy
    /// when one is valid and unlocked, otherwise one `ReadAt` RPC. A false
    /// guard resolves the handle `Blocked` instead of stalling the round.
    fn async_read_once(&self, op: &QueuedOp, primary: NodeId, deadline: Instant) -> RoundSlot {
        if primary == self.inner.node {
            return match primary_read(&self.inner, op.object, &op.op) {
                Ok(AppliedOutcome::Done(reply)) => {
                    RtsStats::bump(&self.inner.stats.local_reads);
                    RoundSlot::Ready(Ok(reply))
                }
                Ok(AppliedOutcome::Blocked) => RoundSlot::Blocked,
                Err(err) => RoundSlot::Ready(Err(err)),
            };
        }
        let entry = self.secondary_entry(op.object);
        entry.access.record_read();
        {
            let mut state = entry.state.lock();
            let leased = !self.inner.leases_enabled() || lease_valid(&self.inner, &state);
            if !state.locked && leased {
                if let Some(copy) = state.copy.as_mut() {
                    match copy.apply_encoded(&op.op) {
                        Ok(AppliedOutcome::Done(reply)) => {
                            RtsStats::bump(&self.inner.stats.local_reads);
                            if self.inner.leases_enabled() {
                                self.inner.lease_counters.local_reads.inc();
                            }
                            return RoundSlot::Ready(Ok(reply));
                        }
                        Ok(AppliedOutcome::Blocked) => return RoundSlot::Blocked,
                        Err(err) => return RoundSlot::Ready(Err(err.into())),
                    }
                }
            }
            // Locked (an update push is in flight), lease lapsed, or no
            // copy: read at the primary, whose object lock serializes
            // against the push.
        }
        RtsStats::bump(&self.inner.stats.remote_reads);
        let msg = PrimaryMsg::ReadAt {
            object: op.object,
            op: op.op.clone(),
        };
        match self.rpc(primary, &msg, deadline) {
            Ok(PrimaryReply::Reply(bytes)) => RoundSlot::Ready(Ok(bytes)),
            Ok(PrimaryReply::Blocked) => RoundSlot::Blocked,
            Ok(PrimaryReply::Error(msg)) => RoundSlot::Ready(Err(RtsError::Communication(msg))),
            Ok(other) => RoundSlot::Ready(Err(RtsError::Communication(format!(
                "unexpected ReadAt reply {other:?}"
            )))),
            Err(err) => RoundSlot::Ready(Err(err)),
        }
    }

    /// Nodes registered at this node's primary record of `object` as
    /// secondary-copy holders (empty when this node is not the primary).
    /// Diagnostic: model-checking scenarios use it to time workloads
    /// against the fetch protocol's registration point.
    pub fn copy_holders(&self, object: ObjectId) -> Vec<NodeId> {
        let primaries = self.inner.primaries.read();
        primaries
            .get(&object)
            .map(|entry| {
                let mut holders: Vec<NodeId> = entry.copy_holders.lock().iter().copied().collect();
                holders.sort_by_key(|n| n.index());
                holders
            })
            .unwrap_or_default()
    }

    /// True if this node currently holds a valid secondary copy of `object`.
    pub fn has_local_copy(&self, object: ObjectId) -> bool {
        if self.inner.primary_node(object) == self.inner.node {
            return true;
        }
        let secondaries = self.inner.secondaries.read();
        secondaries
            .get(&object)
            .map(|entry| entry.state.lock().copy.is_some())
            .unwrap_or(false)
    }

    fn rpc(
        &self,
        dst: NodeId,
        msg: &PrimaryMsg,
        deadline: Instant,
    ) -> Result<PrimaryReply, RtsError> {
        let reply = recovery_rpc(
            &self.inner.handle,
            &self.inner.detector,
            &self.inner.recovery,
            dst,
            ports::RTS_PRIMARY,
            msg.to_bytes(),
            deadline,
        )?;
        PrimaryReply::from_bytes(&reply)
            .map_err(|err| RtsError::Communication(format!("bad reply: {err}")))
    }

    fn secondary_entry(&self, object: ObjectId) -> Arc<SecondaryObject> {
        {
            let secondaries = self.inner.secondaries.read();
            if let Some(entry) = secondaries.get(&object) {
                return Arc::clone(entry);
            }
        }
        let mut secondaries = self.inner.secondaries.write();
        Arc::clone(secondaries.entry(object).or_insert_with(|| {
            Arc::new(SecondaryObject {
                state: Mutex::new(SecondaryState::default()),
                unlocked: Condvar::new(),
                access: AccessStats::default(),
            })
        }))
    }

    fn invoke_at_primary_local(
        &self,
        object: ObjectId,
        op: &[u8],
        kind: OpKind,
        stamp: Option<OpStamp>,
    ) -> Result<Vec<u8>, RtsError> {
        loop {
            let outcome = match kind {
                OpKind::Read => {
                    let reply = primary_read(&self.inner, object, op)?;
                    RtsStats::bump(&self.inner.stats.local_reads);
                    reply
                }
                OpKind::Write => {
                    RtsStats::bump(&self.inner.stats.writes);
                    primary_write(&self.inner, object, op, stamp)?
                }
            };
            match outcome {
                AppliedOutcome::Done(reply) => return Ok(reply),
                AppliedOutcome::Blocked => {
                    RtsStats::bump(&self.inner.stats.guard_retries);
                    std::thread::sleep(BLOCKED_RETRY_DELAY);
                }
            }
        }
    }

    fn invoke_remote(
        &self,
        object: ObjectId,
        type_name: &str,
        kind: OpKind,
        op: &[u8],
    ) -> Result<Vec<u8>, RtsError> {
        let deadline = Instant::now() + self.inner.op_timeout();
        // Writes carry an exactly-once stamp, minted once per invocation and
        // re-sent verbatim by every retry below: whichever replica ends up
        // primary answers a duplicate from its dedup window instead of
        // applying the operation a second time.
        let stamp = (kind == OpKind::Write).then(|| OpStamp {
            origin: self.inner.node.0,
            seq: self.inner.next_stamp.fetch_add(1, Ordering::Relaxed),
        });
        loop {
            if self.inner.is_lost(object) {
                return Err(RtsError::ObjectLost(object));
            }
            let primary = self.inner.primary_node(object);
            if primary == self.inner.node {
                // Recovery re-homed the object onto this very node.
                return self.invoke_at_primary_local(object, op, kind, stamp);
            }
            if is_dead(&self.inner.detector, primary) {
                // Wait (bounded) for the recovery coordinator to publish a
                // new home, then retry there.
                self.await_rehome(object, primary, deadline)?;
                continue;
            }
            match self.invoke_remote_once(object, type_name, kind, op, primary, deadline, stamp) {
                Err(RtsError::NodeDown(_))
                    if self.inner.recovery.rehome && Instant::now() < deadline =>
                {
                    // The primary died mid-call; loop into the re-homing
                    // wait. The retry re-sends the same stamp, and the
                    // dedup window travels with every copy, so the write
                    // applies exactly once even when the dead primary
                    // executed it just before crashing and the promoted
                    // copy already contains it.
                    continue;
                }
                other => return other,
            }
        }
    }

    /// One attempt of a remote invocation against a specific (believed
    /// live) primary.
    #[allow(clippy::too_many_arguments)]
    fn invoke_remote_once(
        &self,
        object: ObjectId,
        type_name: &str,
        kind: OpKind,
        op: &[u8],
        primary: NodeId,
        deadline: Instant,
        stamp: Option<OpStamp>,
    ) -> Result<Vec<u8>, RtsError> {
        let entry = self.secondary_entry(object);
        match kind {
            OpKind::Read => entry.access.record_read(),
            OpKind::Write => entry.access.record_write(),
        }
        let result = match kind {
            OpKind::Read => {
                let mut local = self.try_local_secondary_read(object, &entry, op)?;
                if local.is_none() && self.try_renew_lease(object, primary, &entry, deadline) {
                    // One renewal RPC re-arms a whole lease window of
                    // zero-message reads; retry locally before going remote.
                    local = self.try_local_secondary_read(object, &entry, op)?;
                }
                if let Some(reply) = local {
                    RtsStats::bump(&self.inner.stats.local_reads);
                    Ok(reply)
                } else {
                    RtsStats::bump(&self.inner.stats.remote_reads);
                    self.remote_op(
                        primary,
                        PrimaryMsg::ReadAt {
                            object,
                            op: op.to_vec(),
                        },
                        deadline,
                    )
                }
            }
            OpKind::Write => {
                RtsStats::bump(&self.inner.stats.writes);
                RtsStats::bump(&self.inner.stats.remote_writes);
                self.remote_op(
                    primary,
                    PrimaryMsg::WriteAt {
                        object,
                        op: op.to_vec(),
                        stamp,
                    },
                    deadline,
                )
            }
        };
        self.maybe_adjust_replication(object, type_name, primary, &entry, deadline)?;
        result
    }

    /// Ask the primary for a fresh lease over the local copy, presenting the
    /// (expired or epoch-stale) grant currently held. The primary re-grants
    /// only when that grant is still the latest it issued to this node — a
    /// newer or revoked grant means the copy may have missed a write, in
    /// which case the copy is dropped and the caller falls back to a remote
    /// read.
    fn try_renew_lease(
        &self,
        object: ObjectId,
        primary: NodeId,
        entry: &SecondaryObject,
        deadline: Instant,
    ) -> bool {
        if !self.inner.leases_enabled() {
            return false;
        }
        let request = {
            let state = entry.state.lock();
            if state.copy.is_none() || lease_valid(&self.inner, &state) {
                return false;
            }
            let Some(lease) = &state.lease else {
                return false;
            };
            LeaseGrant {
                object: object.0,
                epoch: lease.epoch,
                seq: lease.seq,
                valid_ms: 0,
            }
        };
        match self.rpc(
            primary,
            &PrimaryMsg::Lease(LeaseMsg::Renew(request)),
            deadline,
        ) {
            Ok(PrimaryReply::Lease(LeaseMsg::Renew(grant))) => {
                let mut state = entry.state.lock();
                if state.copy.is_some() {
                    install_lease(&mut state, &grant);
                    return true;
                }
                false
            }
            Ok(_) => {
                // Denied: the copy is (or may be) stale. Drop it and let the
                // next access re-fetch.
                let mut state = entry.state.lock();
                if state.copy.take().is_some() {
                    RtsStats::bump(&self.inner.stats.copies_dropped);
                }
                state.lease = None;
                state.locked = false;
                entry.unlocked.notify_all();
                false
            }
            Err(_) => false,
        }
    }

    /// Block (bounded by the invocation deadline and the configured
    /// re-homing wait) until recovery has either published a new home for
    /// `object`, declared it lost, or finished the epoch without a word —
    /// which means no copy survived.
    fn await_rehome(
        &self,
        object: ObjectId,
        old_primary: NodeId,
        deadline: Instant,
    ) -> Result<(), RtsError> {
        if !(self.inner.recovery.enabled && self.inner.recovery.rehome) {
            return Err(RtsError::NodeDown(old_primary));
        }
        let wait_until = deadline.min(Instant::now() + self.inner.recovery.rehome_wait);
        loop {
            if self.inner.is_lost(object) {
                return Err(RtsError::ObjectLost(object));
            }
            let current = self.inner.primary_node(object);
            if current != old_primary && !is_dead(&self.inner.detector, current) {
                return Ok(());
            }
            if let Some(detector) = &self.inner.detector {
                let view = detector.view();
                if self.inner.recovered_epoch.load(Ordering::SeqCst) >= view.epoch
                    && self.inner.primary_node(object) == old_primary
                {
                    // The recovery round covering the primary's death is
                    // complete and published no new home: nothing survived.
                    self.inner.lost.write().insert(object);
                    return Err(RtsError::ObjectLost(object));
                }
            }
            if Instant::now() >= wait_until {
                return Err(RtsError::NodeDown(old_primary));
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Attempt a read on a valid, unlocked local secondary copy.
    fn try_local_secondary_read(
        &self,
        object: ObjectId,
        entry: &SecondaryObject,
        op: &[u8],
    ) -> Result<Option<Vec<u8>>, RtsError> {
        let mut state = entry.state.lock();
        loop {
            while state.locked {
                entry
                    .unlocked
                    .wait_for(&mut state, Duration::from_millis(100));
                // A lock that never clears means the primary died between
                // the update and unlock phases; once the detector confirms
                // it, fall through to the remote path (which rides the
                // re-homing machinery) instead of waiting on a corpse
                // forever. With re-homing enabled the copy itself must
                // survive: a mid-push copy is the freshest one alive and
                // the recovery coordinator may be about to promote it —
                // discarding it here races Promote into "no copy" and
                // turns a recoverable object into a lost one. Recovery
                // resolves the dangling lock either way (promote_local
                // clears it, apply_rehome drops the copy). Without
                // re-homing nothing ever would, so drop the copy rather
                // than leave a permanently locked zombie behind.
                if state.locked && is_dead(&self.inner.detector, self.inner.primary_node(object)) {
                    if !(self.inner.recovery.enabled && self.inner.recovery.rehome) {
                        state.copy = None;
                        state.locked = false;
                    }
                    return Ok(None);
                }
            }
            if state.copy.is_some() && self.inner.leases_enabled() {
                // Leases on: the copy alone is not permission to read. A
                // write at the primary can complete only after renewing,
                // revoking or waiting out this node's grant, so a valid
                // lease proves the copy reflects every completed write.
                if !lease_valid(&self.inner, &state) {
                    return Ok(None);
                }
            }
            let Some(copy) = state.copy.as_mut() else {
                return Ok(None);
            };
            match copy.apply_encoded(op)? {
                AppliedOutcome::Done(reply) => {
                    if self.inner.leases_enabled() {
                        self.inner.lease_counters.local_reads.inc();
                    }
                    return Ok(Some(reply));
                }
                AppliedOutcome::Blocked => {
                    // Guarded read: wait for the copy to change (updates
                    // arrive via the update protocol) or fall back to a
                    // periodic retry.
                    RtsStats::bump(&self.inner.stats.guard_retries);
                    entry
                        .unlocked
                        .wait_for(&mut state, Duration::from_millis(100));
                }
            }
        }
    }

    /// Send a read/write to the primary, retrying while the guard is false.
    fn remote_op(
        &self,
        primary: NodeId,
        msg: PrimaryMsg,
        deadline: Instant,
    ) -> Result<Vec<u8>, RtsError> {
        loop {
            match self.rpc(primary, &msg, deadline)? {
                PrimaryReply::Reply(bytes) => return Ok(bytes),
                PrimaryReply::Blocked => {
                    RtsStats::bump(&self.inner.stats.guard_retries);
                    std::thread::sleep(BLOCKED_RETRY_DELAY);
                }
                PrimaryReply::Error(msg) => {
                    return Err(RtsError::Communication(msg));
                }
                other => {
                    return Err(RtsError::Communication(format!(
                        "unexpected reply {other:?}"
                    )))
                }
            }
        }
    }

    /// Apply the dynamic-replication hysteresis rule after an access.
    fn maybe_adjust_replication(
        &self,
        object: ObjectId,
        _type_name: &str,
        primary: NodeId,
        entry: &SecondaryObject,
        deadline: Instant,
    ) -> Result<(), RtsError> {
        if !self.inner.replication.enabled {
            return Ok(());
        }
        if entry.access.total() < self.inner.replication.window {
            return Ok(());
        }
        let ratio = entry.access.read_write_ratio();
        let has_copy = entry.state.lock().copy.is_some();
        if !has_copy && ratio >= self.inner.replication.fetch_ratio {
            self.fetch_copy(object, primary, entry, deadline)?;
        } else if has_copy && ratio <= self.inner.replication.drop_ratio {
            self.drop_copy(object, primary, entry, deadline)?;
        }
        entry.access.reset();
        Ok(())
    }

    fn fetch_copy(
        &self,
        object: ObjectId,
        primary: NodeId,
        entry: &SecondaryObject,
        deadline: Instant,
    ) -> Result<(), RtsError> {
        match self.rpc(primary, &PrimaryMsg::FetchCopy { object }, deadline)? {
            PrimaryReply::State {
                type_name,
                state,
                version,
                lease,
                dedup,
            } => {
                let replica = self.inner.registry.instantiate(&type_name, &state)?;
                let mut guard = entry.state.lock();
                if guard.seen > version && !crate::sabotage::no_version_gating() {
                    // An update overtook this snapshot in flight; holding
                    // on to the older state would serve stale reads (and
                    // could be promoted by recovery). Stay copyless; the
                    // next access re-fetches.
                    return Ok(());
                }
                guard.copy = Some(replica);
                guard.version = version;
                guard.seen = guard.seen.max(version);
                guard.locked = false;
                guard.dedup = dedup;
                guard.lease = None;
                if let Some(grant) = lease {
                    install_lease(&mut guard, &grant);
                }
                RtsStats::bump(&self.inner.stats.copies_fetched);
                Ok(())
            }
            PrimaryReply::Error(msg) => Err(RtsError::Communication(msg)),
            other => Err(RtsError::Communication(format!(
                "unexpected FetchCopy reply {other:?}"
            ))),
        }
    }

    fn drop_copy(
        &self,
        object: ObjectId,
        primary: NodeId,
        entry: &SecondaryObject,
        deadline: Instant,
    ) -> Result<(), RtsError> {
        let _ = self.rpc(primary, &PrimaryMsg::DropCopy { object }, deadline)?;
        let mut guard = entry.state.lock();
        guard.copy = None;
        guard.locked = false;
        guard.lease = None;
        guard.dedup = DedupWindow::new();
        RtsStats::bump(&self.inner.stats.copies_dropped);
        self.inner.stats.snapshot();
        Ok(())
    }
}

impl RuntimeSystem for PrimaryCopyRts {
    fn node(&self) -> NodeId {
        self.inner.node
    }

    fn num_nodes(&self) -> usize {
        self.inner.num_nodes
    }

    fn create_object(&self, type_name: &str, initial_state: &[u8]) -> Result<ObjectId, RtsError> {
        let replica = self.inner.registry.instantiate(type_name, initial_state)?;
        let counter = self.inner.next_object.fetch_add(1, Ordering::Relaxed);
        let id = ObjectId::compose(self.inner.node.0, counter);
        self.inner.primaries.write().insert(
            id,
            Arc::new(PrimaryObject {
                core: Mutex::new(PrimaryCore {
                    replica,
                    dedup: DedupWindow::new(),
                    leases: LeaseTable::default(),
                }),
                copy_holders: Mutex::new(HashSet::new()),
                type_name: type_name.to_string(),
            }),
        );
        RtsStats::bump(&self.inner.stats.objects_created);
        Ok(id)
    }

    fn invoke(
        &self,
        object: ObjectId,
        type_name: &str,
        kind: OpKind,
        op: &[u8],
    ) -> Result<Vec<u8>, RtsError> {
        if self.inner.is_lost(object) {
            return Err(RtsError::ObjectLost(object));
        }
        if self.inner.primary_node(object) == self.inner.node {
            // Local invocations never retry across a node death (the
            // caller dies with the primary), so they carry no dedup stamp.
            self.invoke_at_primary_local(object, op, kind, None)
        } else {
            self.invoke_remote(object, type_name, kind, op)
        }
    }

    fn invoke_async(
        &self,
        object: ObjectId,
        _type_name: &str,
        kind: OpKind,
        op: &[u8],
    ) -> PendingInvocation {
        if self.inner.is_lost(object) {
            return PendingInvocation::ready(Err(RtsError::ObjectLost(object)));
        }
        if kind == OpKind::Write {
            RtsStats::bump(&self.inner.stats.writes);
        }
        let pipeline = self.ensure_pipeline();
        let trace = trace::current();
        // A guard-blocked op re-enters this same queue from wait(), so its
        // re-execution keeps issue order instead of jumping ahead through
        // the synchronous path.
        let resubmit = {
            let pipeline = Arc::clone(&pipeline);
            let op = op.to_vec();
            Arc::new(move |completer| {
                pipeline.submit(QueuedOp {
                    object,
                    kind,
                    op: op.clone(),
                    trace,
                    submitted: Instant::now(),
                    completer,
                })
            })
        };
        let (handle, completer) = pending_pair(resubmit);
        pipeline.submit(QueuedOp {
            object,
            kind,
            op: op.to_vec(),
            trace,
            submitted: Instant::now(),
            completer,
        });
        handle
    }

    fn stats(&self) -> RtsStatsSnapshot {
        self.inner.stats.snapshot()
    }

    fn kind(&self) -> RtsKind {
        match self.inner.write_policy {
            WritePolicy::Invalidate => RtsKind::PrimaryInvalidate,
            WritePolicy::Update => RtsKind::PrimaryUpdate,
        }
    }
}

/// Map a wire-level batch outcome onto a round slot.
fn outcome_slot(outcome: BatchOutcome) -> RoundSlot {
    match outcome {
        BatchOutcome::Done(reply) => RoundSlot::Ready(Ok(reply)),
        BatchOutcome::Blocked => RoundSlot::Blocked,
        BatchOutcome::Stale => RoundSlot::Ready(Err(RtsError::Communication(
            "stale batch destination".into(),
        ))),
        BatchOutcome::Failed(msg) => RoundSlot::Ready(Err(RtsError::Communication(msg))),
    }
}

/// Execute a read operation at the primary copy.
fn primary_read(
    inner: &Arc<Inner>,
    object: ObjectId,
    op: &[u8],
) -> Result<AppliedOutcome, RtsError> {
    let entry = {
        let primaries = inner.primaries.read();
        primaries
            .get(&object)
            .cloned()
            .ok_or(RtsError::Object(ObjectError::NoSuchObject(object)))?
    };
    let mut core = entry.core.lock();
    Ok(core.replica.apply_encoded(op)?)
}

/// Sleep out the promotion fence, if one is pending: the dead primary's
/// grants are unknown to the promoted replica, so the first write waits a
/// full conservative lease span before its effect may become visible.
/// Reads are exempt — every lease still valid covers a copy that already
/// contains every acknowledged write, so pre-fence reads are consistent.
fn wait_out_fence(leases: &mut LeaseTable) {
    if let Some(fence) = leases.fence.take() {
        let now = Instant::now();
        if now < fence {
            std::thread::sleep(fence - now);
        }
    }
}

/// Prune lease grants that no longer need settling: expired on the
/// grantor's conservative clock, or held by a node the failure detector has
/// declared dead (fail-stop: a dead holder serves no reads, so its grant
/// cannot wedge writes).
fn prune_grants(inner: &Arc<Inner>, leases: &mut LeaseTable) {
    let now = Instant::now();
    leases
        .grants
        .retain(|holder, rec| now < rec.expires && !is_dead(&inner.detector, *holder));
}

/// Settle the leases of holders an update/invalidate push could not reach:
/// explicit revoke bounded by the grant's own expiry, falling back to
/// sleeping the remainder out. On return none of `failed`'s grants can
/// still authorize a local read, so the write may complete. The failed
/// holders are also deregistered — their copies are stale.
fn settle_failed_leases(
    inner: &Arc<Inner>,
    object: ObjectId,
    entry: &PrimaryObject,
    leases: &mut LeaseTable,
    failed: &[NodeId],
) {
    if failed.is_empty() || !inner.leases_enabled() {
        // Without leases a failed push is ignored, as before: the holder
        // keeps receiving future pushes and version gating re-syncs it.
        return;
    }
    for holder in failed {
        let Some(rec) = leases.grants.get(holder).copied() else {
            continue;
        };
        leases.grants.remove(holder);
        if is_dead(&inner.detector, *holder) || Instant::now() >= rec.expires {
            continue;
        }
        // The revoke RPC is bounded by the grant's own expiry: waiting any
        // longer than the lease lasts could simply wait it out instead.
        inner.lease_counters.revokes.inc();
        let revoke = PrimaryMsg::Lease(LeaseMsg::Revoke {
            object: object.0,
            seq: rec.seq,
        });
        if send_to_secondary_by(inner, *holder, revoke.to_bytes(), rec.expires).is_err() {
            let now = Instant::now();
            if now < rec.expires {
                std::thread::sleep(rec.expires - now);
            }
        }
    }
    let mut holders = entry.copy_holders.lock();
    for holder in failed {
        holders.remove(holder);
    }
}

/// Run the two-phase update protocol for one already-applied write (or run
/// of writes): ship `phase1` to every holder, then unlock everyone with a
/// renewed lease piggybacked, and settle the leases of holders that could
/// not be reached. The phase-1 message is encoded once and fanned out from
/// one scratch buffer.
fn propagate_update(
    inner: &Arc<Inner>,
    object: ObjectId,
    entry: &PrimaryObject,
    leases: &mut LeaseTable,
    holders: &[NodeId],
    phase1: &PrimaryMsg,
) {
    let mut scratch = Vec::new();
    phase1.encode_into(&mut scratch);
    let mut failed: Vec<NodeId> = Vec::new();
    for holder in holders {
        if send_to_secondary_bytes(inner, *holder, scratch.clone()).is_err() {
            failed.push(*holder);
        }
    }
    for holder in holders {
        if failed.contains(holder) {
            continue;
        }
        let lease = inner
            .leases_enabled()
            .then(|| inner.mint_grant(object, leases, *holder, true));
        let unlock = PrimaryMsg::Unlock { object, lease };
        scratch.clear();
        unlock.encode_into(&mut scratch);
        if send_to_secondary_bytes(inner, *holder, scratch.clone()).is_err() {
            // The holder applied the update but never got the unlock; its
            // fresh grant must not outlive this write unsettled.
            failed.push(*holder);
        }
    }
    settle_failed_leases(inner, object, entry, leases, &failed);
}

/// Invalidate every holder's copy and settle the leases of unreachable
/// holders. A successful invalidation retires the holder's grant with it.
fn propagate_invalidate(
    inner: &Arc<Inner>,
    object: ObjectId,
    entry: &PrimaryObject,
    leases: &mut LeaseTable,
    holders: &[NodeId],
    version: u64,
) {
    let msg = PrimaryMsg::Invalidate { object, version };
    let mut scratch = Vec::new();
    msg.encode_into(&mut scratch);
    let mut failed: Vec<NodeId> = Vec::new();
    for holder in holders {
        match send_to_secondary_bytes(inner, *holder, scratch.clone()) {
            Ok(_) => {
                leases.grants.remove(holder);
            }
            Err(_) => failed.push(*holder),
        }
    }
    entry.copy_holders.lock().clear();
    settle_failed_leases(inner, object, entry, leases, &failed);
}

/// Execute a write at the primary copy and run the configured propagation
/// protocol against all copy holders.
fn primary_write(
    inner: &Arc<Inner>,
    object: ObjectId,
    op: &[u8],
    stamp: Option<OpStamp>,
) -> Result<AppliedOutcome, RtsError> {
    let entry = {
        let primaries = inner.primaries.read();
        primaries
            .get(&object)
            .cloned()
            .ok_or(RtsError::Object(ObjectError::NoSuchObject(object)))?
    };
    // The primary core's mutex is the object lock: it stays held for the
    // entire protocol so no reads or competing writes observe partial state.
    let mut core = entry.core.lock();
    let core = &mut *core;
    wait_out_fence(&mut core.leases);
    if let Some(stamp) = stamp {
        if let Some(reply) = core.dedup.lookup(stamp) {
            // A retry of a write this replica (or the replica it was
            // promoted from) already applied: answer with the original
            // reply instead of applying twice.
            return Ok(AppliedOutcome::Done(reply.to_vec()));
        }
    }
    let outcome = core.replica.apply_encoded(op)?;
    let AppliedOutcome::Done(reply) = outcome else {
        return Ok(AppliedOutcome::Blocked);
    };
    if let Some(stamp) = stamp {
        core.dedup.record(stamp, reply.clone());
    }
    let version = core.replica.version();
    prune_grants(inner, &mut core.leases);
    // Copy holders the failure detector has declared dead are dropped from
    // the protocol (and the holder set): waiting on them would stall every
    // write at this primary for the full push deadline, forever.
    let holders: Vec<NodeId> = {
        let mut holders = entry.copy_holders.lock();
        holders.retain(|h| !is_dead(&inner.detector, *h));
        holders
            .iter()
            .copied()
            .filter(|h| *h != inner.node)
            .collect()
    };
    match inner.write_policy {
        WritePolicy::Invalidate => {
            propagate_invalidate(inner, object, &entry, &mut core.leases, &holders, version);
        }
        WritePolicy::Update => {
            let phase1 = PrimaryMsg::UpdateOp {
                object,
                op: op.to_vec(),
                version,
                stamped: stamp.map(|s| (s, reply.clone())),
            };
            propagate_update(inner, object, &entry, &mut core.leases, &holders, &phase1);
        }
    }
    Ok(AppliedOutcome::Done(reply))
}

/// Apply a run of consecutive writes on one object at the primary, under
/// one hold of the object lock, and run the propagation protocol **once**
/// for the whole run: update-policy secondaries receive a single
/// [`PrimaryMsg::UpdateBatch`] (plus one unlock) instead of one
/// update/unlock pair per write — the per-secondary coalescing of the
/// pipelined path.
fn primary_write_many(inner: &Arc<Inner>, object: ObjectId, ops: &[&[u8]]) -> Vec<BatchOutcome> {
    let entry = {
        let primaries = inner.primaries.read();
        match primaries.get(&object).cloned() {
            Some(entry) => entry,
            None => {
                let msg = format!("no such object {object}");
                return ops
                    .iter()
                    .map(|_| BatchOutcome::Failed(msg.clone()))
                    .collect();
            }
        }
    };
    // The primary core's mutex is the object lock: held for the entire run
    // and its propagation, exactly like a single write's protocol.
    let mut core = entry.core.lock();
    let core = &mut *core;
    wait_out_fence(&mut core.leases);
    let mut outcomes = Vec::with_capacity(ops.len());
    let mut applied: Vec<Vec<u8>> = Vec::new();
    let mut first_version = 0;
    for op in ops {
        if outcomes
            .last()
            .is_some_and(|last| matches!(last, BatchOutcome::Blocked))
        {
            // A blocked guard stops the run: the remaining ops were issued
            // *after* the blocked one on the same object, so applying them
            // now would reorder one process's operations. They report
            // `Blocked` and re-enter the issue-order pipeline with it.
            outcomes.push(BatchOutcome::Blocked);
            continue;
        }
        match core.replica.apply_encoded(op) {
            Ok(AppliedOutcome::Done(reply)) => {
                if applied.is_empty() {
                    first_version = core.replica.version();
                }
                applied.push(op.to_vec());
                outcomes.push(BatchOutcome::Done(reply));
            }
            Ok(AppliedOutcome::Blocked) => outcomes.push(BatchOutcome::Blocked),
            Err(err) => outcomes.push(BatchOutcome::Failed(err.to_string())),
        }
    }
    if !applied.is_empty() {
        prune_grants(inner, &mut core.leases);
        let holders: Vec<NodeId> = {
            let mut holders = entry.copy_holders.lock();
            holders.retain(|h| !is_dead(&inner.detector, *h));
            holders
                .iter()
                .copied()
                .filter(|h| *h != inner.node)
                .collect()
        };
        match inner.write_policy {
            WritePolicy::Invalidate => {
                let version = core.replica.version();
                propagate_invalidate(inner, object, &entry, &mut core.leases, &holders, version);
            }
            WritePolicy::Update => {
                let update = PrimaryMsg::UpdateBatch {
                    object,
                    ops: applied,
                    first_version,
                };
                propagate_update(inner, object, &entry, &mut core.leases, &holders, &update);
            }
        }
    }
    outcomes
}

/// Ship pre-encoded bytes to a secondary with the default push deadline.
/// Fan-out paths encode the message once (`Wire::encode_into` into a
/// scratch buffer) and clone the bytes per destination instead of
/// re-encoding per holder.
fn send_to_secondary_bytes(
    inner: &Arc<Inner>,
    dst: NodeId,
    body: Vec<u8>,
) -> Result<PrimaryReply, RtsError> {
    send_to_secondary_by(inner, dst, body, Instant::now() + inner.op_timeout())
}

fn send_to_secondary_by(
    inner: &Arc<Inner>,
    dst: NodeId,
    body: Vec<u8>,
    deadline: Instant,
) -> Result<PrimaryReply, RtsError> {
    let reply = recovery_rpc(
        &inner.handle,
        &inner.detector,
        &inner.recovery,
        dst,
        ports::RTS_PRIMARY,
        body,
        deadline,
    )?;
    PrimaryReply::from_bytes(&reply).map_err(|err| RtsError::Communication(err.to_string()))
}

/// RPC dispatch: the service side of the protocol, running on every node.
fn serve_request(inner: &Arc<Inner>, body: &[u8], caller: NodeId) -> Vec<u8> {
    let reply = match PrimaryMsg::from_bytes(body) {
        Ok(msg) => dispatch(inner, msg, caller),
        Err(err) => PrimaryReply::Error(format!("bad request: {err}")),
    };
    reply.to_bytes()
}

fn dispatch(inner: &Arc<Inner>, msg: PrimaryMsg, caller: NodeId) -> PrimaryReply {
    match msg {
        PrimaryMsg::ReadAt { object, op } => match primary_read(inner, object, &op) {
            Ok(AppliedOutcome::Done(reply)) => {
                if caller != inner.node {
                    // Serving another node's operation against the local
                    // primary replica is the same protocol-handling work
                    // the broadcast and sharded systems account under
                    // `updates_applied`; counting it here keeps the
                    // cross-RTS cost comparisons honest.
                    RtsStats::bump(&inner.stats.updates_applied);
                }
                PrimaryReply::Reply(reply)
            }
            Ok(AppliedOutcome::Blocked) => PrimaryReply::Blocked,
            Err(err) => PrimaryReply::Error(err.to_string()),
        },
        PrimaryMsg::WriteAt { object, op, stamp } => {
            match primary_write(inner, object, &op, stamp) {
                Ok(AppliedOutcome::Done(reply)) => {
                    if caller != inner.node {
                        RtsStats::bump(&inner.stats.updates_applied);
                    }
                    PrimaryReply::Reply(reply)
                }
                Ok(AppliedOutcome::Blocked) => PrimaryReply::Blocked,
                Err(err) => PrimaryReply::Error(err.to_string()),
            }
        }
        PrimaryMsg::FetchCopy { object } => {
            let primaries = inner.primaries.read();
            let Some(entry) = primaries.get(&object).cloned() else {
                return PrimaryReply::Error(format!("no such object {object}"));
            };
            drop(primaries);
            // Lock the core so the state snapshot cannot interleave with
            // a write protocol in progress — and register the caller as a
            // holder *inside* the same critical section: registering after
            // the unlock used to let a write slip between snapshot and
            // registration, reaching neither the snapshot nor the push
            // list (a permanently stale copy). The dedup window snapshots
            // with the state (same atomicity: a promoted copy must remember
            // exactly the stamped writes its state contains), and a fresh
            // lease is granted in the same section, before any later write
            // could need to settle it.
            let mut core = entry.core.lock();
            let state = core.replica.state_bytes();
            let version = core.replica.version();
            let dedup = core.dedup.clone();
            let lease = inner
                .leases_enabled()
                .then(|| inner.mint_grant(object, &mut core.leases, caller, false));
            entry.copy_holders.lock().insert(caller);
            drop(core);
            PrimaryReply::State {
                type_name: entry.type_name.clone(),
                state,
                version,
                lease,
                dedup,
            }
        }
        PrimaryMsg::DropCopy { object } => {
            let primaries = inner.primaries.read();
            if let Some(entry) = primaries.get(&object) {
                entry.core.lock().leases.grants.remove(&caller);
                entry.copy_holders.lock().remove(&caller);
            }
            PrimaryReply::Ack
        }
        PrimaryMsg::Invalidate { object, version } => {
            let secondaries = inner.secondaries.read();
            if let Some(entry) = secondaries.get(&object) {
                let mut state = entry.state.lock();
                // Record the version floor even when no copy is installed
                // yet: an invalidation that overtakes the fetch reply it
                // races must still poison that older snapshot, or the late
                // install would serve stale reads forever (the primary has
                // already deregistered this holder).
                state.seen = state.seen.max(version);
                state.copy = None;
                state.locked = false;
                state.lease = None;
                state.dedup = DedupWindow::new();
                entry.unlocked.notify_all();
                RtsStats::bump(&inner.stats.invalidations_received);
            }
            PrimaryReply::Ack
        }
        PrimaryMsg::UpdateOp {
            object,
            op,
            version,
            stamped,
        } => {
            let secondaries = inner.secondaries.read();
            if let Some(entry) = secondaries.get(&object) {
                let mut state = entry.state.lock();
                state.seen = state.seen.max(version);
                if state.copy.is_some() {
                    if version == state.version + 1 || crate::sabotage::no_version_gating() {
                        match state
                            .copy
                            .as_mut()
                            .expect("checked above")
                            .apply_encoded(&op)
                        {
                            Ok(_) => {
                                state.version = version;
                                state.locked = true;
                                if let Some((stamp, reply)) = stamped {
                                    // Keep the window as fresh as the copy:
                                    // if this copy is promoted, it answers
                                    // retries of this write from here.
                                    state.dedup.record(stamp, reply);
                                }
                                RtsStats::bump(&inner.stats.updates_applied);
                            }
                            Err(_) => {
                                // A copy we cannot update is discarded; the
                                // next access will fetch a fresh one.
                                state.copy = None;
                                state.locked = false;
                                state.lease = None;
                            }
                        }
                    } else if version > state.version + 1 {
                        // Gap: an update went missing; drop the copy and
                        // re-sync on the next access rather than diverge.
                        state.copy = None;
                        state.locked = false;
                        state.lease = None;
                    }
                    // version <= state.version: duplicate push, ignore.
                }
            }
            PrimaryReply::Ack
        }
        PrimaryMsg::Unlock { object, lease } => {
            let secondaries = inner.secondaries.read();
            if let Some(entry) = secondaries.get(&object) {
                let mut state = entry.state.lock();
                state.locked = false;
                if let Some(grant) = lease {
                    // Renewal piggyback: the copy is current again as of
                    // this unlock. Install only over a live copy — a grant
                    // for a copy that was dropped mid-protocol must not
                    // authorize anything.
                    if state.copy.is_some() {
                        install_lease(&mut state, &grant);
                    }
                }
                entry.unlocked.notify_all();
            }
            PrimaryReply::Ack
        }
        PrimaryMsg::Lease(LeaseMsg::Revoke { object, seq }) => {
            // Grantor → holder: the primary could not keep this copy
            // current (an update push failed); stop serving local reads
            // and drop the stale copy.
            let id = ObjectId(object);
            let secondaries = inner.secondaries.read();
            if let Some(entry) = secondaries.get(&id) {
                let mut state = entry.state.lock();
                state.lease = None;
                if state.copy.take().is_some() {
                    RtsStats::bump(&inner.stats.copies_dropped);
                }
                state.locked = false;
                entry.unlocked.notify_all();
            }
            PrimaryReply::Lease(LeaseMsg::RevokeAck { object, seq })
        }
        PrimaryMsg::Lease(LeaseMsg::Renew(request)) => {
            // Holder → grantor: renewal request, presenting the grant the
            // holder currently holds. Re-grant only when that grant is
            // still the latest one issued to the caller — any write since
            // would have renewed (new seq) or revoked it, so a match
            // proves the caller's copy is current.
            let id = ObjectId(request.object);
            let primaries = inner.primaries.read();
            let Some(entry) = primaries.get(&id).cloned() else {
                return PrimaryReply::Error(format!("no such object {id}"));
            };
            drop(primaries);
            let mut core = entry.core.lock();
            let registered = entry.copy_holders.lock().contains(&caller);
            let current = core.leases.grants.get(&caller).map(|rec| rec.seq) == Some(request.seq);
            if inner.leases_enabled() && registered && current {
                let grant = inner.mint_grant(id, &mut core.leases, caller, true);
                PrimaryReply::Lease(LeaseMsg::Renew(grant))
            } else {
                core.leases.grants.remove(&caller);
                entry.copy_holders.lock().remove(&caller);
                PrimaryReply::Lease(LeaseMsg::Revoke {
                    object: request.object,
                    seq: request.seq,
                })
            }
        }
        PrimaryMsg::Lease(other) => {
            PrimaryReply::Error(format!("unexpected lease message {other:?}"))
        }
        PrimaryMsg::WriteBatch { ops } => {
            // One protocol-handling event for the whole message, one apply
            // per op — the accounting split the cost model relies on.
            if caller != inner.node {
                RtsStats::bump(&inner.stats.updates_applied);
            }
            let mut outcomes = Vec::with_capacity(ops.len());
            let mut i = 0;
            while i < ops.len() {
                let object = ObjectId(ops[i].object);
                let mut j = i;
                while j < ops.len() && ops[j].object == ops[i].object {
                    j += 1;
                }
                for op in &ops[i..j] {
                    RtsStats::bump(&inner.stats.batch_ops_applied);
                    inner.handle.telemetry().record(
                        inner.node.0,
                        FlightKind::Apply,
                        op.trace,
                        op.object,
                        0,
                    );
                }
                let run: Vec<&[u8]> = ops[i..j].iter().map(|op| op.op.as_slice()).collect();
                outcomes.extend(primary_write_many(inner, object, &run));
                i = j;
            }
            PrimaryReply::Batch(outcomes)
        }
        PrimaryMsg::UpdateBatch {
            object,
            ops,
            first_version,
        } => {
            if ops.is_empty() {
                return PrimaryReply::Ack;
            }
            let last_version = first_version + ops.len() as u64 - 1;
            let secondaries = inner.secondaries.read();
            if let Some(entry) = secondaries.get(&object) {
                let mut state = entry.state.lock();
                state.seen = state.seen.max(last_version);
                if state.copy.is_some() {
                    if first_version > state.version + 1 {
                        // Gap before the run: an earlier update went
                        // missing; drop the copy and re-sync on the next
                        // access rather than diverge.
                        state.copy = None;
                        state.locked = false;
                        state.lease = None;
                    } else if last_version > state.version {
                        // Apply exactly the unseen suffix, in order (the
                        // prefix up to `state.version` is a duplicate).
                        let start = (state.version + 1 - first_version) as usize;
                        RtsStats::bump(&inner.stats.updates_applied);
                        for op in &ops[start..] {
                            match state
                                .copy
                                .as_mut()
                                .expect("checked above")
                                .apply_encoded(op)
                            {
                                Ok(_) => {
                                    state.version += 1;
                                    RtsStats::bump(&inner.stats.batch_ops_applied);
                                }
                                Err(_) => {
                                    // A copy we cannot update is discarded;
                                    // the next access fetches a fresh one.
                                    state.copy = None;
                                    state.locked = false;
                                    state.lease = None;
                                    break;
                                }
                            }
                        }
                        if state.copy.is_some() {
                            state.locked = true;
                        }
                    }
                    // last_version <= state.version: whole run duplicate.
                }
            }
            PrimaryReply::Ack
        }
    }
}

// ---------------------------------------------------------------------------
// Crash recovery: the re-homing protocol.
//
// When a node dies, the coordinator (lowest live node of the new view) asks
// every survivor which secondary copies of orphaned objects it still holds,
// promotes the freshest copy of each to the new primary, announces the
// re-homing to every survivor, and closes the epoch. Survivors that held
// other (possibly staler) copies drop them — the next access re-fetches from
// the new primary — and objects nobody reported are lost.
// ---------------------------------------------------------------------------

/// RPC dispatch of the recovery protocol (port `RECOVERY`).
fn serve_recovery(inner: &Arc<Inner>, body: &[u8], _caller: NodeId) -> Vec<u8> {
    let reply = match RecoveryMsg::from_bytes(body) {
        Ok(msg) => dispatch_recovery(inner, msg),
        Err(err) => RecoveryReply::Error(format!("bad request: {err}")),
    };
    reply.to_bytes()
}

fn dispatch_recovery(inner: &Arc<Inner>, msg: RecoveryMsg) -> RecoveryReply {
    match msg {
        RecoveryMsg::CopyQuery { dead, .. } => RecoveryReply::Report(local_copy_report(
            inner,
            &dead.iter().map(|&d| NodeId(d)).collect::<Vec<_>>(),
        )),
        RecoveryMsg::Promote { object, .. } => promote_local(inner, ObjectId(object)),
        RecoveryMsg::ReHome {
            object,
            new_home,
            lost,
            ..
        } => {
            apply_rehome(inner, ObjectId(object), NodeId(new_home), lost);
            RecoveryReply::Ack
        }
        RecoveryMsg::Done { epoch } => {
            inner.recovered_epoch.fetch_max(epoch, Ordering::SeqCst);
            RecoveryReply::Ack
        }
        other => RecoveryReply::Error(format!("unexpected recovery message {other:?}")),
    }
}

/// The secondary copies this node holds of objects whose current primary is
/// in `dead`.
fn local_copy_report(inner: &Arc<Inner>, dead: &[NodeId]) -> Vec<CopyInfo> {
    let secondaries = inner.secondaries.read();
    secondaries
        .iter()
        .filter(|(object, _)| dead.contains(&inner.primary_node(**object)))
        .filter_map(|(object, entry)| {
            let state = entry.state.lock();
            state.copy.as_ref().map(|_| CopyInfo {
                object: object.0,
                // The update-version of the copy (primary-era absolute),
                // not the replica-internal counter — two nodes' copies are
                // only comparable on this scale.
                version: state.version,
            })
        })
        .collect()
}

/// Promote this node's secondary copy of `object` to the authoritative
/// primary replica.
fn promote_local(inner: &Arc<Inner>, object: ObjectId) -> RecoveryReply {
    let entry = inner.secondaries.read().get(&object).cloned();
    let Some(entry) = entry else {
        return RecoveryReply::Error(format!("no copy of {object}"));
    };
    let (copy, dedup) = {
        let mut state = entry.state.lock();
        state.locked = false;
        state.version = 0;
        state.seen = 0;
        state.lease = None;
        // The dedup window travelled with the copy: as the new primary we
        // must still answer retries of writes the dead primary acked.
        (state.copy.take(), std::mem::take(&mut state.dedup))
    };
    let Some(copy) = copy else {
        return RecoveryReply::Error(format!("no copy of {object}"));
    };
    let type_name = copy.type_name().to_string();
    // Leases granted by the dead primary may still be live on nodes that
    // have not observed the view change. Reads here are safe immediately
    // (every acked write reached every leased copy), but writes must wait
    // out the longest grant the dead primary could have issued.
    let fence = inner
        .leases_enabled()
        .then(|| Instant::now() + inner.grant_span());
    inner.primaries.write().insert(
        object,
        Arc::new(PrimaryObject {
            core: Mutex::new(PrimaryCore {
                replica: copy,
                dedup,
                leases: LeaseTable {
                    fence,
                    ..LeaseTable::default()
                },
            }),
            copy_holders: Mutex::new(HashSet::new()),
            type_name,
        }),
    );
    RecoveryReply::Ack
}

/// Record a re-homing (or loss) published by the recovery coordinator.
fn apply_rehome(inner: &Arc<Inner>, object: ObjectId, new_home: NodeId, lost: bool) {
    if lost {
        inner.lost.write().insert(object);
        return;
    }
    inner.rehomed.write().insert(object, new_home);
    if new_home != inner.node && !crate::sabotage::rehome_keeps_stale_copies() {
        // Any surviving local copy is as stale as the moment of the crash
        // and the new primary does not list us as a holder: drop it, the
        // next access re-fetches. The version counters reset with it —
        // the new primary starts a fresh version era.
        if let Some(entry) = inner.secondaries.read().get(&object) {
            let mut state = entry.state.lock();
            state.copy = None;
            state.locked = false;
            state.version = 0;
            state.seen = 0;
            state.lease = None;
            state.dedup = DedupWindow::new();
            entry.unlocked.notify_all();
        }
    }
}

/// The coordinator side: runs on the lowest live node after every view
/// change. Idempotent per epoch in effect — a re-run re-promotes the same
/// freshest copies.
fn coordinate_recovery(inner: &Arc<Inner>, view: ViewSnapshot) {
    if view.coordinator() != Some(inner.node) {
        return;
    }
    let telemetry = Arc::clone(inner.handle.telemetry());
    // Phase timeline: 0 = death detected (recovery starts), 1 = copy
    // reports collected, 2 = re-homing published. The two histograms give
    // the coordinate vs re-home split of every recovery epoch.
    telemetry.record_traced(inner.node.0, FlightKind::RehomePhase, view.epoch, 0);
    let started = Instant::now();
    let dead: Vec<NodeId> = (0..inner.num_nodes)
        .map(NodeId::from)
        .filter(|n| !view.contains(*n))
        .collect();
    let deadline = Instant::now() + inner.recovery.rehome_wait;
    // Phase 1: collect surviving copies from every survivor.
    let mut candidates: HashMap<u64, Vec<(NodeId, u64)>> = HashMap::new();
    for survivor in &view.alive {
        let report = if *survivor == inner.node {
            local_copy_report(inner, &dead)
        } else {
            match coordinator_rpc(
                inner,
                *survivor,
                &RecoveryMsg::CopyQuery {
                    epoch: view.epoch,
                    dead: dead.iter().map(|n| n.0).collect(),
                },
                deadline,
            ) {
                Ok(RecoveryReply::Report(report)) => report,
                _ => Vec::new(), // a silent survivor just contributes nothing
            }
        };
        for info in report {
            candidates
                .entry(info.object)
                .or_default()
                .push((*survivor, info.version));
        }
    }
    telemetry.record_traced(inner.node.0, FlightKind::RehomePhase, view.epoch, 1);
    telemetry
        .registry()
        .histogram("rts.recovery.coordinate_ns")
        .record(started.elapsed().as_nanos() as u64);
    let rehome_started = Instant::now();
    // Phase 2 + 3: promote the freshest surviving copy and publish the new
    // home. Every *acked* write reached every copy holder (the primary
    // replies only after all pushes are acknowledged), so any surviving
    // copy is safe to promote — freshness only decides how many unacked
    // in-flight writes ride along. That is also why a failed Promote falls
    // back to the next-freshest candidate instead of abandoning the
    // object: a holder may have discarded its copy between the query and
    // the promotion (or died), while a staler copy elsewhere still holds
    // everything ever acknowledged.
    for (object, mut holders) in candidates {
        let object = ObjectId(object);
        // Freshest first; ties break toward the lowest node id so re-runs
        // are deterministic.
        holders.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut promoted_holder = None;
        for (holder, _version) in holders {
            let promoted = if holder == inner.node {
                matches!(promote_local(inner, object), RecoveryReply::Ack)
            } else {
                matches!(
                    coordinator_rpc(
                        inner,
                        holder,
                        &RecoveryMsg::Promote {
                            epoch: view.epoch,
                            object: object.0,
                            trace: trace::current(),
                        },
                        deadline,
                    ),
                    Ok(RecoveryReply::Ack)
                )
            };
            if promoted {
                promoted_holder = Some(holder);
                break;
            }
        }
        let Some(holder) = promoted_holder else {
            continue; // a later epoch (holder died too) re-runs recovery
        };
        let announce = RecoveryMsg::ReHome {
            epoch: view.epoch,
            object: object.0,
            new_home: holder.0,
            lost: false,
            trace: trace::current(),
        };
        for survivor in &view.alive {
            if *survivor == inner.node {
                apply_rehome(inner, object, holder, false);
            } else {
                let _ = coordinator_rpc(inner, *survivor, &announce, deadline);
            }
        }
    }
    // Phase 4: close the epoch. Survivors treat orphaned objects without a
    // published re-homing as lost.
    for survivor in &view.alive {
        if *survivor == inner.node {
            inner
                .recovered_epoch
                .fetch_max(view.epoch, Ordering::SeqCst);
        } else {
            let _ = coordinator_rpc(
                inner,
                *survivor,
                &RecoveryMsg::Done { epoch: view.epoch },
                deadline,
            );
        }
    }
    telemetry.record_traced(inner.node.0, FlightKind::RehomePhase, view.epoch, 2);
    telemetry
        .registry()
        .histogram("rts.recovery.rehome_ns")
        .record(rehome_started.elapsed().as_nanos() as u64);
}

fn coordinator_rpc(
    inner: &Arc<Inner>,
    dst: NodeId,
    msg: &RecoveryMsg,
    deadline: Instant,
) -> Result<RecoveryReply, RtsError> {
    let reply = recovery_rpc(
        &inner.handle,
        &inner.detector,
        &inner.recovery,
        dst,
        ports::RECOVERY,
        msg.to_bytes(),
        deadline,
    )?;
    RecoveryReply::from_bytes(&reply)
        .map_err(|err| RtsError::Communication(format!("bad reply: {err}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use orca_amoeba::network::Network;
    use orca_object::testing::{Accumulator, AccumulatorOp};
    use orca_object::ObjectType;

    fn registry() -> ObjectRegistry {
        let mut registry = ObjectRegistry::new();
        registry.register::<Accumulator>();
        registry
    }

    fn start_all(
        net: &Network,
        policy: WritePolicy,
        replication: ReplicationPolicy,
    ) -> Vec<PrimaryCopyRts> {
        net.node_ids()
            .into_iter()
            .map(|n| PrimaryCopyRts::start(net.handle(n), registry(), policy, replication))
            .collect()
    }

    fn add(rts: &PrimaryCopyRts, id: ObjectId, n: i64) -> i64 {
        let reply = rts
            .invoke(
                id,
                Accumulator::TYPE_NAME,
                OpKind::Write,
                &AccumulatorOp::Add(n).to_bytes(),
            )
            .unwrap();
        i64::from_bytes(&reply).unwrap()
    }

    fn read(rts: &PrimaryCopyRts, id: ObjectId) -> i64 {
        let reply = rts
            .invoke(
                id,
                Accumulator::TYPE_NAME,
                OpKind::Read,
                &AccumulatorOp::Read.to_bytes(),
            )
            .unwrap();
        i64::from_bytes(&reply).unwrap()
    }

    #[test]
    fn remote_reads_and_writes_through_primary() {
        for policy in [WritePolicy::Invalidate, WritePolicy::Update] {
            let net = Network::reliable(3);
            let rtses = start_all(&net, policy, ReplicationPolicy::never_replicate());
            let id = rtses[0]
                .create_object(Accumulator::TYPE_NAME, &0i64.to_bytes())
                .unwrap();
            assert_eq!(add(&rtses[1], id, 5), 5);
            assert_eq!(add(&rtses[2], id, 7), 12);
            assert_eq!(read(&rtses[0], id), 12);
            assert_eq!(read(&rtses[2], id), 12);
            assert!(rtses[2].stats().remote_reads >= 1);
            assert!(rtses[1].stats().remote_writes >= 1);
            for rts in &rtses {
                rts.shutdown();
            }
        }
    }

    #[test]
    fn dynamic_replication_fetches_copy_after_many_reads() {
        let net = Network::reliable(2);
        let replication = ReplicationPolicy {
            fetch_ratio: 2.0,
            drop_ratio: 0.5,
            window: 8,
            ..ReplicationPolicy::default()
        };
        let rtses = start_all(&net, WritePolicy::Update, replication);
        let id = rtses[0]
            .create_object(Accumulator::TYPE_NAME, &1i64.to_bytes())
            .unwrap();
        assert!(!rtses[1].has_local_copy(id));
        for _ in 0..16 {
            assert_eq!(read(&rtses[1], id), 1);
        }
        assert!(rtses[1].has_local_copy(id), "copy should have been fetched");
        let before = rtses[1].stats();
        assert!(before.copies_fetched >= 1);
        // Reads now hit the local copy.
        let local_before = before.local_reads;
        for _ in 0..5 {
            assert_eq!(read(&rtses[1], id), 1);
        }
        assert!(rtses[1].stats().local_reads >= local_before + 5);
        for rts in &rtses {
            rts.shutdown();
        }
    }

    #[test]
    fn update_policy_keeps_secondary_copy_current() {
        let net = Network::reliable(2);
        let replication = ReplicationPolicy {
            fetch_ratio: 1.0,
            drop_ratio: 0.0,
            window: 4,
            ..ReplicationPolicy::default()
        };
        let rtses = start_all(&net, WritePolicy::Update, replication);
        let id = rtses[0]
            .create_object(Accumulator::TYPE_NAME, &0i64.to_bytes())
            .unwrap();
        for _ in 0..8 {
            read(&rtses[1], id);
        }
        assert!(rtses[1].has_local_copy(id));
        // A write at the primary must propagate to the secondary copy.
        assert_eq!(add(&rtses[0], id, 9), 9);
        assert_eq!(read(&rtses[1], id), 9);
        assert!(rtses[1].stats().updates_applied >= 1);
        for rts in &rtses {
            rts.shutdown();
        }
    }

    #[test]
    fn invalidate_policy_discards_secondary_copy_on_write() {
        let net = Network::reliable(2);
        let replication = ReplicationPolicy {
            fetch_ratio: 1.0,
            drop_ratio: 0.0,
            window: 4,
            ..ReplicationPolicy::default()
        };
        let rtses = start_all(&net, WritePolicy::Invalidate, replication);
        let id = rtses[0]
            .create_object(Accumulator::TYPE_NAME, &0i64.to_bytes())
            .unwrap();
        for _ in 0..8 {
            read(&rtses[1], id);
        }
        assert!(rtses[1].has_local_copy(id));
        assert_eq!(add(&rtses[0], id, 3), 3);
        assert!(!rtses[1].has_local_copy(id), "copy should be invalidated");
        assert_eq!(read(&rtses[1], id), 3);
        assert!(rtses[1].stats().invalidations_received >= 1);
        for rts in &rtses {
            rts.shutdown();
        }
    }

    #[test]
    fn concurrent_writers_from_many_nodes_are_serialized() {
        let net = Network::reliable(4);
        let rtses = start_all(&net, WritePolicy::Update, ReplicationPolicy::default());
        let id = rtses[0]
            .create_object(Accumulator::TYPE_NAME, &0i64.to_bytes())
            .unwrap();
        let mut handles = Vec::new();
        for rts in &rtses {
            let rts = rts.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..25 {
                    add(&rts, id, 1);
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(read(&rtses[3], id), 100);
        for rts in &rtses {
            rts.shutdown();
        }
    }

    #[test]
    fn replication_policy_fetches_then_drops_copy_across_both_transitions() {
        let net = Network::reliable(2);
        let replication = ReplicationPolicy {
            fetch_ratio: 2.0,
            drop_ratio: 0.5,
            window: 8,
            ..ReplicationPolicy::default()
        };
        let rtses = start_all(&net, WritePolicy::Update, replication);
        let id = rtses[0]
            .create_object(Accumulator::TYPE_NAME, &0i64.to_bytes())
            .unwrap();

        // Transition 1: a read-heavy window pushes the read/write ratio
        // over fetch_ratio and a secondary copy is created.
        for _ in 0..8 {
            read(&rtses[1], id);
        }
        assert!(rtses[1].has_local_copy(id), "read-heavy window must fetch");
        assert_eq!(rtses[1].stats().copies_fetched, 1);
        assert_eq!(rtses[1].stats().copies_dropped, 0);

        // Transition 2: a write-heavy window drags the ratio under
        // drop_ratio and the copy is discarded again.
        for n in 0..8 {
            add(&rtses[1], id, n);
        }
        assert!(
            !rtses[1].has_local_copy(id),
            "write-heavy window must drop the copy"
        );
        assert_eq!(rtses[1].stats().copies_dropped, 1);

        // And the cycle restarts: reads re-fetch.
        for _ in 0..8 {
            read(&rtses[1], id);
        }
        assert!(rtses[1].has_local_copy(id));
        assert_eq!(rtses[1].stats().copies_fetched, 2);
        for rts in &rtses {
            rts.shutdown();
        }
    }

    #[test]
    fn dropped_reply_from_crashed_primary_surfaces_timeout() {
        let net = Network::reliable(2);
        let rtses = start_all(
            &net,
            WritePolicy::Update,
            ReplicationPolicy::never_replicate(),
        );
        let id = rtses[0]
            .create_object(Accumulator::TYPE_NAME, &0i64.to_bytes())
            .unwrap();
        assert_eq!(add(&rtses[1], id, 3), 3);

        // The primary crashes; its replies are dropped. The write must
        // surface Timeout within the configured deadline, not hang.
        net.crash(NodeId(0));
        rtses[1].set_op_timeout(Duration::from_millis(150));
        let started = std::time::Instant::now();
        let err = rtses[1]
            .invoke(
                id,
                Accumulator::TYPE_NAME,
                OpKind::Write,
                &AccumulatorOp::Add(1).to_bytes(),
            )
            .unwrap_err();
        assert_eq!(err, RtsError::Timeout);
        assert!(started.elapsed() < Duration::from_secs(5));

        // Remote reads hit the same deadline.
        let err = rtses[1]
            .invoke(
                id,
                Accumulator::TYPE_NAME,
                OpKind::Read,
                &AccumulatorOp::Read.to_bytes(),
            )
            .unwrap_err();
        assert_eq!(err, RtsError::Timeout);

        // After recovery the system keeps working.
        net.recover(NodeId(0));
        assert_eq!(add(&rtses[1], id, 4), 7);
        for rts in &rtses {
            rts.shutdown();
        }
    }

    fn start_all_recoverable(
        net: &Network,
        policy: WritePolicy,
        replication: ReplicationPolicy,
        recovery: RecoveryConfig,
    ) -> Vec<PrimaryCopyRts> {
        net.node_ids()
            .into_iter()
            .map(|n| {
                PrimaryCopyRts::start_recoverable(
                    net.handle(n),
                    registry(),
                    policy,
                    replication,
                    recovery,
                    None,
                )
            })
            .collect()
    }

    fn wait_for_view_epoch(rts: &PrimaryCopyRts, epoch: u64) {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while rts.membership_view().expect("recovery enabled").epoch < epoch {
            assert!(
                std::time::Instant::now() < deadline,
                "failure never detected"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Tentpole: the primary dies; the freshest surviving secondary copy
    /// is promoted, every acknowledged write survives, and survivors keep
    /// reading and writing the object.
    #[test]
    fn primary_crash_rehomes_object_onto_survivor_copy() {
        let net = Network::reliable(3);
        let eager = ReplicationPolicy {
            fetch_ratio: 0.0,
            drop_ratio: -1.0,
            window: 1,
            ..ReplicationPolicy::default()
        };
        let rtses = start_all_recoverable(&net, WritePolicy::Update, eager, RecoveryConfig::fast());
        let id = rtses[0]
            .create_object(Accumulator::TYPE_NAME, &0i64.to_bytes())
            .unwrap();
        // Prime secondary copies on both survivors, then write through the
        // primary so the copies carry real state.
        assert_eq!(read(&rtses[1], id), 0);
        assert_eq!(read(&rtses[2], id), 0);
        assert_eq!(add(&rtses[1], id, 5), 5);
        assert_eq!(add(&rtses[2], id, 7), 12);
        assert!(rtses[1].has_local_copy(id) && rtses[2].has_local_copy(id));

        net.crash(NodeId(0));
        wait_for_view_epoch(&rtses[1], 1);
        // Survivors keep operating on the re-homed object; no acknowledged
        // write is lost.
        assert_eq!(add(&rtses[1], id, 1), 13);
        assert_eq!(read(&rtses[2], id), 13);
        let new_primary = rtses[1].primary_of(id);
        assert_ne!(new_primary, NodeId(0), "object was not re-homed");
        let view = rtses[1].membership_view().unwrap();
        assert_eq!(view.alive, vec![NodeId(1), NodeId(2)]);
        for rts in &rtses {
            rts.shutdown();
        }
    }

    /// With no secondary copy anywhere, a dead primary means the object is
    /// gone: survivors get a fast, explicit `ObjectLost` — never a hang.
    #[test]
    fn primary_crash_without_copies_reports_object_lost() {
        let net = Network::reliable(2);
        let rtses = start_all_recoverable(
            &net,
            WritePolicy::Update,
            ReplicationPolicy::never_replicate(),
            RecoveryConfig::fast(),
        );
        let id = rtses[0]
            .create_object(Accumulator::TYPE_NAME, &3i64.to_bytes())
            .unwrap();
        assert_eq!(read(&rtses[1], id), 3);
        net.crash(NodeId(0));
        wait_for_view_epoch(&rtses[1], 1);
        let started = std::time::Instant::now();
        let err = rtses[1]
            .invoke(
                id,
                Accumulator::TYPE_NAME,
                OpKind::Write,
                &AccumulatorOp::Add(1).to_bytes(),
            )
            .unwrap_err();
        assert_eq!(err, RtsError::ObjectLost(id));
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "ObjectLost was not fast"
        );
        // The verdict is sticky and immediate afterwards.
        let err = rtses[1]
            .invoke(
                id,
                Accumulator::TYPE_NAME,
                OpKind::Read,
                &AccumulatorOp::Read.to_bytes(),
            )
            .unwrap_err();
        assert_eq!(err, RtsError::ObjectLost(id));
        for rts in &rtses {
            rts.shutdown();
        }
    }

    /// Satellite bugfix: with detection only (no re-homing), an invocation
    /// aimed at a *killed* node fails fast with the distinguishable
    /// `NodeDown` instead of waiting out the full operation timeout.
    #[test]
    fn detect_only_fails_fast_with_node_down() {
        let net = Network::reliable(2);
        let rtses = start_all_recoverable(
            &net,
            WritePolicy::Update,
            ReplicationPolicy::never_replicate(),
            RecoveryConfig {
                heartbeat_every: Duration::from_millis(20),
                suspect_after: 4,
                ..RecoveryConfig::detect_only()
            },
        );
        let id = rtses[0]
            .create_object(Accumulator::TYPE_NAME, &0i64.to_bytes())
            .unwrap();
        assert_eq!(add(&rtses[1], id, 2), 2);
        // The default op timeout is 10 s; NodeDown must beat it by far.
        net.crash(NodeId(0));
        wait_for_view_epoch(&rtses[1], 1);
        let started = std::time::Instant::now();
        let err = rtses[1]
            .invoke(
                id,
                Accumulator::TYPE_NAME,
                OpKind::Write,
                &AccumulatorOp::Add(1).to_bytes(),
            )
            .unwrap_err();
        assert_eq!(err, RtsError::NodeDown(NodeId(0)));
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "NodeDown was not fail-fast"
        );
        for rts in &rtses {
            rts.shutdown();
        }
    }

    #[test]
    fn blocked_write_at_primary_retries_until_guard_true() {
        let net = Network::reliable(2);
        let rtses = start_all(
            &net,
            WritePolicy::Update,
            ReplicationPolicy::never_replicate(),
        );
        let id = rtses[0]
            .create_object(Accumulator::TYPE_NAME, &0i64.to_bytes())
            .unwrap();
        let waiter = {
            let rts = rtses[1].clone();
            std::thread::spawn(move || {
                let reply = rts
                    .invoke(
                        id,
                        Accumulator::TYPE_NAME,
                        OpKind::Read,
                        &AccumulatorOp::AwaitAtLeast(4).to_bytes(),
                    )
                    .unwrap();
                i64::from_bytes(&reply).unwrap()
            })
        };
        std::thread::sleep(Duration::from_millis(80));
        add(&rtses[0], id, 10);
        assert_eq!(waiter.join().unwrap(), 10);
        for rts in &rtses {
            rts.shutdown();
        }
    }

    /// Tentpole: a secondary holding a valid read lease serves linearizable
    /// reads without touching the network at all — zero messages per read.
    #[test]
    fn leased_reads_are_zero_message() {
        let net = Network::reliable(2);
        let replication = ReplicationPolicy {
            fetch_ratio: 1.0,
            drop_ratio: 0.0,
            window: 4,
            ..ReplicationPolicy::default()
        };
        let rtses = start_all(&net, WritePolicy::Update, replication);
        let id = rtses[0]
            .create_object(Accumulator::TYPE_NAME, &0i64.to_bytes())
            .unwrap();
        // Prime: fetch a copy (the State reply carries the first grant) and
        // push one write through so the copy carries real state and a
        // renewed lease from the unlock.
        for _ in 0..8 {
            read(&rtses[1], id);
        }
        assert!(rtses[1].has_local_copy(id));
        assert_eq!(add(&rtses[0], id, 4), 4);
        assert!(rtses[0].inner.lease_counters.grants.get() >= 1);

        let wire_before = net.stats();
        let leased_before = rtses[1].inner.lease_counters.local_reads.get();
        for _ in 0..20 {
            assert_eq!(read(&rtses[1], id), 4);
        }
        let sent = net.stats().since(&wire_before).per_node[1];
        assert_eq!(
            sent.p2p_sent + sent.broadcasts_sent,
            0,
            "leased reads must not send any messages"
        );
        assert!(rtses[1].inner.lease_counters.local_reads.get() >= leased_before + 20);
        for rts in &rtses {
            rts.shutdown();
        }
    }

    /// An expired lease is renewed with one RPC — the holder presents its
    /// old grant and, because no write intervened, gets a fresh one without
    /// re-fetching the copy.
    #[test]
    fn expired_lease_renews_without_refetching_copy() {
        let net = Network::reliable(2);
        let replication = ReplicationPolicy {
            fetch_ratio: 1.0,
            drop_ratio: 0.0,
            window: 4,
            read_lease_ms: 25,
            ..ReplicationPolicy::default()
        };
        let rtses = start_all(&net, WritePolicy::Update, replication);
        let id = rtses[0]
            .create_object(Accumulator::TYPE_NAME, &2i64.to_bytes())
            .unwrap();
        for _ in 0..8 {
            assert_eq!(read(&rtses[1], id), 2);
        }
        assert!(rtses[1].has_local_copy(id));
        let fetched = rtses[1].stats().copies_fetched;
        std::thread::sleep(Duration::from_millis(80)); // let the lease lapse
        assert_eq!(read(&rtses[1], id), 2);
        assert_eq!(
            rtses[1].stats().copies_fetched,
            fetched,
            "renewal must revalidate the held copy, not re-fetch it"
        );
        assert!(rtses[0].inner.lease_counters.renewals.get() >= 1);
        for rts in &rtses {
            rts.shutdown();
        }
    }

    /// Lease-holder crash: a write at the primary settles the dead holder's
    /// grant within the grant's own lifetime and completes; the holder is
    /// deregistered so later writes don't keep paying the push timeout.
    #[test]
    fn write_settles_lease_of_crashed_holder() {
        let net = Network::reliable(2);
        let replication = ReplicationPolicy {
            fetch_ratio: 1.0,
            drop_ratio: 0.0,
            window: 4,
            // Long enough that the grant is still live when the push times
            // out below, forcing an explicit revoke (an already-expired
            // grant would be settled silently).
            read_lease_ms: 200,
            ..ReplicationPolicy::default()
        };
        let rtses = start_all(&net, WritePolicy::Update, replication);
        let id = rtses[0]
            .create_object(Accumulator::TYPE_NAME, &0i64.to_bytes())
            .unwrap();
        for _ in 0..8 {
            read(&rtses[1], id);
        }
        assert_eq!(rtses[0].copy_holders(id), vec![NodeId(1)]);

        // No failure detector here: the primary discovers the crash only
        // through the push timing out, then must settle the holder's lease
        // (bounded by the grant span) rather than hang or stay wedged.
        net.crash(NodeId(1));
        rtses[0].set_op_timeout(Duration::from_millis(150));
        let started = std::time::Instant::now();
        assert_eq!(add(&rtses[0], id, 6), 6);
        assert!(started.elapsed() < Duration::from_secs(5));
        assert!(
            rtses[0].copy_holders(id).is_empty(),
            "unreachable holder must be deregistered after its lease settles"
        );
        assert!(rtses[0].inner.lease_counters.revokes.get() >= 1);
        // Later writes no longer push to the dead holder at all.
        let started = std::time::Instant::now();
        assert_eq!(add(&rtses[0], id, 1), 7);
        assert!(started.elapsed() < Duration::from_millis(100));
        for rts in &rtses {
            rts.shutdown();
        }
    }

    /// Lease-grantor crash: the promoted primary serves reads immediately
    /// but fences *writes* until every grant the dead primary could have
    /// issued has expired, so stale leased copies elsewhere can never
    /// observe a value the new era wrote.
    #[test]
    fn promoted_primary_fences_writes_until_old_grants_expire() {
        let net = Network::reliable(3);
        let eager = ReplicationPolicy {
            fetch_ratio: 0.0,
            drop_ratio: -1.0,
            window: 1,
            read_lease_ms: 300,
            ..ReplicationPolicy::default()
        };
        let rtses = start_all_recoverable(&net, WritePolicy::Update, eager, RecoveryConfig::fast());
        let id = rtses[0]
            .create_object(Accumulator::TYPE_NAME, &0i64.to_bytes())
            .unwrap();
        assert_eq!(read(&rtses[1], id), 0);
        assert_eq!(read(&rtses[2], id), 0);
        assert_eq!(add(&rtses[1], id, 5), 5);

        let crashed = std::time::Instant::now();
        net.crash(NodeId(0));
        wait_for_view_epoch(&rtses[1], 1);
        // The first write after promotion completes only after the fence:
        // promotion happens strictly after the crash, and the fence spans
        // the longest grant the dead primary could have had outstanding
        // (2 × read_lease_ms = 600 ms past promotion).
        assert_eq!(add(&rtses[2], id, 1), 6);
        assert!(
            crashed.elapsed() >= Duration::from_millis(550),
            "write must wait out grants issued by the dead primary"
        );
        assert_eq!(read(&rtses[1], id), 6);
        for rts in &rtses {
            rts.shutdown();
        }
    }
}
