//! The point-to-point (primary-copy) runtime system (§3.2.2 of the paper).
//!
//! Used when the network offers no broadcast. Every object has a *primary*
//! copy on the node that created it; other nodes may hold *secondary* copies.
//! Reads execute on a local copy when one is valid, otherwise they are sent
//! to the primary by RPC. Writes are always executed at the primary, which
//! then runs one of two protocols against the secondaries:
//!
//! * **Invalidation** ([`WritePolicy::Invalidate`]): the primary applies the
//!   operation, sends an invalidation to every copy holder, collects the
//!   acknowledgements, and only then completes the write. Invalidated nodes
//!   fetch a fresh copy (or read remotely) on their next access.
//! * **Two-phase update** ([`WritePolicy::Update`]): the primary ships the
//!   *operation* to every copy holder (phase 1); each holder locks its copy,
//!   applies the operation and acknowledges while keeping the copy locked;
//!   once all acknowledgements are in, the primary sends unlock messages
//!   (phase 2). Reads attempted while a copy is locked wait until it is
//!   unlocked, which is what makes concurrent updates sequentially
//!   consistent.
//!
//! Whether a node holds a copy at all is decided dynamically
//! ([`ReplicationPolicy`]): each node keeps per-object read/write counters;
//! when the read/write ratio of its own accesses exceeds a threshold it
//! fetches a copy from the primary, and when the ratio falls below a lower
//! threshold it drops the copy again — exactly the hysteresis rule sketched
//! in the paper.

pub mod messages;

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use orca_amoeba::network::NetworkHandle;
use orca_amoeba::node::ports;
use orca_amoeba::rpc::{rpc_call_timeout, RpcError, RpcServer};
use orca_amoeba::NodeId;
use orca_object::{AnyReplica, AppliedOutcome, ObjectError, ObjectId, ObjectRegistry, OpKind};
use orca_wire::Wire;
use parking_lot::{Condvar, Mutex, RwLock};

use crate::stats::{AccessStats, RtsStats, RtsStatsSnapshot};
use crate::{RtsError, RtsKind, RuntimeSystem};
use messages::{PrimaryMsg, PrimaryReply};

/// How a write at the primary propagates to secondary copies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePolicy {
    /// Discard all secondary copies; they are re-fetched on demand.
    Invalidate,
    /// Push the operation to all secondary copies with a two-phase
    /// lock/update/unlock exchange.
    Update,
}

/// Dynamic replication thresholds (read/write-ratio hysteresis).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicationPolicy {
    /// Fetch a local copy once the node's own read/write ratio for the
    /// object exceeds this value.
    pub fetch_ratio: f64,
    /// Drop the local copy once the ratio falls below this value.
    pub drop_ratio: f64,
    /// Re-evaluate the decision every this many accesses.
    pub window: u64,
    /// Disable dynamic replication entirely (no secondary copies are ever
    /// created; all remote accesses go to the primary).
    pub enabled: bool,
}

impl Default for ReplicationPolicy {
    fn default() -> Self {
        ReplicationPolicy {
            fetch_ratio: 4.0,
            drop_ratio: 1.0,
            window: 16,
            enabled: true,
        }
    }
}

impl ReplicationPolicy {
    /// Policy that never creates secondary copies.
    pub fn never_replicate() -> Self {
        ReplicationPolicy {
            enabled: false,
            ..ReplicationPolicy::default()
        }
    }
}

/// How long a caller sleeps before retrying an operation whose guard was
/// false at the primary.
const BLOCKED_RETRY_DELAY: Duration = Duration::from_millis(20);

/// Default per-invocation RPC deadline; see
/// [`PrimaryCopyRts::set_op_timeout`].
const DEFAULT_OP_TIMEOUT: Duration = Duration::from_secs(10);

/// Primary-side record of one object.
struct PrimaryObject {
    /// The authoritative replica. The mutex doubles as the object lock held
    /// for the duration of the write protocol.
    replica: Mutex<Box<dyn AnyReplica>>,
    /// Nodes currently holding a secondary copy.
    copy_holders: Mutex<HashSet<NodeId>>,
    type_name: String,
}

/// Secondary-side record of one object on one node.
#[derive(Default)]
struct SecondaryState {
    /// Valid local copy, if any.
    copy: Option<Box<dyn AnyReplica>>,
    /// True between phase 1 (update applied) and phase 2 (unlock) of the
    /// update protocol; local reads wait while this is set.
    locked: bool,
}

struct SecondaryObject {
    state: Mutex<SecondaryState>,
    unlocked: Condvar,
    access: AccessStats,
}

struct Inner {
    node: NodeId,
    num_nodes: usize,
    handle: NetworkHandle,
    registry: ObjectRegistry,
    write_policy: WritePolicy,
    replication: ReplicationPolicy,
    primaries: RwLock<HashMap<ObjectId, Arc<PrimaryObject>>>,
    secondaries: RwLock<HashMap<ObjectId, Arc<SecondaryObject>>>,
    next_object: AtomicU64,
    /// Per-invocation RPC deadline in milliseconds.
    op_timeout_ms: AtomicU64,
    stats: Arc<RtsStats>,
}

impl Inner {
    fn op_timeout(&self) -> Duration {
        Duration::from_millis(self.op_timeout_ms.load(Ordering::Relaxed))
    }
}

/// Handle to one node's primary-copy runtime system. Cheap to clone.
#[derive(Clone)]
pub struct PrimaryCopyRts {
    inner: Arc<Inner>,
    server: Arc<Mutex<Option<RpcServer>>>,
}

impl std::fmt::Debug for PrimaryCopyRts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrimaryCopyRts")
            .field("node", &self.inner.node)
            .field("policy", &self.inner.write_policy)
            .finish()
    }
}

impl PrimaryCopyRts {
    /// Start the point-to-point runtime system on the node owning `handle`.
    pub fn start(
        handle: NetworkHandle,
        registry: ObjectRegistry,
        write_policy: WritePolicy,
        replication: ReplicationPolicy,
    ) -> Self {
        let inner = Arc::new(Inner {
            node: handle.node(),
            num_nodes: handle.num_nodes(),
            handle: handle.clone(),
            registry,
            write_policy,
            replication,
            primaries: RwLock::new(HashMap::new()),
            secondaries: RwLock::new(HashMap::new()),
            next_object: AtomicU64::new(1),
            op_timeout_ms: AtomicU64::new(DEFAULT_OP_TIMEOUT.as_millis() as u64),
            stats: RtsStats::new_shared(),
        });
        let service_inner = Arc::clone(&inner);
        let server =
            RpcServer::serve_concurrent(handle, ports::RTS_PRIMARY, move |body, caller| {
                serve_request(&service_inner, body, caller)
            });
        PrimaryCopyRts {
            inner,
            server: Arc::new(Mutex::new(Some(server))),
        }
    }

    /// Stop the RPC service of this node. Idempotent.
    pub fn shutdown(&self) {
        if let Some(server) = self.server.lock().take() {
            server.shutdown();
        }
    }

    /// Set the per-invocation deadline of operations shipped to other
    /// nodes. An RPC whose reply does not arrive within this duration (for
    /// example because the primary crashed and the reply was dropped)
    /// surfaces [`RtsError::Timeout`] instead of blocking the invoking
    /// process forever. Guard retries (a `Blocked` reply *is* a reply)
    /// restart the deadline.
    pub fn set_op_timeout(&self, timeout: Duration) {
        self.inner
            .op_timeout_ms
            .store(timeout.as_millis() as u64, Ordering::Relaxed);
    }

    /// True if this node currently holds a valid secondary copy of `object`.
    pub fn has_local_copy(&self, object: ObjectId) -> bool {
        if self.primary_node(object) == self.inner.node {
            return true;
        }
        let secondaries = self.inner.secondaries.read();
        secondaries
            .get(&object)
            .map(|entry| entry.state.lock().copy.is_some())
            .unwrap_or(false)
    }

    fn primary_node(&self, object: ObjectId) -> NodeId {
        NodeId(object.creator_index())
    }

    fn rpc(&self, dst: NodeId, msg: &PrimaryMsg) -> Result<PrimaryReply, RtsError> {
        let reply = rpc_call_timeout(
            &self.inner.handle,
            dst,
            ports::RTS_PRIMARY,
            msg.to_bytes(),
            self.inner.op_timeout(),
        )
        .map_err(|err| match err {
            RpcError::Timeout => RtsError::Timeout,
            other => RtsError::Communication(other.to_string()),
        })?;
        PrimaryReply::from_bytes(&reply)
            .map_err(|err| RtsError::Communication(format!("bad reply: {err}")))
    }

    fn secondary_entry(&self, object: ObjectId) -> Arc<SecondaryObject> {
        {
            let secondaries = self.inner.secondaries.read();
            if let Some(entry) = secondaries.get(&object) {
                return Arc::clone(entry);
            }
        }
        let mut secondaries = self.inner.secondaries.write();
        Arc::clone(secondaries.entry(object).or_insert_with(|| {
            Arc::new(SecondaryObject {
                state: Mutex::new(SecondaryState::default()),
                unlocked: Condvar::new(),
                access: AccessStats::default(),
            })
        }))
    }

    fn invoke_at_primary_local(
        &self,
        object: ObjectId,
        op: &[u8],
        kind: OpKind,
    ) -> Result<Vec<u8>, RtsError> {
        loop {
            let outcome = match kind {
                OpKind::Read => {
                    let reply = primary_read(&self.inner, object, op)?;
                    RtsStats::bump(&self.inner.stats.local_reads);
                    reply
                }
                OpKind::Write => {
                    RtsStats::bump(&self.inner.stats.writes);
                    primary_write(&self.inner, object, op)?
                }
            };
            match outcome {
                AppliedOutcome::Done(reply) => return Ok(reply),
                AppliedOutcome::Blocked => {
                    RtsStats::bump(&self.inner.stats.guard_retries);
                    std::thread::sleep(BLOCKED_RETRY_DELAY);
                }
            }
        }
    }

    fn invoke_remote(
        &self,
        object: ObjectId,
        type_name: &str,
        kind: OpKind,
        op: &[u8],
    ) -> Result<Vec<u8>, RtsError> {
        let primary = self.primary_node(object);
        let entry = self.secondary_entry(object);
        match kind {
            OpKind::Read => entry.access.record_read(),
            OpKind::Write => entry.access.record_write(),
        }
        let result = match kind {
            OpKind::Read => {
                if let Some(reply) = self.try_local_secondary_read(&entry, op)? {
                    RtsStats::bump(&self.inner.stats.local_reads);
                    Ok(reply)
                } else {
                    RtsStats::bump(&self.inner.stats.remote_reads);
                    self.remote_op(
                        primary,
                        PrimaryMsg::ReadAt {
                            object,
                            op: op.to_vec(),
                        },
                    )
                }
            }
            OpKind::Write => {
                RtsStats::bump(&self.inner.stats.writes);
                RtsStats::bump(&self.inner.stats.remote_writes);
                self.remote_op(
                    primary,
                    PrimaryMsg::WriteAt {
                        object,
                        op: op.to_vec(),
                    },
                )
            }
        };
        self.maybe_adjust_replication(object, type_name, primary, &entry)?;
        result
    }

    /// Attempt a read on a valid, unlocked local secondary copy.
    fn try_local_secondary_read(
        &self,
        entry: &SecondaryObject,
        op: &[u8],
    ) -> Result<Option<Vec<u8>>, RtsError> {
        let mut state = entry.state.lock();
        loop {
            while state.locked {
                entry.unlocked.wait(&mut state);
            }
            let Some(copy) = state.copy.as_mut() else {
                return Ok(None);
            };
            match copy.apply_encoded(op)? {
                AppliedOutcome::Done(reply) => return Ok(Some(reply)),
                AppliedOutcome::Blocked => {
                    // Guarded read: wait for the copy to change (updates
                    // arrive via the update protocol) or fall back to a
                    // periodic retry.
                    RtsStats::bump(&self.inner.stats.guard_retries);
                    entry
                        .unlocked
                        .wait_for(&mut state, Duration::from_millis(100));
                }
            }
        }
    }

    /// Send a read/write to the primary, retrying while the guard is false.
    fn remote_op(&self, primary: NodeId, msg: PrimaryMsg) -> Result<Vec<u8>, RtsError> {
        loop {
            match self.rpc(primary, &msg)? {
                PrimaryReply::Reply(bytes) => return Ok(bytes),
                PrimaryReply::Blocked => {
                    RtsStats::bump(&self.inner.stats.guard_retries);
                    std::thread::sleep(BLOCKED_RETRY_DELAY);
                }
                PrimaryReply::Error(msg) => {
                    return Err(RtsError::Communication(msg));
                }
                other => {
                    return Err(RtsError::Communication(format!(
                        "unexpected reply {other:?}"
                    )))
                }
            }
        }
    }

    /// Apply the dynamic-replication hysteresis rule after an access.
    fn maybe_adjust_replication(
        &self,
        object: ObjectId,
        _type_name: &str,
        primary: NodeId,
        entry: &SecondaryObject,
    ) -> Result<(), RtsError> {
        if !self.inner.replication.enabled {
            return Ok(());
        }
        if entry.access.total() < self.inner.replication.window {
            return Ok(());
        }
        let ratio = entry.access.read_write_ratio();
        let has_copy = entry.state.lock().copy.is_some();
        if !has_copy && ratio >= self.inner.replication.fetch_ratio {
            self.fetch_copy(object, primary, entry)?;
        } else if has_copy && ratio <= self.inner.replication.drop_ratio {
            self.drop_copy(object, primary, entry)?;
        }
        entry.access.reset();
        Ok(())
    }

    fn fetch_copy(
        &self,
        object: ObjectId,
        primary: NodeId,
        entry: &SecondaryObject,
    ) -> Result<(), RtsError> {
        match self.rpc(primary, &PrimaryMsg::FetchCopy { object })? {
            PrimaryReply::State { type_name, state } => {
                let replica = self.inner.registry.instantiate(&type_name, &state)?;
                let mut guard = entry.state.lock();
                guard.copy = Some(replica);
                guard.locked = false;
                RtsStats::bump(&self.inner.stats.copies_fetched);
                Ok(())
            }
            PrimaryReply::Error(msg) => Err(RtsError::Communication(msg)),
            other => Err(RtsError::Communication(format!(
                "unexpected FetchCopy reply {other:?}"
            ))),
        }
    }

    fn drop_copy(
        &self,
        object: ObjectId,
        primary: NodeId,
        entry: &SecondaryObject,
    ) -> Result<(), RtsError> {
        let _ = self.rpc(primary, &PrimaryMsg::DropCopy { object })?;
        let mut guard = entry.state.lock();
        guard.copy = None;
        guard.locked = false;
        RtsStats::bump(&self.inner.stats.copies_dropped);
        self.inner.stats.snapshot();
        Ok(())
    }
}

impl RuntimeSystem for PrimaryCopyRts {
    fn node(&self) -> NodeId {
        self.inner.node
    }

    fn num_nodes(&self) -> usize {
        self.inner.num_nodes
    }

    fn create_object(&self, type_name: &str, initial_state: &[u8]) -> Result<ObjectId, RtsError> {
        let replica = self.inner.registry.instantiate(type_name, initial_state)?;
        let counter = self.inner.next_object.fetch_add(1, Ordering::Relaxed);
        let id = ObjectId::compose(self.inner.node.0, counter);
        self.inner.primaries.write().insert(
            id,
            Arc::new(PrimaryObject {
                replica: Mutex::new(replica),
                copy_holders: Mutex::new(HashSet::new()),
                type_name: type_name.to_string(),
            }),
        );
        RtsStats::bump(&self.inner.stats.objects_created);
        Ok(id)
    }

    fn invoke(
        &self,
        object: ObjectId,
        type_name: &str,
        kind: OpKind,
        op: &[u8],
    ) -> Result<Vec<u8>, RtsError> {
        if self.primary_node(object) == self.inner.node {
            self.invoke_at_primary_local(object, op, kind)
        } else {
            self.invoke_remote(object, type_name, kind, op)
        }
    }

    fn stats(&self) -> RtsStatsSnapshot {
        self.inner.stats.snapshot()
    }

    fn kind(&self) -> RtsKind {
        match self.inner.write_policy {
            WritePolicy::Invalidate => RtsKind::PrimaryInvalidate,
            WritePolicy::Update => RtsKind::PrimaryUpdate,
        }
    }
}

/// Execute a read operation at the primary copy.
fn primary_read(
    inner: &Arc<Inner>,
    object: ObjectId,
    op: &[u8],
) -> Result<AppliedOutcome, RtsError> {
    let entry = {
        let primaries = inner.primaries.read();
        primaries
            .get(&object)
            .cloned()
            .ok_or(RtsError::Object(ObjectError::NoSuchObject(object)))?
    };
    let mut replica = entry.replica.lock();
    Ok(replica.apply_encoded(op)?)
}

/// Execute a write at the primary copy and run the configured propagation
/// protocol against all copy holders.
fn primary_write(
    inner: &Arc<Inner>,
    object: ObjectId,
    op: &[u8],
) -> Result<AppliedOutcome, RtsError> {
    let entry = {
        let primaries = inner.primaries.read();
        primaries
            .get(&object)
            .cloned()
            .ok_or(RtsError::Object(ObjectError::NoSuchObject(object)))?
    };
    // The primary replica's mutex is the object lock: it stays held for the
    // entire protocol so no reads or competing writes observe partial state.
    let mut replica = entry.replica.lock();
    let outcome = replica.apply_encoded(op)?;
    let AppliedOutcome::Done(reply) = outcome else {
        return Ok(AppliedOutcome::Blocked);
    };
    let holders: Vec<NodeId> = {
        let holders = entry.copy_holders.lock();
        holders
            .iter()
            .copied()
            .filter(|h| *h != inner.node)
            .collect()
    };
    match inner.write_policy {
        WritePolicy::Invalidate => {
            for holder in &holders {
                let _ = send_to_secondary(inner, *holder, &PrimaryMsg::Invalidate { object });
            }
            entry.copy_holders.lock().clear();
        }
        WritePolicy::Update => {
            // Phase 1: ship the operation; every holder applies it and stays
            // locked. Phase 2: unlock everyone.
            for holder in &holders {
                let _ = send_to_secondary(
                    inner,
                    *holder,
                    &PrimaryMsg::UpdateOp {
                        object,
                        op: op.to_vec(),
                    },
                );
            }
            for holder in &holders {
                let _ = send_to_secondary(inner, *holder, &PrimaryMsg::Unlock { object });
            }
        }
    }
    Ok(AppliedOutcome::Done(reply))
}

fn send_to_secondary(
    inner: &Arc<Inner>,
    dst: NodeId,
    msg: &PrimaryMsg,
) -> Result<PrimaryReply, RtsError> {
    let reply = rpc_call_timeout(
        &inner.handle,
        dst,
        ports::RTS_PRIMARY,
        msg.to_bytes(),
        inner.op_timeout(),
    )
    .map_err(|err| match err {
        RpcError::Timeout => RtsError::Timeout,
        other => RtsError::Communication(other.to_string()),
    })?;
    PrimaryReply::from_bytes(&reply).map_err(|err| RtsError::Communication(err.to_string()))
}

/// RPC dispatch: the service side of the protocol, running on every node.
fn serve_request(inner: &Arc<Inner>, body: &[u8], caller: NodeId) -> Vec<u8> {
    let reply = match PrimaryMsg::from_bytes(body) {
        Ok(msg) => dispatch(inner, msg, caller),
        Err(err) => PrimaryReply::Error(format!("bad request: {err}")),
    };
    reply.to_bytes()
}

fn dispatch(inner: &Arc<Inner>, msg: PrimaryMsg, caller: NodeId) -> PrimaryReply {
    match msg {
        PrimaryMsg::ReadAt { object, op } => match primary_read(inner, object, &op) {
            Ok(AppliedOutcome::Done(reply)) => {
                if caller != inner.node {
                    // Serving another node's operation against the local
                    // primary replica is the same protocol-handling work
                    // the broadcast and sharded systems account under
                    // `updates_applied`; counting it here keeps the
                    // cross-RTS cost comparisons honest.
                    RtsStats::bump(&inner.stats.updates_applied);
                }
                PrimaryReply::Reply(reply)
            }
            Ok(AppliedOutcome::Blocked) => PrimaryReply::Blocked,
            Err(err) => PrimaryReply::Error(err.to_string()),
        },
        PrimaryMsg::WriteAt { object, op } => match primary_write(inner, object, &op) {
            Ok(AppliedOutcome::Done(reply)) => {
                if caller != inner.node {
                    RtsStats::bump(&inner.stats.updates_applied);
                }
                PrimaryReply::Reply(reply)
            }
            Ok(AppliedOutcome::Blocked) => PrimaryReply::Blocked,
            Err(err) => PrimaryReply::Error(err.to_string()),
        },
        PrimaryMsg::FetchCopy { object } => {
            let primaries = inner.primaries.read();
            let Some(entry) = primaries.get(&object).cloned() else {
                return PrimaryReply::Error(format!("no such object {object}"));
            };
            drop(primaries);
            // Lock the replica so the state snapshot cannot interleave with a
            // write protocol in progress.
            let replica = entry.replica.lock();
            let state = replica.state_bytes();
            drop(replica);
            entry.copy_holders.lock().insert(caller);
            PrimaryReply::State {
                type_name: entry.type_name.clone(),
                state,
            }
        }
        PrimaryMsg::DropCopy { object } => {
            let primaries = inner.primaries.read();
            if let Some(entry) = primaries.get(&object) {
                entry.copy_holders.lock().remove(&caller);
            }
            PrimaryReply::Ack
        }
        PrimaryMsg::Invalidate { object } => {
            let secondaries = inner.secondaries.read();
            if let Some(entry) = secondaries.get(&object) {
                let mut state = entry.state.lock();
                state.copy = None;
                state.locked = false;
                entry.unlocked.notify_all();
                RtsStats::bump(&inner.stats.invalidations_received);
            }
            PrimaryReply::Ack
        }
        PrimaryMsg::UpdateOp { object, op } => {
            let secondaries = inner.secondaries.read();
            if let Some(entry) = secondaries.get(&object) {
                let mut state = entry.state.lock();
                if let Some(copy) = state.copy.as_mut() {
                    match copy.apply_encoded(&op) {
                        Ok(_) => {
                            state.locked = true;
                            RtsStats::bump(&inner.stats.updates_applied);
                        }
                        Err(_) => {
                            // A copy we cannot update is discarded; the next
                            // access will fetch a fresh one.
                            state.copy = None;
                            state.locked = false;
                        }
                    }
                }
            }
            PrimaryReply::Ack
        }
        PrimaryMsg::Unlock { object } => {
            let secondaries = inner.secondaries.read();
            if let Some(entry) = secondaries.get(&object) {
                let mut state = entry.state.lock();
                state.locked = false;
                entry.unlocked.notify_all();
            }
            PrimaryReply::Ack
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orca_amoeba::network::Network;
    use orca_object::testing::{Accumulator, AccumulatorOp};
    use orca_object::ObjectType;

    fn registry() -> ObjectRegistry {
        let mut registry = ObjectRegistry::new();
        registry.register::<Accumulator>();
        registry
    }

    fn start_all(
        net: &Network,
        policy: WritePolicy,
        replication: ReplicationPolicy,
    ) -> Vec<PrimaryCopyRts> {
        net.node_ids()
            .into_iter()
            .map(|n| PrimaryCopyRts::start(net.handle(n), registry(), policy, replication))
            .collect()
    }

    fn add(rts: &PrimaryCopyRts, id: ObjectId, n: i64) -> i64 {
        let reply = rts
            .invoke(
                id,
                Accumulator::TYPE_NAME,
                OpKind::Write,
                &AccumulatorOp::Add(n).to_bytes(),
            )
            .unwrap();
        i64::from_bytes(&reply).unwrap()
    }

    fn read(rts: &PrimaryCopyRts, id: ObjectId) -> i64 {
        let reply = rts
            .invoke(
                id,
                Accumulator::TYPE_NAME,
                OpKind::Read,
                &AccumulatorOp::Read.to_bytes(),
            )
            .unwrap();
        i64::from_bytes(&reply).unwrap()
    }

    #[test]
    fn remote_reads_and_writes_through_primary() {
        for policy in [WritePolicy::Invalidate, WritePolicy::Update] {
            let net = Network::reliable(3);
            let rtses = start_all(&net, policy, ReplicationPolicy::never_replicate());
            let id = rtses[0]
                .create_object(Accumulator::TYPE_NAME, &0i64.to_bytes())
                .unwrap();
            assert_eq!(add(&rtses[1], id, 5), 5);
            assert_eq!(add(&rtses[2], id, 7), 12);
            assert_eq!(read(&rtses[0], id), 12);
            assert_eq!(read(&rtses[2], id), 12);
            assert!(rtses[2].stats().remote_reads >= 1);
            assert!(rtses[1].stats().remote_writes >= 1);
            for rts in &rtses {
                rts.shutdown();
            }
        }
    }

    #[test]
    fn dynamic_replication_fetches_copy_after_many_reads() {
        let net = Network::reliable(2);
        let replication = ReplicationPolicy {
            fetch_ratio: 2.0,
            drop_ratio: 0.5,
            window: 8,
            enabled: true,
        };
        let rtses = start_all(&net, WritePolicy::Update, replication);
        let id = rtses[0]
            .create_object(Accumulator::TYPE_NAME, &1i64.to_bytes())
            .unwrap();
        assert!(!rtses[1].has_local_copy(id));
        for _ in 0..16 {
            assert_eq!(read(&rtses[1], id), 1);
        }
        assert!(rtses[1].has_local_copy(id), "copy should have been fetched");
        let before = rtses[1].stats();
        assert!(before.copies_fetched >= 1);
        // Reads now hit the local copy.
        let local_before = before.local_reads;
        for _ in 0..5 {
            assert_eq!(read(&rtses[1], id), 1);
        }
        assert!(rtses[1].stats().local_reads >= local_before + 5);
        for rts in &rtses {
            rts.shutdown();
        }
    }

    #[test]
    fn update_policy_keeps_secondary_copy_current() {
        let net = Network::reliable(2);
        let replication = ReplicationPolicy {
            fetch_ratio: 1.0,
            drop_ratio: 0.0,
            window: 4,
            enabled: true,
        };
        let rtses = start_all(&net, WritePolicy::Update, replication);
        let id = rtses[0]
            .create_object(Accumulator::TYPE_NAME, &0i64.to_bytes())
            .unwrap();
        for _ in 0..8 {
            read(&rtses[1], id);
        }
        assert!(rtses[1].has_local_copy(id));
        // A write at the primary must propagate to the secondary copy.
        assert_eq!(add(&rtses[0], id, 9), 9);
        assert_eq!(read(&rtses[1], id), 9);
        assert!(rtses[1].stats().updates_applied >= 1);
        for rts in &rtses {
            rts.shutdown();
        }
    }

    #[test]
    fn invalidate_policy_discards_secondary_copy_on_write() {
        let net = Network::reliable(2);
        let replication = ReplicationPolicy {
            fetch_ratio: 1.0,
            drop_ratio: 0.0,
            window: 4,
            enabled: true,
        };
        let rtses = start_all(&net, WritePolicy::Invalidate, replication);
        let id = rtses[0]
            .create_object(Accumulator::TYPE_NAME, &0i64.to_bytes())
            .unwrap();
        for _ in 0..8 {
            read(&rtses[1], id);
        }
        assert!(rtses[1].has_local_copy(id));
        assert_eq!(add(&rtses[0], id, 3), 3);
        assert!(!rtses[1].has_local_copy(id), "copy should be invalidated");
        assert_eq!(read(&rtses[1], id), 3);
        assert!(rtses[1].stats().invalidations_received >= 1);
        for rts in &rtses {
            rts.shutdown();
        }
    }

    #[test]
    fn concurrent_writers_from_many_nodes_are_serialized() {
        let net = Network::reliable(4);
        let rtses = start_all(&net, WritePolicy::Update, ReplicationPolicy::default());
        let id = rtses[0]
            .create_object(Accumulator::TYPE_NAME, &0i64.to_bytes())
            .unwrap();
        let mut handles = Vec::new();
        for rts in &rtses {
            let rts = rts.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..25 {
                    add(&rts, id, 1);
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(read(&rtses[3], id), 100);
        for rts in &rtses {
            rts.shutdown();
        }
    }

    #[test]
    fn replication_policy_fetches_then_drops_copy_across_both_transitions() {
        let net = Network::reliable(2);
        let replication = ReplicationPolicy {
            fetch_ratio: 2.0,
            drop_ratio: 0.5,
            window: 8,
            enabled: true,
        };
        let rtses = start_all(&net, WritePolicy::Update, replication);
        let id = rtses[0]
            .create_object(Accumulator::TYPE_NAME, &0i64.to_bytes())
            .unwrap();

        // Transition 1: a read-heavy window pushes the read/write ratio
        // over fetch_ratio and a secondary copy is created.
        for _ in 0..8 {
            read(&rtses[1], id);
        }
        assert!(rtses[1].has_local_copy(id), "read-heavy window must fetch");
        assert_eq!(rtses[1].stats().copies_fetched, 1);
        assert_eq!(rtses[1].stats().copies_dropped, 0);

        // Transition 2: a write-heavy window drags the ratio under
        // drop_ratio and the copy is discarded again.
        for n in 0..8 {
            add(&rtses[1], id, n);
        }
        assert!(
            !rtses[1].has_local_copy(id),
            "write-heavy window must drop the copy"
        );
        assert_eq!(rtses[1].stats().copies_dropped, 1);

        // And the cycle restarts: reads re-fetch.
        for _ in 0..8 {
            read(&rtses[1], id);
        }
        assert!(rtses[1].has_local_copy(id));
        assert_eq!(rtses[1].stats().copies_fetched, 2);
        for rts in &rtses {
            rts.shutdown();
        }
    }

    #[test]
    fn dropped_reply_from_crashed_primary_surfaces_timeout() {
        let net = Network::reliable(2);
        let rtses = start_all(
            &net,
            WritePolicy::Update,
            ReplicationPolicy::never_replicate(),
        );
        let id = rtses[0]
            .create_object(Accumulator::TYPE_NAME, &0i64.to_bytes())
            .unwrap();
        assert_eq!(add(&rtses[1], id, 3), 3);

        // The primary crashes; its replies are dropped. The write must
        // surface Timeout within the configured deadline, not hang.
        net.crash(NodeId(0));
        rtses[1].set_op_timeout(Duration::from_millis(150));
        let started = std::time::Instant::now();
        let err = rtses[1]
            .invoke(
                id,
                Accumulator::TYPE_NAME,
                OpKind::Write,
                &AccumulatorOp::Add(1).to_bytes(),
            )
            .unwrap_err();
        assert_eq!(err, RtsError::Timeout);
        assert!(started.elapsed() < Duration::from_secs(5));

        // Remote reads hit the same deadline.
        let err = rtses[1]
            .invoke(
                id,
                Accumulator::TYPE_NAME,
                OpKind::Read,
                &AccumulatorOp::Read.to_bytes(),
            )
            .unwrap_err();
        assert_eq!(err, RtsError::Timeout);

        // After recovery the system keeps working.
        net.recover(NodeId(0));
        assert_eq!(add(&rtses[1], id, 4), 7);
        for rts in &rtses {
            rts.shutdown();
        }
    }

    #[test]
    fn blocked_write_at_primary_retries_until_guard_true() {
        let net = Network::reliable(2);
        let rtses = start_all(
            &net,
            WritePolicy::Update,
            ReplicationPolicy::never_replicate(),
        );
        let id = rtses[0]
            .create_object(Accumulator::TYPE_NAME, &0i64.to_bytes())
            .unwrap();
        let waiter = {
            let rts = rtses[1].clone();
            std::thread::spawn(move || {
                let reply = rts
                    .invoke(
                        id,
                        Accumulator::TYPE_NAME,
                        OpKind::Read,
                        &AccumulatorOp::AwaitAtLeast(4).to_bytes(),
                    )
                    .unwrap();
                i64::from_bytes(&reply).unwrap()
            })
        };
        std::thread::sleep(Duration::from_millis(80));
        add(&rtses[0], id, 10);
        assert_eq!(waiter.join().unwrap(), 10);
        for rts in &rtses {
            rts.shutdown();
        }
    }
}
