//! RPC messages of the point-to-point (primary-copy) runtime system.

use orca_object::ObjectId;
use orca_wire::{
    BatchOp, BatchOutcome, Decoder, DedupWindow, Encoder, LeaseGrant, LeaseMsg, OpStamp, Wire,
    WireError, WireResult,
};

/// A stamped write's identity plus the reply it produced, piggybacked on
/// update pushes so every copy holder's [`DedupWindow`] stays as fresh as
/// its state — whichever copy gets promoted can answer a retry.
pub type StampedReply = (OpStamp, Vec<u8>);

fn encode_stamped(enc: &mut Encoder, stamped: &Option<StampedReply>) {
    match stamped {
        None => enc.put_u8(0),
        Some((stamp, reply)) => {
            enc.put_u8(1);
            stamp.encode(enc);
            enc.put_bytes(reply);
        }
    }
}

fn decode_stamped(dec: &mut Decoder<'_>) -> WireResult<Option<StampedReply>> {
    match dec.get_u8()? {
        0 => Ok(None),
        1 => Ok(Some((Wire::decode(dec)?, dec.get_bytes()?))),
        tag => Err(WireError::InvalidTag {
            type_name: "Option<StampedReply>",
            tag: u64::from(tag),
        }),
    }
}

/// Requests sent to a node's primary-copy RTS service.
///
/// The first four are client → primary requests; the rest are
/// primary → secondary requests used by the write and lease protocols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrimaryMsg {
    /// Execute a read operation at the primary copy (the caller holds no
    /// valid local copy).
    ReadAt {
        /// Target object.
        object: ObjectId,
        /// Encoded operation.
        op: Vec<u8>,
    },
    /// Execute a write operation at the primary copy, running the
    /// invalidation or two-phase-update protocol against all secondaries.
    WriteAt {
        /// Target object.
        object: ObjectId,
        /// Encoded operation.
        op: Vec<u8>,
        /// Exactly-once identity of the write; a retry after a timeout or a
        /// re-homing re-sends the same stamp and is answered from the
        /// primary's [`DedupWindow`] instead of being applied again.
        stamp: Option<OpStamp>,
    },
    /// Register the caller as a copy holder and return the current state.
    FetchCopy {
        /// Target object.
        object: ObjectId,
    },
    /// Deregister the caller as a copy holder.
    DropCopy {
        /// Target object.
        object: ObjectId,
    },
    /// Primary → secondary: discard your copy (invalidation protocol).
    Invalidate {
        /// Target object.
        object: ObjectId,
        /// The primary replica's version after the write that triggered the
        /// invalidation. The secondary records it as *seen* even when it
        /// holds no copy yet: an invalidation can overtake the fetch reply
        /// it races (the fetch snapshot predates this write), and the
        /// version floor makes the late install discard that stale
        /// snapshot instead of serving it forever.
        version: u64,
    },
    /// Primary → secondary: apply this operation to your copy and keep the
    /// object locked until [`PrimaryMsg::Unlock`] arrives (update protocol,
    /// phase 1).
    UpdateOp {
        /// Target object.
        object: ObjectId,
        /// Encoded operation.
        op: Vec<u8>,
        /// The primary replica's version *after* applying the operation.
        /// Secondaries apply updates strictly in version order; a gap (or
        /// an update racing a state snapshot) discards the copy, which
        /// re-syncs on the next access — the discipline that makes a copy
        /// of version `v` provably contain every write up to `v`.
        version: u64,
        /// The stamp and reply of the write this update propagates, folded
        /// into the secondary's dedup window so a promoted copy answers
        /// retries of writes the dead primary already applied.
        stamped: Option<StampedReply>,
    },
    /// Primary → secondary: unlock the object (update protocol, phase 2).
    Unlock {
        /// Target object.
        object: ObjectId,
        /// Renewed read lease, when leases are enabled: the holder's copy
        /// is current again as of this unlock, so the primary re-arms its
        /// permission to serve local reads.
        lease: Option<LeaseGrant>,
    },
    /// Client → primary: execute a *batch* of write operations, in order
    /// (the pipelined asynchronous path). Each operation runs the full
    /// write protocol semantics; consecutive operations on one object are
    /// applied under one object lock and their update pushes to each
    /// secondary coalesce into a single [`PrimaryMsg::UpdateBatch`].
    WriteBatch {
        /// The operations, in issue order (`partition`/`epoch` unused).
        ops: Vec<BatchOp>,
    },
    /// Primary → secondary: apply a run of consecutive update operations to
    /// your copy, in order, and keep the object locked until
    /// [`PrimaryMsg::Unlock`] — the batched form of
    /// [`PrimaryMsg::UpdateOp`], one message per secondary per batch
    /// instead of one per write.
    UpdateBatch {
        /// Target object.
        object: ObjectId,
        /// Encoded operations, in primary application order.
        ops: Vec<Vec<u8>>,
        /// The primary replica's version after applying `ops[0]`; the run
        /// covers versions `first_version ..= first_version + ops.len() - 1`
        /// and a secondary applies exactly the suffix it has not seen yet
        /// (same strict version ordering as single updates).
        first_version: u64,
    },
    /// Standalone lease traffic (see [`LeaseMsg`]): grants and renewals
    /// piggyback on [`PrimaryReply::State`] and [`PrimaryMsg::Unlock`], so
    /// only explicit revocations travel as this message.
    Lease(LeaseMsg),
}

impl Wire for PrimaryMsg {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            PrimaryMsg::ReadAt { object, op } => {
                enc.put_u8(0);
                object.encode(enc);
                enc.put_bytes(op);
            }
            PrimaryMsg::WriteAt { object, op, stamp } => {
                enc.put_u8(1);
                object.encode(enc);
                enc.put_bytes(op);
                stamp.encode(enc);
            }
            PrimaryMsg::FetchCopy { object } => {
                enc.put_u8(2);
                object.encode(enc);
            }
            PrimaryMsg::DropCopy { object } => {
                enc.put_u8(3);
                object.encode(enc);
            }
            PrimaryMsg::Invalidate { object, version } => {
                enc.put_u8(4);
                object.encode(enc);
                version.encode(enc);
            }
            PrimaryMsg::UpdateOp {
                object,
                op,
                version,
                stamped,
            } => {
                enc.put_u8(5);
                object.encode(enc);
                enc.put_bytes(op);
                version.encode(enc);
                encode_stamped(enc, stamped);
            }
            PrimaryMsg::Unlock { object, lease } => {
                enc.put_u8(6);
                object.encode(enc);
                lease.encode(enc);
            }
            PrimaryMsg::WriteBatch { ops } => {
                enc.put_u8(7);
                ops.encode(enc);
            }
            PrimaryMsg::UpdateBatch {
                object,
                ops,
                first_version,
            } => {
                enc.put_u8(8);
                object.encode(enc);
                ops.encode(enc);
                first_version.encode(enc);
            }
            PrimaryMsg::Lease(msg) => {
                enc.put_u8(9);
                msg.encode(enc);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        match dec.get_u8()? {
            0 => Ok(PrimaryMsg::ReadAt {
                object: Wire::decode(dec)?,
                op: dec.get_bytes()?,
            }),
            1 => Ok(PrimaryMsg::WriteAt {
                object: Wire::decode(dec)?,
                op: dec.get_bytes()?,
                stamp: Wire::decode(dec)?,
            }),
            2 => Ok(PrimaryMsg::FetchCopy {
                object: Wire::decode(dec)?,
            }),
            3 => Ok(PrimaryMsg::DropCopy {
                object: Wire::decode(dec)?,
            }),
            4 => Ok(PrimaryMsg::Invalidate {
                object: Wire::decode(dec)?,
                version: Wire::decode(dec)?,
            }),
            5 => Ok(PrimaryMsg::UpdateOp {
                object: Wire::decode(dec)?,
                op: dec.get_bytes()?,
                version: Wire::decode(dec)?,
                stamped: decode_stamped(dec)?,
            }),
            6 => Ok(PrimaryMsg::Unlock {
                object: Wire::decode(dec)?,
                lease: Wire::decode(dec)?,
            }),
            7 => Ok(PrimaryMsg::WriteBatch {
                ops: Wire::decode(dec)?,
            }),
            8 => Ok(PrimaryMsg::UpdateBatch {
                object: Wire::decode(dec)?,
                ops: Wire::decode(dec)?,
                first_version: Wire::decode(dec)?,
            }),
            9 => Ok(PrimaryMsg::Lease(Wire::decode(dec)?)),
            tag => Err(WireError::InvalidTag {
                type_name: "PrimaryMsg",
                tag: u64::from(tag),
            }),
        }
    }
}

/// Replies of the primary-copy RTS service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrimaryReply {
    /// Encoded reply of a completed operation.
    Reply(Vec<u8>),
    /// The operation's guard was false; the caller should retry later.
    Blocked,
    /// Current state of the object (reply to [`PrimaryMsg::FetchCopy`]).
    State {
        /// Registered type name, so the receiver can instantiate a replica.
        type_name: String,
        /// Encoded state.
        state: Vec<u8>,
        /// The primary replica's version at the snapshot; the fetcher's
        /// copy continues the update-version sequence from here.
        version: u64,
        /// A fresh read lease over the copy, when leases are enabled.
        lease: Option<LeaseGrant>,
        /// The primary's dedup window at the snapshot, so the copy can be
        /// promoted without forgetting which stamped writes were applied.
        dedup: DedupWindow,
    },
    /// Acknowledgement with no payload.
    Ack,
    /// The request failed.
    Error(String),
    /// Per-operation outcomes of a [`PrimaryMsg::WriteBatch`], in batch
    /// order.
    Batch(Vec<BatchOutcome>),
    /// Lease sub-protocol reply (a [`LeaseMsg::RevokeAck`]).
    Lease(LeaseMsg),
}

impl Wire for PrimaryReply {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            PrimaryReply::Reply(bytes) => {
                enc.put_u8(0);
                enc.put_bytes(bytes);
            }
            PrimaryReply::Blocked => enc.put_u8(1),
            PrimaryReply::State {
                type_name,
                state,
                version,
                lease,
                dedup,
            } => {
                enc.put_u8(2);
                type_name.encode(enc);
                enc.put_bytes(state);
                version.encode(enc);
                lease.encode(enc);
                dedup.encode(enc);
            }
            PrimaryReply::Ack => enc.put_u8(3),
            PrimaryReply::Error(msg) => {
                enc.put_u8(4);
                msg.encode(enc);
            }
            PrimaryReply::Batch(outcomes) => {
                enc.put_u8(5);
                outcomes.encode(enc);
            }
            PrimaryReply::Lease(msg) => {
                enc.put_u8(6);
                msg.encode(enc);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        match dec.get_u8()? {
            0 => Ok(PrimaryReply::Reply(dec.get_bytes()?)),
            1 => Ok(PrimaryReply::Blocked),
            2 => Ok(PrimaryReply::State {
                type_name: Wire::decode(dec)?,
                state: dec.get_bytes()?,
                version: Wire::decode(dec)?,
                lease: Wire::decode(dec)?,
                dedup: Wire::decode(dec)?,
            }),
            3 => Ok(PrimaryReply::Ack),
            4 => Ok(PrimaryReply::Error(Wire::decode(dec)?)),
            5 => Ok(PrimaryReply::Batch(Wire::decode(dec)?)),
            6 => Ok(PrimaryReply::Lease(Wire::decode(dec)?)),
            tag => Err(WireError::InvalidTag {
                type_name: "PrimaryReply",
                tag: u64::from(tag),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_requests_round_trip() {
        let object = ObjectId::compose(2, 5);
        let msgs = vec![
            PrimaryMsg::ReadAt {
                object,
                op: vec![1],
            },
            PrimaryMsg::WriteAt {
                object,
                op: vec![2, 3],
                stamp: Some(OpStamp { origin: 2, seq: 8 }),
            },
            PrimaryMsg::WriteAt {
                object,
                op: vec![2, 3],
                stamp: None,
            },
            PrimaryMsg::FetchCopy { object },
            PrimaryMsg::DropCopy { object },
            PrimaryMsg::Invalidate { object, version: 6 },
            PrimaryMsg::UpdateOp {
                object,
                op: vec![],
                version: 4,
                stamped: Some((OpStamp { origin: 1, seq: 2 }, vec![7])),
            },
            PrimaryMsg::UpdateOp {
                object,
                op: vec![5],
                version: 5,
                stamped: None,
            },
            PrimaryMsg::Unlock {
                object,
                lease: Some(LeaseGrant {
                    object: object.0,
                    epoch: 3,
                    seq: 11,
                    valid_ms: 40,
                }),
            },
            PrimaryMsg::Unlock {
                object,
                lease: None,
            },
            PrimaryMsg::WriteBatch {
                ops: vec![BatchOp {
                    id: 8,
                    object: object.0,
                    partition: 0,
                    epoch: 0,
                    trace: orca_wire::TraceId::mint(1, 9),
                    op: vec![1, 2],
                }],
            },
            PrimaryMsg::UpdateBatch {
                object,
                ops: vec![vec![1], vec![2, 3]],
                first_version: 9,
            },
            PrimaryMsg::Lease(LeaseMsg::Revoke {
                object: object.0,
                seq: 11,
            }),
        ];
        for msg in msgs {
            assert_eq!(PrimaryMsg::from_bytes(&msg.to_bytes()).unwrap(), msg);
        }
    }

    #[test]
    fn all_replies_round_trip() {
        let mut dedup = DedupWindow::new();
        dedup.record(OpStamp { origin: 0, seq: 1 }, vec![5]);
        let replies = vec![
            PrimaryReply::Reply(vec![9, 9]),
            PrimaryReply::Blocked,
            PrimaryReply::State {
                type_name: "T".into(),
                state: vec![0; 10],
                version: 7,
                lease: Some(LeaseGrant {
                    object: 4,
                    epoch: 0,
                    seq: 1,
                    valid_ms: 25,
                }),
                dedup,
            },
            PrimaryReply::State {
                type_name: "T".into(),
                state: vec![],
                version: 0,
                lease: None,
                dedup: DedupWindow::new(),
            },
            PrimaryReply::Ack,
            PrimaryReply::Error("nope".into()),
            PrimaryReply::Batch(vec![
                BatchOutcome::Done(vec![1]),
                BatchOutcome::Blocked,
                BatchOutcome::Failed("no".into()),
            ]),
            PrimaryReply::Lease(LeaseMsg::RevokeAck { object: 4, seq: 1 }),
        ];
        for reply in replies {
            assert_eq!(PrimaryReply::from_bytes(&reply.to_bytes()).unwrap(), reply);
        }
    }
}
